//! End-to-end regression of every worked example in the paper, driven
//! through the public facade.

use pfcim::core::{exact_fcp_by_worlds, Algorithm, FcpMethod, Miner, MinerConfig, MiningOutcome};
use pfcim::utdb::{Item, PossibleWorlds, UncertainDatabase};

fn mine(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}

fn mine_naive(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Naive)
        .run()
}

fn table2() -> UncertainDatabase {
    UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
    ])
}

fn table4() -> UncertainDatabase {
    UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
        ("a b", 0.4),
        ("a", 0.4),
    ])
}

fn items(db: &UncertainDatabase, s: &str) -> Vec<Item> {
    s.split_whitespace()
        .map(|x| db.dictionary().get(x).unwrap())
        .collect()
}

#[test]
fn table_iii_possible_world_probabilities() {
    let db = table2();
    // Spot-check the world probabilities listed in Table III.
    // PW1 = {T1}: 0.9 * 0.4 * 0.3 * 0.1 = 0.0108
    let p1 = PossibleWorlds::world_probability(&db, 0b0001);
    assert!((p1 - 0.0108).abs() < 1e-12);
    // PW5 = {T1,T2,T3}: 0.9 * 0.6 * 0.7 * 0.1 = 0.0378
    let p5 = PossibleWorlds::world_probability(&db, 0b0111);
    assert!((p5 - 0.0378).abs() < 1e-12);
    // PW8 = all: 0.9 * 0.6 * 0.7 * 0.9
    let p8 = PossibleWorlds::world_probability(&db, 0b1111);
    assert!((p8 - 0.9 * 0.6 * 0.7 * 0.9).abs() < 1e-12);
    // PW16 = {}: 0.1 * 0.4 * 0.3 * 0.1
    let p16 = PossibleWorlds::world_probability(&db, 0);
    assert!((p16 - 0.0012).abs() < 1e-12);
}

#[test]
fn example_1_1_fifteen_probabilistic_frequent_itemsets() {
    let db = table2();
    let pfis = pfcim::pfim::probabilistic_frequent_itemsets(&db, 2, 0.8);
    assert_eq!(pfis.len(), 15);
    let near = |x: f64, y: f64| (x - y).abs() < 1e-10;
    assert_eq!(
        pfis.iter()
            .filter(|p| near(p.frequent_probability, 0.9726))
            .count(),
        7,
        "seven subsets of {{a,b,c}} share frequent probability 0.9726"
    );
    assert_eq!(
        pfis.iter()
            .filter(|p| near(p.frequent_probability, 0.81))
            .count(),
        8,
        "eight itemsets containing d share frequent probability 0.81"
    );
}

#[test]
fn example_1_2_frequent_closed_probabilities() {
    let db = table2();
    assert!((exact_fcp_by_worlds(&db, &items(&db, "a b c"), 2) - 0.8754).abs() < 1e-10);
    assert!((exact_fcp_by_worlds(&db, &items(&db, "a b c d"), 2) - 0.81).abs() < 1e-10);
    // "frequent closed probabilities of 13 other PFIs are 0"
    let pfis = pfcim::pfim::probabilistic_frequent_itemsets(&db, 2, 0.8);
    let mut zeros = 0;
    for p in &pfis {
        let fcp = exact_fcp_by_worlds(&db, &p.items, 2);
        if fcp < 1e-12 {
            zeros += 1;
        }
    }
    assert_eq!(zeros, 13);
}

#[test]
fn example_4_3_mining_run_and_values() {
    let db = table2();
    let out = mine(&db, &MinerConfig::new(2, 0.8));
    let rendered: Vec<String> = out.results.iter().map(|p| db.render(&p.items)).collect();
    assert_eq!(rendered, vec!["{a, b, c}", "{a, b, c, d}"]);
    // Paper reports {abc, fcp: 0.875} and {abcd, fcp: 0.81}.
    assert!((out.results[0].fcp - 0.8754).abs() < 0.01);
    assert!((out.results[1].fcp - 0.81).abs() < 0.01);
    // Example 4.1/4.2 pruning narrative: subset pruning kills the {a,c},
    // {a,d} and {a,b,d} branches; superset pruning stops the {b}, {c},
    // {d} roots.
    assert!(out.stats.subset_pruned >= 1);
    assert!(out.stats.superset_pruned >= 3);
}

#[test]
fn section_ii_b_table_iv_comparison() {
    let db = table4();
    // Frequent probabilities of {a} and {ab} are ~0.99 at min_sup 2 …
    let pr_a = pfcim::pfim::frequent_probability(&db, &items(&db, "a"), 2);
    let pr_ab = pfcim::pfim::frequent_probability(&db, &items(&db, "a b"), 2);
    assert!(pr_a > 0.98, "{pr_a}");
    assert!(pr_ab > 0.97, "{pr_ab}");
    // … yet their frequent closed probabilities are tiny (paper: ~0.04),
    // so they are never returned, at any threshold.
    let fcp_a = exact_fcp_by_worlds(&db, &items(&db, "a"), 2);
    let fcp_ab = exact_fcp_by_worlds(&db, &items(&db, "a b"), 2);
    assert!(fcp_a < 0.45, "{fcp_a}");
    assert!(fcp_ab < 0.45, "{fcp_ab}");
    for pfct in [0.5, 0.6, 0.7, 0.8] {
        let out = mine(&db, &MinerConfig::new(2, pfct));
        let rendered: Vec<String> = out.results.iter().map(|p| db.render(&p.items)).collect();
        assert!(rendered.contains(&"{a, b, c}".to_string()), "pfct={pfct}");
        assert!(
            rendered.contains(&"{a, b, c, d}".to_string()),
            "pfct={pfct}"
        );
        assert!(!rendered.contains(&"{a}".to_string()), "pfct={pfct}");
        assert!(!rendered.contains(&"{a, b}".to_string()), "pfct={pfct}");
    }
}

#[test]
fn naive_baseline_agrees_on_the_running_example() {
    let db = table2();
    let cfg = MinerConfig::new(2, 0.8).with_approximation(0.05, 0.05);
    let naive = mine_naive(&db, &cfg);
    let dfs = mine(&db, &cfg.clone().with_fcp_method(FcpMethod::ExactOnly));
    assert_eq!(naive.itemsets(), dfs.itemsets());
    // The naive baseline had to check all 15 PFIs.
    assert_eq!(naive.stats.nodes_visited, 15);
}

#[test]
fn table_vi_reduction_identity() {
    use pfcim::core::hardness::{closed_probability_by_worlds, MonotoneDnf};
    let dnf = MonotoneDnf::paper_example();
    let (db, x) = dnf.to_reduction_database();
    assert_eq!(db.len(), 4);
    let expected = dnf.count_satisfying() as f64 / 16.0;
    let got = 1.0 - closed_probability_by_worlds(&db, &[x]);
    assert!((got - expected).abs() < 1e-12);
}
