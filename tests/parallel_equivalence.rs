//! Parallel-vs-sequential differential suite: the work-stealing miner
//! must be *indistinguishable* from the sequential one wherever the
//! algorithm is deterministic, and reproducible wherever it samples.
//!
//! * Exact mode (`FcpMethod::ExactOnly`): result sets, every probability
//!   (bitwise), and all pruning counters are identical to the `threads =
//!   1` run for every miner variant, on the paper's Table II/Table IV
//!   examples and on generated Gaussian databases.
//! * Sampled mode (`ApproxOnly`): output is a pure function of
//!   `(seed, threads)` — repeat runs are bitwise identical — and the
//!   parallel DFS is even thread-count independent (each root subtree
//!   owns a seed-derived RNG stream).
//! * JSONL tracing through the sharded-sink path reproduces the
//!   sequential event stream byte-for-byte and keeps latched-error
//!   semantics when the writer fails mid-run.
//!
//! The thread counts under test come from `PFCIM_TEST_THREADS`
//! (comma-separated, e.g. `PFCIM_TEST_THREADS=1,4` in `scripts/ci.sh`),
//! defaulting to `1,2,4,7`.

use std::io::{self, Write};

use pfcim::core::{
    parse_jsonl, Algorithm, CountingSink, FcpMethod, JsonlSink, Miner, MinerConfig, MiningOutcome,
    NullSink, ShardableSink, TraceEvent, Variant,
};
use pfcim::utdb::gen::{MushroomConfig, QuestConfig};
use pfcim::utdb::{assign_gaussian_probabilities, UncertainDatabase};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mine_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).sink(sink).run()
}

fn mine_dfs_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Dfs)
        .sink(sink)
        .run()
}

fn mine_naive_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Naive)
        .sink(sink)
        .run()
}

fn thread_counts() -> Vec<usize> {
    match std::env::var("PFCIM_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| s.trim().parse().expect("PFCIM_TEST_THREADS: bad count"))
            .collect(),
        Err(_) => vec![1, 2, 4, 7],
    }
}

fn table2() -> UncertainDatabase {
    UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
    ])
}

fn table4() -> UncertainDatabase {
    UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
        ("a b", 0.4),
        ("a", 0.4),
    ])
}

/// Small generated Gaussian-probability databases: one sparse (Quest),
/// one dense (Mushroom-like). Sized so exact-mode checking stays fast.
fn generated() -> Vec<(UncertainDatabase, usize)> {
    // min_sup is kept high so every non-closure family stays within the
    // 24-event inclusion–exclusion cap (the test forces ExactOnly).
    let mut rng = SmallRng::seed_from_u64(11);
    let quest = QuestConfig::t20i10_p40(80).generate(&mut rng);
    let quest = assign_gaussian_probabilities(&quest, 0.8, 0.1, &mut rng);
    let quest_ms = quest.len() / 2;
    let mut rng = SmallRng::seed_from_u64(12);
    let mush = MushroomConfig::new(60).generate(&mut rng);
    let mush = assign_gaussian_probabilities(&mush, 0.7, 0.2, &mut rng);
    let mush_ms = mush.len() / 2;
    vec![(quest, quest_ms), (mush, mush_ms)]
}

fn exact_cfg(min_sup: usize, variant: Variant, threads: usize) -> MinerConfig {
    MinerConfig::new(min_sup, 0.8)
        .with_variant(variant)
        .with_fcp_method(FcpMethod::ExactOnly)
        .with_threads(threads)
}

/// Everything that must be bitwise-equal between two deterministic runs.
fn assert_outcomes_identical(label: &str, a: &MiningOutcome, b: &MiningOutcome) {
    assert_eq!(a.itemsets(), b.itemsets(), "{label}: result sets differ");
    for (x, y) in a.results.iter().zip(&b.results) {
        assert_eq!(
            x.fcp.to_bits(),
            y.fcp.to_bits(),
            "{label}: fcp differs for {:?}",
            x.items
        );
        assert_eq!(
            x.frequent_probability.to_bits(),
            y.frequent_probability.to_bits(),
            "{label}: Pr_F differs for {:?}",
            x.items
        );
    }
    assert_eq!(a.stats, b.stats, "{label}: pruning/eval counters differ");
    assert_eq!(a.timed_out, b.timed_out, "{label}: timeout flags differ");
}

#[test]
fn exact_mode_is_bit_identical_across_thread_counts_on_paper_examples() {
    for (name, db) in [("table2", table2()), ("table4", table4())] {
        for variant in Variant::ALL {
            let sequential = mine_with(&db, &exact_cfg(2, variant, 1), &mut NullSink);
            for &threads in &thread_counts() {
                let mut sink = CountingSink::default();
                let parallel = mine_with(&db, &exact_cfg(2, variant, threads), &mut sink);
                let label = format!("{name}/{}/threads={threads}", variant.name());
                assert_outcomes_identical(&label, &sequential, &parallel);
                // The reconciled sink saw exactly the sequential event
                // stream's worth of callbacks.
                assert_eq!(sink.stats, sequential.stats, "{label}: sink counters");
                assert_eq!(
                    sink.results_emitted,
                    sequential.results.len() as u64,
                    "{label}: sink result events"
                );
            }
        }
    }
}

#[test]
fn exact_mode_is_bit_identical_on_generated_gaussian_databases() {
    for (i, (db, min_sup)) in generated().into_iter().enumerate() {
        // MPFCI and the no-bound variant cover both checking paths; the
        // full six-variant sweep runs on the paper examples above.
        for variant in [Variant::Mpfci, Variant::NoBound] {
            let sequential = mine_with(&db, &exact_cfg(min_sup, variant, 1), &mut NullSink);
            assert!(
                !sequential.results.is_empty(),
                "generated[{i}]: workload sanity"
            );
            for &threads in &thread_counts() {
                let parallel = mine_with(&db, &exact_cfg(min_sup, variant, threads), &mut NullSink);
                let label = format!("generated[{i}]/{}/threads={threads}", variant.name());
                assert_outcomes_identical(&label, &sequential, &parallel);
            }
        }
    }
}

#[test]
fn sampled_mode_is_reproducible_for_fixed_seed_and_thread_count() {
    let db = table4();
    let sampled = |threads: usize, seed: u64| {
        MinerConfig::new(2, 0.8)
            .with_fcp_method(FcpMethod::ApproxOnly)
            .with_seed(seed)
            .with_threads(threads)
    };
    for &threads in &thread_counts() {
        let cfg = sampled(threads, 0xabcd);
        let a = mine_with(&db, &cfg, &mut NullSink);
        let b = mine_with(&db, &cfg, &mut NullSink);
        let label = format!("dfs/threads={threads}");
        assert_outcomes_identical(&label, &a, &b);

        // The naive baseline chunks its sampling over the same pool.
        let a = mine_naive_with(&db, &cfg, &mut NullSink);
        let b = mine_naive_with(&db, &cfg, &mut NullSink);
        assert_outcomes_identical(&format!("naive/threads={threads}"), &a, &b);
    }
}

#[test]
fn sampled_parallel_dfs_is_thread_count_independent() {
    // Each DFS root derives its RNG stream from (seed, root id), so any
    // worker count >= 2 produces the same sampled probabilities.
    let db = table4();
    let cfg = |threads: usize| {
        MinerConfig::new(2, 0.8)
            .with_fcp_method(FcpMethod::ApproxOnly)
            .with_seed(7)
            .with_threads(threads)
    };
    let counts: Vec<usize> = thread_counts().into_iter().filter(|&t| t >= 2).collect();
    if counts.len() < 2 {
        return; // PFCIM_TEST_THREADS pinned a single parallel count
    }
    let base = mine_dfs_with(&db, &cfg(counts[0]), &mut NullSink);
    for &threads in &counts[1..] {
        let other = mine_dfs_with(&db, &cfg(threads), &mut NullSink);
        assert_outcomes_identical(
            &format!("threads={} vs {}", counts[0], threads),
            &base,
            &other,
        );
    }
}

#[test]
fn parallel_jsonl_trace_replays_the_sequential_event_stream() {
    let db = table4();
    // Wall-clock payloads (phase durations, the run_end trailer)
    // legitimately differ between runs; everything else — event kinds,
    // order, itemsets, probabilities — must be identical.
    let trace = |threads: usize| -> Vec<TraceEvent> {
        let mut sink = JsonlSink::new(Vec::new());
        mine_with(&db, &exact_cfg(2, Variant::Mpfci, threads), &mut sink);
        let bytes = sink.finish().expect("in-memory writer cannot fail");
        parse_jsonl(std::str::from_utf8(&bytes).unwrap())
            .expect("trace parses back")
            .into_iter()
            .map(|ev| match ev {
                TraceEvent::PhaseEnd { phase, .. } => TraceEvent::PhaseEnd { phase, nanos: 0 },
                TraceEvent::RunEnd {
                    results, timed_out, ..
                } => TraceEvent::RunEnd {
                    elapsed_nanos: 0,
                    results,
                    timed_out,
                },
                other => other,
            })
            .collect()
    };
    let sequential = trace(1);
    assert!(sequential.len() > 10, "trace sanity");
    for &threads in &thread_counts() {
        let parallel = trace(threads);
        assert_eq!(parallel, sequential, "threads={threads}: traces diverge");
    }
}

/// A writer that accepts a fixed number of writes, then fails forever.
#[derive(Debug)]
struct FailAfter {
    ok_writes: usize,
}

impl Write for FailAfter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.ok_writes == 0 {
            return Err(io::Error::other("disk full"));
        }
        self.ok_writes -= 1;
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn jsonl_sink_latches_writer_errors_through_the_parallel_path() {
    let db = table4();
    let mut sink = JsonlSink::new(FailAfter { ok_writes: 3 });
    let outcome = mine_with(&db, &exact_cfg(2, Variant::Mpfci, 4), &mut sink);
    // Mining itself is unaffected by the sick writer...
    assert!(!outcome.results.is_empty());
    // ...but the first failure is latched, later events are dropped, and
    // the error surfaces on finish exactly like on the sequential path.
    assert!(sink.has_error(), "write failure must latch");
    let written = sink.lines_written();
    assert!(written >= 1, "some events made it out before the failure");
    let err = sink.finish().expect_err("latched error surfaces on finish");
    assert_eq!(err.to_string(), "disk full");
}

#[test]
#[ignore = "stress test: run with --ignored"]
fn oversubscribed_stress_run_terminates_and_reconciles() {
    // 64 workers on a small machine: massively oversubscribed, must
    // still terminate (the pool's task set is static — no worker ever
    // blocks) and reconcile stats exactly. Bounded well under a minute.
    let mut rng = SmallRng::seed_from_u64(99);
    let quest = QuestConfig::t20i10_p40(400).generate(&mut rng);
    let db = assign_gaussian_probabilities(&quest, 0.8, 0.1, &mut rng);
    let min_sup = db.len() / 4;
    let start = std::time::Instant::now();
    let cfg = MinerConfig::new(min_sup, 0.8).with_threads(64);
    let mut sink = CountingSink::default();
    let stressed = mine_dfs_with(&db, &cfg, &mut sink);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "stress run exceeded its budget: {:?}",
        start.elapsed()
    );
    assert_eq!(sink.stats, stressed.stats, "sharded stats reconcile");
    // Any parallel worker count yields identical output (per-root RNG
    // streams), so a cheap 2-worker run cross-checks the 64-worker one.
    let reference = mine_dfs_with(&db, &cfg.clone().with_threads(2), &mut NullSink);
    assert_outcomes_identical("stress vs 2 workers", &stressed, &reference);
}
