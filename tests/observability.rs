//! End-to-end checks of the tracing layer through the public facade:
//! trace events must reconcile exactly with the miner's own counters,
//! observation must not perturb mining, and JSONL traces must survive a
//! round trip through a real file.

use pfcim::core::{
    parse_jsonl, Algorithm, CountingSink, HistogramSink, JsonlSink, Miner, MinerConfig,
    MiningOutcome, NullSink, Phase, RecordingSink, SearchStrategy, ShardableSink, TraceEvent,
};
use pfcim::utdb::UncertainDatabase;

fn mine_dfs_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Dfs)
        .sink(sink)
        .run()
}

fn mine_bfs_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Bfs)
        .sink(sink)
        .run()
}

fn mine_naive_with<S: ShardableSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Naive)
        .sink(sink)
        .run()
}

fn table2() -> UncertainDatabase {
    UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
    ])
}

fn config() -> MinerConfig {
    MinerConfig::new(2, 0.8)
}

fn bfs_config() -> MinerConfig {
    let mut cfg = config();
    cfg.search = SearchStrategy::Bfs;
    cfg.pruning.superset = false;
    cfg.pruning.subset = false;
    cfg
}

type Runner = fn(&UncertainDatabase, &MinerConfig, &mut CountingSink) -> MiningOutcome;

fn all_miners() -> [(&'static str, MinerConfig, Runner); 3] {
    [
        ("dfs", config(), |db, cfg, sink| {
            mine_dfs_with(db, cfg, sink)
        }),
        ("bfs", bfs_config(), |db, cfg, sink| {
            mine_bfs_with(db, cfg, sink)
        }),
        ("naive", config(), |db, cfg, sink| {
            mine_naive_with(db, cfg, sink)
        }),
    ]
}

#[test]
fn counting_sink_reconciles_with_miner_stats() {
    // Every counter the miner reports must correspond one-to-one with
    // events delivered to the sink, for each search strategy.
    let db = table2();
    for (name, cfg, run) in all_miners() {
        let mut sink = CountingSink::default();
        let outcome = run(&db, &cfg, &mut sink);
        assert_eq!(
            sink.stats, outcome.stats,
            "{name}: sink-counted stats diverge from MinerStats"
        );
        assert_eq!(
            sink.results_emitted,
            outcome.results.len() as u64,
            "{name}: result_emitted events diverge from result count"
        );
        assert_eq!(
            sink.timers, outcome.timers,
            "{name}: phase_end events diverge from PhaseTimers"
        );
    }
}

#[test]
fn dp_decision_audit_reconciles_with_kernel_counters() {
    // Every frequentness-DP row decision carries exactly one recorded
    // reason: downdates match the kernel's incremental counter, and the
    // per-reason rebuild counters (including the refusal reasons) sum
    // exactly to the kernel's recompute counter — for every strategy,
    // both via the sink's copy and the outcome's.
    let db = table2();
    for (name, cfg, run) in all_miners() {
        let mut sink = CountingSink::default();
        let outcome = run(&db, &cfg, &mut sink);
        assert_eq!(
            sink.audit, outcome.audit,
            "{name}: sink-audited decisions diverge from the outcome audit"
        );
        assert_eq!(
            outcome.audit.incremental, outcome.kernel.dp_incremental,
            "{name}: incremental decisions vs kernel counter"
        );
        assert_eq!(
            outcome.audit.recomputed(),
            outcome.kernel.dp_recomputed,
            "{name}: per-reason rebuilds must sum to dp_recomputed"
        );
        assert!(
            outcome.audit.refusals() <= outcome.audit.recomputed(),
            "{name}: refusals are a subset of rebuilds"
        );
        if name == "naive" {
            // The Naive baseline runs its DPs in the PFI stage, outside
            // the audited evaluator: the audit stays empty rather than
            // inventing unattributable decisions.
            assert_eq!(outcome.audit.total(), 0, "naive audit stays empty");
        } else {
            assert_eq!(
                outcome.audit.total(),
                outcome.kernel.dp_rows(),
                "{name}: one decision per DP row"
            );
        }
    }
}

#[test]
fn observation_does_not_perturb_mining() {
    // A fully-instrumented run must produce byte-identical results and
    // counters to the NullSink fast path.
    let db = table2();
    for (name, cfg, run) in all_miners() {
        let baseline = match name {
            "dfs" => mine_dfs_with(&db, &cfg, &mut NullSink),
            "bfs" => mine_bfs_with(&db, &cfg, &mut NullSink),
            _ => mine_naive_with(&db, &cfg, &mut NullSink),
        };
        let observed = run(&db, &cfg, &mut CountingSink::default());
        assert_eq!(
            baseline.results, observed.results,
            "{name}: observation changed the mined results"
        );
        assert_eq!(
            baseline.stats, observed.stats,
            "{name}: observation changed the miner's counters"
        );
        assert_eq!(baseline.timed_out, observed.timed_out);
    }
}

#[test]
fn histogram_sink_does_not_perturb_and_reconciles() {
    // Recording full latency/size distributions must not change what is
    // mined, and the snapshot's counters must mirror the run's stats.
    let db = table2();
    for (name, cfg, _) in all_miners() {
        let baseline = match name {
            "dfs" => mine_dfs_with(&db, &cfg, &mut NullSink),
            "bfs" => mine_bfs_with(&db, &cfg, &mut NullSink),
            _ => mine_naive_with(&db, &cfg, &mut NullSink),
        };
        let mut sink = HistogramSink::new();
        let observed = match name {
            "dfs" => mine_dfs_with(&db, &cfg, &mut sink),
            "bfs" => mine_bfs_with(&db, &cfg, &mut sink),
            _ => mine_naive_with(&db, &cfg, &mut sink),
        };
        assert_eq!(baseline.results, observed.results, "{name}: results moved");
        assert_eq!(baseline.stats, observed.stats, "{name}: counters moved");

        let reg = sink.snapshot();
        assert_eq!(
            reg.counter("nodes_visited"),
            Some(observed.stats.nodes_visited),
            "{name}"
        );
        assert_eq!(
            reg.counter("results"),
            Some(observed.results.len() as u64),
            "{name}"
        );
        assert_eq!(reg.counter("runs"), Some(1), "{name}");
        assert_eq!(
            reg.get_histogram("node_depth").map_or(0, |h| h.count()),
            observed.stats.nodes_visited,
            "{name}: one depth sample per node"
        );
        // Each phase histogram carries one sample per timed phase call.
        for phase in Phase::ALL {
            let hist = reg.get_histogram(&format!("phase_{}_s", phase.name()));
            assert_eq!(
                hist.map_or(0, |h| h.count()),
                observed.timers.count(phase),
                "{name}: {} call count",
                phase.name()
            );
        }
        let elapsed = reg.gauge("elapsed_s").unwrap();
        assert!(
            (elapsed - observed.elapsed.as_secs_f64()).abs() < 1e-9,
            "{name}"
        );
    }
}

#[test]
fn recording_sink_replays_into_the_same_aggregates() {
    // The event stream alone (as a RecordingSink captured it) carries
    // enough information to rebuild the run's statistics.
    let db = table2();
    let mut recorder = RecordingSink::default();
    let outcome = mine_dfs_with(&db, &config(), &mut recorder);
    assert!(matches!(
        recorder.events.first(),
        Some(TraceEvent::RunStart { .. })
    ));
    assert!(matches!(
        recorder.events.last(),
        Some(TraceEvent::RunEnd { .. })
    ));
    let mut counted = CountingSink::default();
    for event in &recorder.events {
        counted.absorb_event(event);
    }
    assert_eq!(counted.stats, outcome.stats);
    assert_eq!(counted.timers, outcome.timers);
    assert_eq!(counted.results_emitted, outcome.results.len() as u64);
}

#[test]
fn jsonl_trace_round_trips_through_a_file() {
    // Stream DFS and BFS runs into one JSONL file, read it back, and
    // check the parsed events reconcile with both runs' summed stats.
    let db = table2();
    let path = std::env::temp_dir().join("pfcim_observability_trace.jsonl");
    let mut sink = JsonlSink::create(&path).expect("create trace file");
    let dfs = mine_dfs_with(&db, &config(), &mut sink);
    let bfs = mine_bfs_with(&db, &bfs_config(), &mut sink);
    sink.finish().expect("flush trace file");

    let text = std::fs::read_to_string(&path).expect("re-read trace file");
    let events = parse_jsonl(&text).expect("parse trace file");
    assert_eq!(events.len(), text.lines().count());

    let mut counted = CountingSink::default();
    for event in &events {
        counted.absorb_event(event);
    }
    let mut expected = dfs.stats;
    expected.absorb(&bfs.stats);
    assert_eq!(counted.stats, expected);
    assert_eq!(
        counted.results_emitted,
        (dfs.results.len() + bfs.results.len()) as u64
    );

    // The two runs are delimited by their run_start algo tags.
    let algos: Vec<&str> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RunStart { algo, .. } => Some(algo.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(algos, ["dfs", "bfs"]);

    std::fs::remove_file(&path).ok();
}
