//! End-to-end tests of the `pfcim` command-line binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pfcim"))
}

fn write_running_example() -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("pfcim_cli_test_{}.dat", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    writeln!(f, "1 2 3 4 : 0.9").unwrap();
    writeln!(f, "1 2 3 : 0.6").unwrap();
    writeln!(f, "1 2 3 : 0.7").unwrap();
    writeln!(f, "1 2 3 4 : 0.9").unwrap();
    path
}

#[test]
fn mines_the_running_example() {
    let path = write_running_example();
    let out = bin()
        .args([path.to_str().unwrap(), "--min-sup", "2", "--pfct", "0.8"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].starts_with("1 2 3 :"), "{stdout}");
    assert!(lines[1].starts_with("1 2 3 4 :"), "{stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn percentage_min_sup_and_variants_agree() {
    let path = write_running_example();
    let mut outputs = Vec::new();
    for variant in ["mpfci", "bfs", "naive"] {
        let out = bin()
            .args([
                path.to_str().unwrap(),
                "--min-sup",
                "50%",
                "--variant",
                variant,
                "--epsilon",
                "0.05",
                "--delta",
                "0.05",
            ])
            .output()
            .unwrap();
        assert!(out.status.success(), "{variant}: {out:?}");
        let stdout = String::from_utf8(out.stdout).unwrap();
        let itemsets: Vec<String> = stdout
            .lines()
            .map(|l| l.split(':').next().unwrap().trim().to_owned())
            .collect();
        outputs.push(itemsets);
    }
    assert_eq!(outputs[0], outputs[1], "bfs disagrees with mpfci");
    assert_eq!(outputs[0], outputs[2], "naive disagrees with mpfci");
    std::fs::remove_file(&path).ok();
}

#[test]
fn stats_flag_reports_counters() {
    let path = write_running_example();
    let out = bin()
        .args([path.to_str().unwrap(), "--min-sup", "2", "--stats"])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nodes="), "{stderr}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_flag_writes_registry_snapshot() {
    let path = write_running_example();
    let metrics =
        std::env::temp_dir().join(format!("pfcim_cli_metrics_{}.json", std::process::id()));
    let out = bin()
        .args([
            path.to_str().unwrap(),
            "--min-sup",
            "2",
            "--stats",
            "--metrics",
            metrics.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    // --stats now includes the histogram summaries...
    assert!(stderr.contains("metrics written to"), "{stderr}");
    assert!(stderr.contains("# node_depth:"), "{stderr}");
    // ...and --metrics wrote the full registry snapshot as JSON.
    let json = std::fs::read_to_string(&metrics).unwrap();
    assert!(json.starts_with("{\"counters\":{"), "{json}");
    assert!(json.contains("\"nodes_visited\":"), "{json}");
    assert!(json.contains("\"node_depth\":{\"count\":"), "{json}");
    // Gauges are sorted alphabetically, so the cache-capacity gauge
    // added alongside the hit rate now leads the object.
    assert!(json.contains("\"elapsed_s\":"), "{json}");
    assert!(json.contains("\"event_cache_capacity\":"), "{json}");
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&metrics).ok();
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = bin().output().unwrap(); // no args
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args(["/nonexistent.dat", "--min-sup", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let path = write_running_example();
    let out = bin()
        .args([path.to_str().unwrap(), "--min-sup", "150%"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin()
        .args([
            path.to_str().unwrap(),
            "--min-sup",
            "2",
            "--variant",
            "quantum",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_file(&path).ok();
}
