//! The central correctness battery: on randomly generated small uncertain
//! databases, every mining configuration must reproduce the result set of
//! the brute-force possible-world oracle exactly.

use pfcim::core::{
    exact_pfci_set, Algorithm, FcpMethod, Miner, MinerConfig, MiningOutcome, Variant,
};
use pfcim::utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};

fn mine(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}

fn mine_naive(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Naive)
        .run()
}
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Random uncertain database small enough for exhaustive world + itemset
/// enumeration.
fn random_utdb(seed: u64, n: usize, num_items: u32, density: f64) -> UncertainDatabase {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    while rows.len() < n {
        let items: Vec<Item> = (0..num_items)
            .filter(|_| rng.random::<f64>() < density)
            .map(Item)
            .collect();
        if items.is_empty() {
            continue;
        }
        // Probabilities over the full range, including near-certain.
        let p = 0.05 + 0.95 * rng.random::<f64>();
        rows.push(UncertainTransaction::new(items, p));
    }
    UncertainDatabase::new(rows, ItemDictionary::new())
}

fn exact_cfg(min_sup: usize, pfct: f64) -> MinerConfig {
    MinerConfig::new(min_sup, pfct).with_fcp_method(FcpMethod::ExactOnly)
}

#[test]
fn dfs_matches_oracle_on_random_databases() {
    for seed in 0..20 {
        let db = random_utdb(seed, 8, 6, 0.5);
        for (min_sup, pfct) in [(1, 0.5), (2, 0.3), (2, 0.7), (3, 0.5), (4, 0.2)] {
            let oracle: Vec<Vec<Item>> = exact_pfci_set(&db, min_sup, pfct)
                .into_iter()
                .map(|p| p.items)
                .collect();
            let got = mine(&db, &exact_cfg(min_sup, pfct)).itemsets();
            assert_eq!(got, oracle, "seed={seed} min_sup={min_sup} pfct={pfct}");
        }
    }
}

#[test]
fn fcp_values_match_oracle_exactly() {
    for seed in 20..30 {
        let db = random_utdb(seed, 8, 5, 0.55);
        let oracle = exact_pfci_set(&db, 2, 0.4);
        let got = mine(&db, &exact_cfg(2, 0.4));
        assert_eq!(got.results.len(), oracle.len(), "seed={seed}");
        for (g, o) in got.results.iter().zip(&oracle) {
            assert_eq!(g.items, o.items);
            assert!(
                (g.fcp - o.fcp).abs() < 1e-9,
                "seed={seed} {:?}: {} vs {}",
                g.items,
                g.fcp,
                o.fcp
            );
        }
    }
}

#[test]
fn every_variant_matches_the_oracle() {
    for seed in 30..38 {
        let db = random_utdb(seed, 9, 5, 0.5);
        let oracle: Vec<Vec<Item>> = exact_pfci_set(&db, 2, 0.5)
            .into_iter()
            .map(|p| p.items)
            .collect();
        for variant in Variant::ALL {
            let cfg = exact_cfg(2, 0.5).with_variant(variant);
            let got = mine(&db, &cfg).itemsets();
            assert_eq!(got, oracle, "seed={seed} variant={}", variant.name());
        }
    }
}

#[test]
fn naive_matches_the_oracle_set() {
    // Naive uses sampling; its membership decisions may flip only for
    // itemsets whose FCP is very close to the threshold. Using a pfct far
    // from any attainable FCP ties the comparison down deterministically.
    for seed in 38..44 {
        let db = random_utdb(seed, 7, 5, 0.6);
        let oracle = exact_pfci_set(&db, 2, 0.5);
        // Only keep cases where no FCP is within 0.08 of the threshold.
        let safe = oracle.iter().all(|p| (p.fcp - 0.5).abs() > 0.08);
        if !safe {
            continue;
        }
        let cfg = MinerConfig::new(2, 0.5).with_approximation(0.05, 0.02);
        let got = mine_naive(&db, &cfg);
        assert_eq!(
            got.itemsets(),
            oracle.iter().map(|p| p.items.clone()).collect::<Vec<_>>(),
            "seed={seed}"
        );
    }
}

#[test]
fn auto_method_matches_exact_method() {
    // Auto switches between inclusion-exclusion and sampling; on small
    // fan-outs it must be bit-identical to ExactOnly.
    for seed in 44..52 {
        let db = random_utdb(seed, 8, 5, 0.5);
        let exact = mine(&db, &exact_cfg(2, 0.4));
        let auto = mine(
            &db,
            &MinerConfig::new(2, 0.4).with_fcp_method(FcpMethod::Auto { exact_cap: 24 }),
        );
        assert_eq!(exact.itemsets(), auto.itemsets(), "seed={seed}");
    }
}

#[test]
fn results_never_include_subthreshold_itemsets() {
    // Soundness half that holds for every configuration, sampled or not:
    // reported FCP values dominate pfct and never exceed Pr_F.
    for seed in 52..60 {
        let db = random_utdb(seed, 10, 6, 0.45);
        let out = mine(&db, &MinerConfig::new(2, 0.6));
        for p in &out.results {
            assert!(p.fcp > 0.6, "{:?} fcp={}", p.items, p.fcp);
            assert!(
                p.fcp <= p.frequent_probability + 1e-9,
                "FCP must not exceed the frequent probability"
            );
        }
    }
}

/// Brute-force possible-world probability that at least `k` of the
/// transactions containing `x` exist, enumerating all `2^n` worlds of
/// the *whole* database (not just the containing rows) so the oracle is
/// independent of the Poisson-binomial factorisation the DP relies on.
fn world_enumeration_tail(db: &UncertainDatabase, x: Item, k: usize) -> f64 {
    let rows = db.transactions();
    let n = rows.len();
    assert!(n <= 12, "world enumeration is 2^n");
    let mut total = 0.0;
    for world in 0u32..(1 << n) {
        let mut prob = 1.0;
        let mut sup = 0usize;
        for (t, row) in rows.iter().enumerate() {
            if world & (1 << t) != 0 {
                prob *= row.probability();
                if row.items().contains(&x) {
                    sup += 1;
                }
            } else {
                prob *= 1.0 - row.probability();
            }
        }
        if sup >= k {
            total += prob;
        }
    }
    total
}

#[test]
fn tail_dp_matches_possible_world_enumeration() {
    // Differential oracle for the frequentness DP itself: on databases
    // small enough for exhaustive world enumeration, both a freshly
    // rebuilt `TailDp` row and a row *downdated* from a superset must
    // agree with the 2^n oracle to within the advertised tolerance.
    use pfcim::prob::TailDp;

    let tol = 1e-9;
    let mut downdates_accepted = 0u32;
    for seed in 200..212 {
        let db = random_utdb(seed, 10, 5, 0.5);
        let all_probs: Vec<f64> = (0..db.len()).map(|t| db.probability(t)).collect();
        for item in 0..5u32 {
            let x = Item(item);
            let containing: Vec<f64> = db
                .transactions()
                .iter()
                .filter(|row| row.items().contains(&x))
                .map(|row| row.probability())
                .collect();
            for k in 1..=4usize {
                let oracle = world_enumeration_tail(&db, x, k);

                // Rebuilt row.
                let rebuilt = TailDp::from_probs(k, containing.iter().copied());
                assert!(
                    (rebuilt.tail() - oracle).abs() <= 1e-9,
                    "seed={seed} item={item} k={k}: rebuilt {} vs oracle {oracle}",
                    rebuilt.tail()
                );

                // Downdated row: start from the superset row over ALL
                // transactions and remove the ones not containing `x` —
                // exactly what the miner's child-node downdate does.
                let mut dp = TailDp::from_probs(k, all_probs.iter().copied());
                let mut ok = true;
                for row in db.transactions() {
                    if !row.items().contains(&x) && !dp.try_remove(row.probability(), tol) {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    downdates_accepted += 1;
                    assert!(
                        (dp.tail() - oracle).abs() <= tol,
                        "seed={seed} item={item} k={k}: downdated {} vs oracle {oracle} \
                         (measured err bound {})",
                        dp.tail(),
                        dp.error_bound()
                    );
                }
            }
        }
    }
    // The battery is pointless if the downdate path never fires.
    assert!(
        downdates_accepted > 100,
        "only {downdates_accepted} downdate chains accepted at tol={tol}"
    );
}

#[test]
fn timed_out_runs_return_sound_subsets() {
    let db = random_utdb(99, 12, 8, 0.5);
    let full = mine(&db, &exact_cfg(2, 0.3));
    assert!(!full.timed_out);
    // A zero budget must abort immediately but cleanly.
    let cfg = exact_cfg(2, 0.3).with_time_budget(std::time::Duration::ZERO);
    let aborted = mine(&db, &cfg);
    assert!(aborted.timed_out);
    for items in aborted.itemsets() {
        assert!(full.itemsets().contains(&items), "subset of the full run");
    }
}
