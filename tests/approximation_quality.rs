//! Quality of the `ApproxFCP` estimator against exact values (the test
//! counterpart of the paper's Fig. 11), on databases small enough for
//! exact ground truth but rich enough to exercise real event families.

use pfcim::core::{approx_fcp, exact_fcp_by_worlds, NonClosureEvents};
use pfcim::utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_utdb(seed: u64, n: usize, num_items: u32) -> UncertainDatabase {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    while rows.len() < n {
        let items: Vec<Item> = (0..num_items)
            .filter(|_| rng.random::<f64>() < 0.6)
            .map(Item)
            .collect();
        if items.is_empty() {
            continue;
        }
        rows.push(UncertainTransaction::new(
            items,
            0.2 + 0.75 * rng.random::<f64>(),
        ));
    }
    UncertainDatabase::new(rows, ItemDictionary::new())
}

fn family(db: &UncertainDatabase, x: &[Item], min_sup: usize) -> NonClosureEvents {
    let ext = (0..db.num_items() as u32)
        .map(Item)
        .filter(|i| x.binary_search(i).is_err());
    NonClosureEvents::build(db, &db.tidset_of_itemset(x).into_bitmap(), ext, min_sup)
}

#[test]
fn approx_fcp_tracks_exact_values_across_itemsets() {
    let mut worst: f64 = 0.0;
    let mut measured = 0usize;
    for seed in 0..12 {
        let db = random_utdb(seed, 9, 5);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabc);
        let m = db.num_items() as u32;
        for mask in 1u32..(1 << m) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let min_sup = 2;
            let pr_f = pfcim::pfim::frequent_probability(&db, &x, min_sup);
            if pr_f < 0.05 {
                continue;
            }
            let exact = exact_fcp_by_worlds(&db, &x, min_sup);
            let events = family(&db, &x, min_sup);
            let r = approx_fcp(&events, pr_f, 0.05, 0.05, &mut rng);
            worst = worst.max((r.fcp - exact).abs());
            measured += 1;
        }
    }
    assert!(measured > 100, "need a meaningful sample: {measured}");
    // The FPRAS bounds the union term to a (1±ε) factor w.h.p.; across
    // hundreds of itemsets the worst absolute FCP error stays small.
    assert!(worst < 0.05, "worst absolute error {worst}");
}

#[test]
fn error_shrinks_with_epsilon() {
    let db = random_utdb(77, 10, 5);
    let m = db.num_items() as u32;
    let min_sup = 2;
    let mut err_loose = 0.0f64;
    let mut err_tight = 0.0f64;
    // Average over itemsets and repeated runs so the comparison is
    // statistically stable under fixed seeds.
    for round in 0..10u64 {
        for mask in 1u32..(1 << m) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let pr_f = pfcim::pfim::frequent_probability(&db, &x, min_sup);
            if pr_f < 0.2 {
                continue;
            }
            let exact = exact_fcp_by_worlds(&db, &x, min_sup);
            let events = family(&db, &x, min_sup);
            if events.is_empty() {
                continue;
            }
            let mut rng1 = SmallRng::seed_from_u64(round * 31 + 1);
            let mut rng2 = SmallRng::seed_from_u64(round * 31 + 2);
            let loose = approx_fcp(&events, pr_f, 0.5, 0.2, &mut rng1);
            let tight = approx_fcp(&events, pr_f, 0.05, 0.2, &mut rng2);
            err_loose += (loose.fcp - exact).abs();
            err_tight += (tight.fcp - exact).abs();
        }
    }
    assert!(
        err_tight < err_loose,
        "tight ε should track truth better: {err_tight} vs {err_loose}"
    );
}

#[test]
fn estimator_is_deterministic_under_seed() {
    let db = random_utdb(5, 8, 5);
    let x: Vec<Item> = vec![Item(0)];
    let events = family(&db, &x, 2);
    let pr_f = pfcim::pfim::frequent_probability(&db, &x, 2);
    let a = approx_fcp(&events, pr_f, 0.1, 0.1, &mut SmallRng::seed_from_u64(9));
    let b = approx_fcp(&events, pr_f, 0.1, 0.1, &mut SmallRng::seed_from_u64(9));
    assert_eq!(a.fcp, b.fcp);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn empty_families_short_circuit() {
    // An itemset containing every item has no extensions.
    let db = UncertainDatabase::parse_symbolic(&[("a b", 0.5), ("a b", 0.5)]);
    let x: Vec<Item> = vec![Item(0), Item(1)];
    let events = family(&db, &x, 1);
    assert!(events.is_empty());
    let r = approx_fcp(&events, 0.75, 0.1, 0.1, &mut SmallRng::seed_from_u64(1));
    assert_eq!(r.fcp, 0.75);
    assert_eq!(r.samples, 0);
}
