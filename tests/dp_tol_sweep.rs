//! Tolerance-sweep regression gate: the mined result set must be
//! invariant across the whole `dp_error_tol` range (strict `0.0` through
//! loose `1e-5`) and across the legacy `dp_stability` knob. The
//! tolerance only decides *how* a node's frequentness row is obtained
//! (downdate vs rebuild), never *what* is mined — any divergence means
//! downdate error leaked into a pruning or acceptance decision.
//!
//! `scripts/ci.sh` runs this with `PFCIM_SWEEP_ROWS` raised so the sweep
//! also covers a database large enough for deep downdate chains.

use pfcim::core::{FcpMethod, Miner, MinerConfig, MiningOutcome};
use pfcim::utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Paper-style synthetic: random transactions over a small item universe
/// with existential probabilities from a clamped Gaussian(mean, sd) —
/// the same uncertainty model the paper's Mushroom/Quest cells use.
fn gaussian_utdb(seed: u64, n: usize, num_items: u32, mean: f64, sd: f64) -> UncertainDatabase {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    while rows.len() < n {
        // Density 0.7 keeps a child's tid-set larger than the rows it
        // drops from its parent (≈0.7·parent vs ≈0.3·parent), so the
        // downdate is cheaper than a rebuild at every DFS level and every
        // sweep size — lower densities make cost-skip win on average.
        let items: Vec<Item> = (0..num_items)
            .filter(|_| rng.random::<f64>() < 0.7)
            .map(Item)
            .collect();
        if items.is_empty() {
            continue;
        }
        // Irwin–Hall sum of 12 uniforms ~ N(0, 1). The upper clamp
        // mirrors `utdb`'s `MAX_ASSIGNED_PROBABILITY`: p = 1.0 rows are
        // structurally non-deconvolvable (q = 0) and would turn every
        // chain through them into a rebuild regardless of tolerance.
        let z: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
        let p = (mean + sd * z).clamp(0.001, 0.999);
        rows.push(UncertainTransaction::new(items, p));
    }
    UncertainDatabase::new(rows, ItemDictionary::new())
}

fn sweep_rows() -> usize {
    std::env::var("PFCIM_SWEEP_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

fn mine(db: &UncertainDatabase, cfg: MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg).run()
}

fn assert_same_results(reference: &MiningOutcome, got: &MiningOutcome, tol: f64, leg: &str) {
    assert_eq!(
        got.itemsets(),
        reference.itemsets(),
        "{leg}: mined itemset set diverged from the strict reference"
    );
    for (r, g) in reference.results.iter().zip(&got.results) {
        assert!(
            (r.fcp - g.fcp).abs() <= tol,
            "{leg}: FCP drifted beyond {tol}: {} vs {} for {:?}",
            g.fcp,
            r.fcp,
            r.items
        );
        assert!(
            (r.frequent_probability - g.frequent_probability).abs() <= tol,
            "{leg}: Pr_F drifted beyond {tol}: {} vs {} for {:?}",
            g.frequent_probability,
            r.frequent_probability,
            r.items
        );
    }
}

#[test]
fn result_set_is_invariant_across_the_tolerance_sweep() {
    let n = sweep_rows();
    // The (0.5, 0.5) cell is the Mushroom-style regime where the
    // measured-error downdate must fire; the (0.8, 0.1) Quest-style cell
    // is kept for the invariance gate only — its children drop most of
    // their parent's rows (cost-skip) and its clamped p = 1.0 rows are
    // genuinely non-deconvolvable, so the fast path is optional there.
    for (seed, mean, sd, expect_incremental) in [(7u64, 0.5, 0.5, true), (11, 0.8, 0.1, false)] {
        let db = gaussian_utdb(seed, n, 8, mean, sd);
        // Item density 0.7 puts expected k-itemset support near
        // 0.5·0.7^k·n, so a min_sup of n/20 keeps several DFS levels
        // decisively frequent at every sweep size — shallow levels have
        // deeply underflowed heads (exact downdates) and the deepest
        // levels approach the support boundary (measured-error refusals),
        // exercising both regimes. (At n/5 the 200-row CI leg pruned
        // every child on raw count before a single removal was attempted.)
        let min_sup = (n / 20).max(2);
        let base = MinerConfig::new(min_sup, 0.4).with_fcp_method(FcpMethod::ExactOnly);

        // Strict reference: tol 0.0 accepts only bit-exact downdates, so
        // every row is numerically identical to a fresh rebuild.
        let reference = mine(&db, base.clone().with_dp_error_tol(0.0));
        assert!(
            !reference.results.is_empty(),
            "sweep dataset (seed {seed}) mined nothing — gate is vacuous"
        );

        // Default leg must also prove the downdate path fires on
        // Gaussian data — that is the whole point of the measured bound.
        let default_leg = mine(&db, base.clone());
        if expect_incremental {
            assert!(
                default_leg.kernel.dp_incremental > 0,
                "seed {seed}: no incremental downdates on Gaussian data at the \
                 default tolerance (audit: {})",
                default_leg.audit
            );
        }
        assert_same_results(&reference, &default_leg, 1e-9, "default");

        let loose = mine(&db, base.clone().with_dp_error_tol(1e-5));
        assert_same_results(&reference, &loose, 1e-5, "loose tol=1e-5");

        // Legacy dp_stability spellings still resolve to tolerances via
        // MinerConfig::effective_dp_error_tol and must mine identically.
        let legacy_strict = mine(&db, base.clone().with_dp_stability(1.0));
        assert_same_results(&reference, &legacy_strict, 1e-9, "legacy strict");
        let legacy_loose = mine(&db, base.clone().with_dp_stability(1e-6));
        assert_same_results(&reference, &legacy_loose, 1e-5, "legacy loose");
    }
}
