//! Soundness of each pruning rule, checked against the possible-world
//! oracle on randomized inputs: anything a pruning removes must truly
//! have frequent closed probability 0 (structural prunings) or below the
//! threshold (probabilistic prunings).

use pfcim::core::{exact_fcp_by_worlds, FcpMethod, Miner, MinerConfig, MiningOutcome, Variant};
use pfcim::prob::hoeffding::hoeffding_infrequent;
use pfcim::utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};

fn mine(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

fn random_utdb(seed: u64, n: usize, num_items: u32, density: f64) -> UncertainDatabase {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    while rows.len() < n {
        let items: Vec<Item> = (0..num_items)
            .filter(|_| rng.random::<f64>() < density)
            .map(Item)
            .collect();
        if items.is_empty() {
            continue;
        }
        rows.push(UncertainTransaction::new(
            items,
            0.1 + 0.9 * rng.random::<f64>(),
        ));
    }
    UncertainDatabase::new(rows, ItemDictionary::new())
}

/// Lemma 4.2 as stated: pre-item count equality forces Pr_FC = 0.
#[test]
fn superset_pruning_condition_implies_zero_fcp() {
    for seed in 0..15 {
        let db = random_utdb(seed, 9, 6, 0.55);
        let m = db.num_items() as u32;
        for mask in 1u32..(1 << m) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let tids = db.tidset_of_itemset(&x);
            if tids.is_empty() {
                continue;
            }
            let last = x.last().unwrap().0;
            let pre_covers = (0..last)
                .map(Item)
                .filter(|i| x.binary_search(i).is_err())
                .any(|i| tids.is_subset(db.tidset_of(i)));
            if pre_covers {
                for min_sup in 1..=3 {
                    let fcp = exact_fcp_by_worlds(&db, &x, min_sup);
                    assert!(
                        fcp < 1e-12,
                        "seed={seed} X={x:?} min_sup={min_sup}: fcp={fcp}"
                    );
                }
            }
        }
    }
}

/// Lemma 4.3 as stated: a count-equal extension forces Pr_FC(X) = 0, and
/// the same holds for any superset of X avoiding that extension item.
#[test]
fn subset_pruning_condition_implies_zero_fcp() {
    for seed in 15..30 {
        let db = random_utdb(seed, 9, 6, 0.55);
        let m = db.num_items() as u32;
        for mask in 1u32..(1 << m) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let tids = db.tidset_of_itemset(&x);
            if tids.is_empty() {
                continue;
            }
            let equal_ext = (0..m)
                .map(Item)
                .filter(|e| x.binary_search(e).is_err())
                .find(|e| tids.intersection_count(db.tidset_of(*e)) == tids.count());
            if let Some(e) = equal_ext {
                let fcp = exact_fcp_by_worlds(&db, &x, 1);
                assert!(fcp < 1e-12, "seed={seed} X={x:?} e={e}: fcp={fcp}");
            }
        }
    }
}

/// Lemma 4.1: the Chernoff–Hoeffding refutation never disagrees with the
/// exact frequent probability.
#[test]
fn chernoff_hoeffding_pruning_is_conservative() {
    for seed in 30..45 {
        let db = random_utdb(seed, 12, 6, 0.5);
        let m = db.num_items() as u32;
        for mask in 1u32..(1 << m) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let tids = db.tidset_of_itemset(&x);
            let count = tids.count();
            if count == 0 {
                continue;
            }
            let esup = db.expected_support(&x);
            for (min_sup, pfct) in [(2, 0.5), (4, 0.8), (6, 0.3)] {
                if hoeffding_infrequent(esup, count, min_sup, pfct) {
                    let pr_f = pfcim::pfim::frequent_probability(&db, &x, min_sup);
                    assert!(
                        pr_f <= pfct + 1e-9,
                        "seed={seed} X={x:?}: CH pruned but Pr_F={pr_f} > {pfct}"
                    );
                }
            }
        }
    }
}

/// Toggling any pruning individually must leave the mined set untouched.
#[test]
fn pruning_toggles_never_change_results() {
    for seed in 45..57 {
        let db = random_utdb(seed, 10, 6, 0.5);
        let base = MinerConfig::new(2, 0.4).with_fcp_method(FcpMethod::ExactOnly);
        let reference = mine(&db, &base);
        for variant in [
            Variant::NoCh,
            Variant::NoSuper,
            Variant::NoSub,
            Variant::NoBound,
        ] {
            let out = mine(&db, &base.clone().with_variant(variant));
            assert_eq!(
                out.itemsets(),
                reference.itemsets(),
                "seed={seed} {}",
                variant.name()
            );
            for (a, b) in out.results.iter().zip(&reference.results) {
                assert!((a.fcp - b.fcp).abs() < 1e-9);
            }
        }
    }
}

/// Prunings only ever reduce work, never add it.
#[test]
fn prunings_reduce_visited_nodes() {
    let db = random_utdb(7, 14, 7, 0.55);
    let base = MinerConfig::new(2, 0.4).with_fcp_method(FcpMethod::ExactOnly);
    let with_all = mine(&db, &base);
    for variant in [Variant::NoSuper, Variant::NoSub] {
        let without = mine(&db, &base.clone().with_variant(variant));
        assert!(
            without.stats.nodes_visited >= with_all.stats.nodes_visited,
            "{}: {} < {}",
            variant.name(),
            without.stats.nodes_visited,
            with_all.stats.nodes_visited
        );
    }
}
