//! End-to-end pipeline: generate → overlay Gaussian probabilities →
//! serialize → reload → mine, through the public facade only.

use pfcim::core::{Miner, MinerConfig, MiningOutcome};
use pfcim::utdb::gen::{MushroomConfig, QuestConfig};
use pfcim::utdb::{assign_gaussian_probabilities, io};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mine(db: &pfcim::utdb::UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}

#[test]
fn quest_pipeline_round_trips_and_mines() {
    let mut rng = SmallRng::seed_from_u64(1);
    let certain = QuestConfig::t20i10_p40(400).generate(&mut rng);
    let db = assign_gaussian_probabilities(&certain, 0.8, 0.1, &mut rng);

    // Serialize and reload.
    let text = io::to_dat(&db);
    let reloaded = io::parse_dat(&text).expect("round trip");
    assert_eq!(reloaded.len(), db.len());
    for (a, b) in db.transactions().iter().zip(reloaded.transactions()) {
        assert_eq!(a.items(), b.items());
        assert!((a.probability() - b.probability()).abs() < 1e-12);
    }

    // Mining the reloaded database gives the identical result set.
    let ms = db.len() / 4;
    let cfg = MinerConfig::new(ms, 0.8);
    let from_original = mine(&db, &cfg);
    let from_reloaded = mine(&reloaded, &cfg);
    assert_eq!(from_original.itemsets(), from_reloaded.itemsets());
    assert!(!from_original.results.is_empty(), "workload sanity");
}

#[test]
fn mushroom_pipeline_produces_closed_structure() {
    let mut rng = SmallRng::seed_from_u64(2);
    let certain = MushroomConfig::new(400).generate(&mut rng);
    let db = assign_gaussian_probabilities(&certain, 0.5, 0.5, &mut rng);
    let ms = db.len() / 5;
    let out = mine(&db, &MinerConfig::new(ms, 0.8));
    // The dense categorical structure must produce structural pruning
    // work and a non-trivial closed result set.
    assert!(out.stats.superset_pruned + out.stats.subset_pruned > 0);
    assert!(!out.results.is_empty());
    // Every result itemset must actually occur in the data with at least
    // min_sup possible supporting transactions.
    for p in &out.results {
        assert!(db.count_of_itemset(&p.items) >= ms);
    }
}

#[test]
fn relative_min_sup_monotonicity_on_generated_data() {
    // More permissive support thresholds can only grow the result set of
    // *frequent* itemsets; for closed sets the counts may wiggle but the
    // PFI superset containment must hold.
    let mut rng = SmallRng::seed_from_u64(3);
    let certain = QuestConfig::t20i10_p40(500).generate(&mut rng);
    let db = assign_gaussian_probabilities(&certain, 0.8, 0.1, &mut rng);
    let loose = pfcim::pfim::probabilistic_frequent_itemsets(&db, db.len() / 6, 0.8);
    let strict = pfcim::pfim::probabilistic_frequent_itemsets(&db, db.len() / 4, 0.8);
    let loose_sets: Vec<_> = loose.iter().map(|p| p.items.clone()).collect();
    for p in &strict {
        assert!(loose_sets.contains(&p.items));
    }
    assert!(loose.len() >= strict.len());
}

#[test]
fn pfcis_are_a_subset_of_pfis() {
    let mut rng = SmallRng::seed_from_u64(4);
    let certain = MushroomConfig::new(300).generate(&mut rng);
    let db = assign_gaussian_probabilities(&certain, 0.8, 0.1, &mut rng);
    let ms = db.len() / 4;
    let pfis: Vec<_> = pfcim::pfim::probabilistic_frequent_itemsets(&db, ms, 0.8)
        .into_iter()
        .map(|p| p.items)
        .collect();
    let pfcis = mine(&db, &MinerConfig::new(ms, 0.8));
    for p in &pfcis.results {
        assert!(
            pfis.contains(&p.items),
            "{:?} is closed-frequent but not frequent?",
            p.items
        );
    }
    assert!(pfcis.results.len() <= pfis.len());
}
