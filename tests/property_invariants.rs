//! Property-based invariants (proptest) over randomly generated uncertain
//! databases, exercising the full stack through the facade.

use pfcim::core::{exact_fcp_by_worlds, FcpMethod, Miner, MinerConfig, MiningOutcome};
use pfcim::prob::SupportDistribution;
use pfcim::utdb::{Item, ItemDictionary, TidSet, UncertainDatabase, UncertainTransaction};
use proptest::prelude::*;

fn mine(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}

/// Strategy: a small random uncertain database (≤ 10 tuples, ≤ 6 items).
fn arb_utdb() -> impl Strategy<Value = UncertainDatabase> {
    let tx = (1u32..64, 0.05f64..1.0);
    proptest::collection::vec(tx, 1..10).prop_map(|rows| {
        let transactions: Vec<UncertainTransaction> = rows
            .into_iter()
            .map(|(mask, p)| {
                let items: Vec<Item> = (0..6).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                UncertainTransaction::new(items, p)
            })
            .collect();
        UncertainDatabase::new(transactions, ItemDictionary::new())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental sandwich: 0 ≤ Pr_FC(X) ≤ Pr_F(X) ≤ 1 for every
    /// itemset, with both sides computed by independent routes.
    #[test]
    fn fcp_is_sandwiched_by_frequent_probability(db in arb_utdb(), min_sup in 1usize..4) {
        let m = db.num_items() as u32;
        for mask in 1u32..(1 << m.min(6)) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            let fcp = exact_fcp_by_worlds(&db, &x, min_sup);
            let pr_f = pfcim::pfim::frequent_probability(&db, &x, min_sup);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&fcp));
            prop_assert!(fcp <= pr_f + 1e-9, "X={x:?}: {fcp} > {pr_f}");
        }
    }

    /// Closed probabilities of all itemsets in a world partition:
    /// in every world, summing world probability over itemsets that are
    /// frequent-closed equals the world's contribution — so the total FCP
    /// mass equals the expected number of frequent closed itemsets.
    #[test]
    fn total_fcp_mass_equals_expected_fci_count(db in arb_utdb()) {
        use pfcim::utdb::PossibleWorlds;
        let min_sup = 1;
        let m = db.num_items() as u32;
        let mut total_fcp = 0.0;
        for mask in 1u32..(1 << m.min(6)) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            total_fcp += exact_fcp_by_worlds(&db, &x, min_sup);
        }
        let mut expected_count = 0.0;
        for (wmask, p) in PossibleWorlds::new(&db) {
            let mut count = 0usize;
            for imask in 1u32..(1 << m.min(6)) {
                let x: Vec<Item> =
                    (0..m).filter(|i| imask >> i & 1 == 1).map(Item).collect();
                if PossibleWorlds::is_frequent_closed_in_world(&db, wmask, &x, min_sup) {
                    count += 1;
                }
            }
            expected_count += p * count as f64;
        }
        prop_assert!((total_fcp - expected_count).abs() < 1e-8,
            "{total_fcp} vs {expected_count}");
    }

    /// The mined result is exactly the oracle filter of the FCP function.
    #[test]
    fn miner_equals_pointwise_oracle(db in arb_utdb(), pfct in 0.05f64..0.95) {
        let min_sup = 2;
        let cfg = MinerConfig::new(min_sup, pfct).with_fcp_method(FcpMethod::ExactOnly);
        let got = mine(&db, &cfg).itemsets();
        let m = db.num_items() as u32;
        let mut want = Vec::new();
        for mask in 1u32..(1 << m.min(6)) {
            let x: Vec<Item> = (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
            if db.count_of_itemset(&x) == 0 {
                continue;
            }
            if exact_fcp_by_worlds(&db, &x, min_sup) > pfct {
                want.push(x);
            }
        }
        want.sort();
        prop_assert_eq!(got, want);
    }

    /// Support distribution invariants: PMF sums to one, the tail is the
    /// complement of the CDF, and the mean matches the expected support.
    #[test]
    fn support_distribution_axioms(db in arb_utdb()) {
        for id in 0..db.num_items() as u32 {
            let tids = db.tidset_of(Item(id));
            let probs = db.probabilities_of(tids);
            if probs.is_empty() {
                continue;
            }
            let dist = SupportDistribution::new(&probs);
            let total: f64 = dist.as_slice().iter().sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            for k in 0..=probs.len() {
                let lhs = dist.tail(k);
                let rhs = if k == 0 { 1.0 } else { 1.0 - dist.cdf(k - 1) };
                prop_assert!((lhs - rhs).abs() < 1e-9);
            }
            prop_assert!((dist.mean() - probs.iter().sum::<f64>()).abs() < 1e-9);
        }
    }

    /// Tid-set algebra laws on random sets.
    #[test]
    fn tidset_algebra_laws(a_bits in proptest::collection::vec(any::<bool>(), 1..200),
                           b_bits in proptest::collection::vec(any::<bool>(), 1..200)) {
        let n = a_bits.len().max(b_bits.len());
        let a = TidSet::from_tids(n, a_bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i));
        let b = TidSet::from_tids(n, b_bits.iter().enumerate().filter(|(_, &b)| b).map(|(i, _)| i));
        // |A| = |A∩B| + |A\B|
        prop_assert_eq!(a.count(), a.intersection_count(&b) + a.difference_count(&b));
        // inclusion–exclusion for union
        prop_assert_eq!(
            a.union(&b).count() + a.intersection_count(&b),
            a.count() + b.count()
        );
        // subset iff difference empty
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        // intersection commutes
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        // iteration round-trips
        let rebuilt = TidSet::from_tids(n, a.iter());
        prop_assert_eq!(rebuilt, a);
    }

    /// Monotonicity of the mined set in pfct: raising the threshold can
    /// only shrink the result.
    #[test]
    fn result_set_is_monotone_in_pfct(db in arb_utdb()) {
        let lo = mine(&db, &MinerConfig::new(2, 0.3).with_fcp_method(FcpMethod::ExactOnly));
        let hi = mine(&db, &MinerConfig::new(2, 0.7).with_fcp_method(FcpMethod::ExactOnly));
        for items in hi.itemsets() {
            prop_assert!(lo.itemsets().contains(&items));
        }
    }
}
