//! Quickstart: the paper's running example end to end.
//!
//! Builds the uncertain transaction database of Table II, enumerates its
//! possible worlds (Table III), and mines the probabilistic frequent
//! closed itemsets at `min_sup = 2`, `pfct = 0.8` — recovering the
//! paper's result set `{a,b,c}: 0.8754` and `{a,b,c,d}: 0.81`.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pfcim::core::{exact_fcp_by_worlds, Miner, MinerConfig};
use pfcim::utdb::{PossibleWorlds, UncertainDatabase};

fn main() {
    // Table II — the concise form of the traffic-sensor readings of
    // Table I: four tuples, each with an existential probability.
    let db = UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9), // T1
        ("a b c", 0.6),   // T2
        ("a b c", 0.7),   // T3
        ("a b c d", 0.9), // T4
    ]);
    println!("Uncertain database (Table II): {:?}", db);
    for (tid, t) in db.transactions().iter().enumerate() {
        println!(
            "  T{} {} : {}",
            tid + 1,
            db.render(t.items()),
            t.probability()
        );
    }

    // Possible-world semantics (Table III): 2^4 = 16 exact databases.
    println!("\nPossible worlds (Table III):");
    let mut total = 0.0;
    for (mask, p) in PossibleWorlds::new(&db) {
        let members: Vec<String> = (0..db.len())
            .filter(|t| mask >> t & 1 == 1)
            .map(|t| format!("T{}", t + 1))
            .collect();
        total += p;
        println!("  PW{{{}}}: {:.4}", members.join(","), p);
    }
    println!("  (total probability {total:.4})");

    // Mine the probabilistic frequent closed itemsets.
    let config = MinerConfig::new(2, 0.8);
    let outcome = Miner::new(&db).config(config.clone()).run();
    println!(
        "\nPFCIs at min_sup=2, pfct=0.8 ({} nodes visited, {:?}):",
        outcome.stats.nodes_visited, outcome.elapsed
    );
    for pfci in &outcome.results {
        let exact = exact_fcp_by_worlds(&db, &pfci.items, 2);
        println!(
            "  {}   (exact by world enumeration: {:.4})",
            pfci.render(&db),
            exact
        );
    }
    assert_eq!(outcome.results.len(), 2, "the paper finds exactly two");
    println!(
        "\nOut of 15 probabilistic frequent itemsets, only these {} are\n\
         closed with high probability — the compression the paper is after.",
        outcome.results.len()
    );
}
