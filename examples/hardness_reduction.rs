//! The #P-hardness reduction of Theorem 3.1, executed (the paper's
//! Table VI).
//!
//! Maps a monotone DNF formula to an uncertain transaction database such
//! that counting satisfying assignments is exactly computing the
//! probability that the designated itemset `X` is *not* closed — so a
//! polynomial closed-probability oracle would solve #MDNF.
//!
//! ```text
//! cargo run --release --example hardness_reduction
//! ```

use pfcim::core::hardness::{closed_probability_by_worlds, MonotoneDnf};

fn main() {
    // F = (v1 ∧ v2 ∧ v3) ∨ (v1 ∧ v2 ∧ v4) ∨ (v2 ∧ v3 ∧ v4)
    let dnf = MonotoneDnf::paper_example();
    println!("Monotone DNF over {} variables:", dnf.num_vars);
    for (i, clause) in dnf.clauses.iter().enumerate() {
        let vars: Vec<String> = clause.iter().map(|v| format!("v{}", v + 1)).collect();
        println!("  C{} = {}", i + 1, vars.join(" ∧ "));
    }

    let (db, x) = dnf.to_reduction_database();
    println!("\nReduction database (Table VI):");
    for (tid, t) in db.transactions().iter().enumerate() {
        println!(
            "  T{} {} : {}",
            tid + 1,
            db.render(t.items()),
            t.probability()
        );
    }

    let n = dnf.count_satisfying();
    let worlds = 1u64 << dnf.num_vars;
    let pr_closed = closed_probability_by_worlds(&db, &[x]);
    let pr_not_closed = 1.0 - pr_closed;
    println!(
        "\n#satisfying assignments N = {n} of {worlds}\n\
         Pr{{X not closed}}          = {pr_not_closed:.6}\n\
         N / 2^m                    = {:.6}",
        n as f64 / worlds as f64
    );
    assert!((pr_not_closed - n as f64 / worlds as f64).abs() < 1e-12);
    println!(
        "\nThe identity holds: a polynomial-time closed-probability oracle\n\
         would count monotone-DNF solutions, which is #P-complete — hence\n\
         computing (frequent) closed probabilities is #P-hard, and the\n\
         miner's bounding/pruning/sampling machinery is warranted."
    );
}
