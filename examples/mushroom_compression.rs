//! Compression quality on the Mushroom-like dataset — the paper's Fig. 10
//! in miniature.
//!
//! Compares the sizes of four result sets at each support level:
//! frequent itemsets (FI) and frequent closed itemsets (FCI) on the exact
//! data, probabilistic frequent itemsets (PFI) and probabilistic frequent
//! closed itemsets (PFCI) after Gaussian probabilities are overlaid.
//!
//! ```text
//! cargo run --release --example mushroom_compression
//! ```

use pfcim::core::Miner;
use pfcim::utdb::assign_gaussian_probabilities;
use pfcim::utdb::gen::MushroomConfig;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let mut rng = SmallRng::seed_from_u64(8124);
    let certain = MushroomConfig::new(800).generate(&mut rng);
    println!("Mushroom-like dataset: {}", certain.stats());

    // The paper's compression study overlays Gaussian(0.8, 0.1).
    let uncertain = assign_gaussian_probabilities(&certain, 0.8, 0.1, &mut rng);

    println!(
        "\n{:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "min_sup", "FI", "FCI", "PFI", "PFCI", "FCI/FI", "PFCI/PFI"
    );
    for rel in [0.3, 0.25, 0.2, 0.15] {
        let ms = ((rel * certain.len() as f64) as usize).max(1);
        let fi = pfcim::fim::frequent_itemsets_fpgrowth(&certain, ms);
        let fci = pfcim::fim::frequent_closed_itemsets(&certain, ms);
        let pfi = pfcim::pfim::probabilistic_frequent_itemsets(&uncertain, ms, 0.8);
        let pfci = Miner::new(&uncertain).min_sup(ms).pfct(0.8).run();
        println!(
            "{:>8} {:>8} {:>8} {:>8} {:>8} {:>8.3} {:>9.3}",
            rel,
            fi.len(),
            fci.len(),
            pfi.len(),
            pfci.results.len(),
            fci.len() as f64 / fi.len() as f64,
            pfci.results.len() as f64 / pfi.len().max(1) as f64,
        );
        // Closedness always compresses, never loses frequency info.
        assert!(fci.len() <= fi.len());
        assert!(pfci.results.len() <= pfi.len());
    }

    println!(
        "\nAs min_sup decreases the closed result set shrinks relative to\n\
         the full frequent set — probabilistic closed itemsets retain the\n\
         compression power of their exact counterparts (the paper's Fig 10)."
    );
}
