//! Why frequent *closed probability* semantics matter — the paper's
//! Table IV comparison against the probabilistic-support definition of
//! the earlier work it cites as [34].
//!
//! Under the probabilistic-support semantics, the reported "closed"
//! itemsets flip as the frequency threshold moves ({a} at pft 0.9 but
//! {ab} at pft 0.8), even though nothing about the data changed. Under
//! the paper's possible-world semantics the answer is stable: {abc} and
//! {abcd} are the itemsets that are actually frequent-and-closed in the
//! probable worlds, at every threshold below their FCP.
//!
//! ```text
//! cargo run --release --example semantics_comparison
//! ```

use pfcim::core::{exact_fcp_by_worlds, Miner};
use pfcim::pfim::{frequent_probability, probabilistic_support};
use pfcim::utdb::{Item, UncertainDatabase};

fn items(db: &UncertainDatabase, s: &str) -> Vec<Item> {
    s.split_whitespace()
        .map(|x| db.dictionary().get(x).unwrap())
        .collect()
}

fn main() {
    // Table IV: Table II plus two extra low-probability tuples.
    let db = UncertainDatabase::parse_symbolic(&[
        ("a b c d", 0.9),
        ("a b c", 0.6),
        ("a b c", 0.7),
        ("a b c d", 0.9),
        ("a b", 0.4),
        ("a", 0.4),
    ]);
    println!("Database (Table IV):");
    for (tid, t) in db.transactions().iter().enumerate() {
        println!(
            "  T{} {} : {}",
            tid + 1,
            db.render(t.items()),
            t.probability()
        );
    }

    println!("\n-- probabilistic-support semantics ([34]) --");
    for pft in [0.9, 0.8] {
        println!("  pft = {pft}:");
        for s in ["a", "a b", "a b c", "a b c d"] {
            let x = items(&db, s);
            println!(
                "    probabilistic support of {} = {}",
                db.render(&x),
                probabilistic_support(&db, &x, pft)
            );
        }
    }
    println!(
        "  -> at min_sup 2 the \"closed\" answer flips between {{a}} and\n\
         {{a, b}} as pft moves from 0.9 to 0.8, despite Pr_F({{a}}) = {:.3}\n\
         and Pr_F({{a,b}}) = {:.3} both clearing either threshold.",
        frequent_probability(&db, &items(&db, "a"), 2),
        frequent_probability(&db, &items(&db, "a b"), 2),
    );

    println!("\n-- frequent closed probability semantics (this paper) --");
    for s in ["a", "a b", "a b c", "a b c d"] {
        let x = items(&db, s);
        println!(
            "  Pr_FC({}) = {:.4}",
            db.render(&x),
            exact_fcp_by_worlds(&db, &x, 2)
        );
    }
    for pfct in [0.8, 0.7, 0.6, 0.5] {
        let outcome = Miner::new(&db).min_sup(2).pfct(pfct).run();
        let rendered: Vec<String> = outcome
            .results
            .iter()
            .map(|p| db.render(&p.items))
            .collect();
        println!("  pfct = {pfct}: {}", rendered.join("  "));
    }
    println!(
        "\nThe result set is stable: {{a,b,c}} and {{a,b,c,d}} are returned\n\
         at every threshold they clear, while {{a}} and {{a,b}} — whose\n\
         frequent closed probabilities are tiny — never appear. The FCP\n\
         measures the degree to which an itemset is frequent-and-closed\n\
         across possible worlds, which probabilistic support cannot."
    );
}
