//! The paper's motivating scenario: uncertain traffic-sensor logs.
//!
//! An intelligent traffic system records (location, weather, time-slot,
//! congestion-level) readings whose existence is uncertain because of
//! sensor noise. Mining probabilistic frequent closed itemsets surfaces
//! reliable patterns like "the HKUST gate is congested at 2–3 pm when it
//! rains" without drowning the analyst in redundant sub-patterns.
//!
//! ```text
//! cargo run --release --example traffic_monitoring
//! ```

use pfcim::core::{Miner, MinerConfig};
use pfcim::utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A simulated sensor fleet: each crossing has a characteristic pattern
/// plus noise, and each reading carries a confidence from the sensor.
fn simulate_readings(rng: &mut SmallRng, dict: &mut ItemDictionary) -> Vec<UncertainTransaction> {
    let locations = ["loc=HKUST-gate", "loc=Clearwater-Bay-Rd", "loc=Hang-Hau"];
    let weather = ["weather=rain", "weather=clear"];
    let slots = ["time=07-09", "time=14-15", "time=18-20"];
    let congestion = ["speed=jammed", "speed=slow", "speed=free"];

    let mut rows = Vec::new();
    for i in 0..600 {
        // The monitored crossing reports densely during the afternoon
        // rain window (1 in 5 readings), so the planted pattern clears
        // the support threshold the way a real hotspot would.
        let (loc, wx, slot) = if i % 5 == 0 {
            ("loc=HKUST-gate", "weather=rain", "time=14-15")
        } else {
            (
                locations[rng.random_range(0..locations.len())],
                weather[rng.random_range(0..weather.len())],
                slots[rng.random_range(0..slots.len())],
            )
        };
        // The planted pattern: HKUST gate + rain + afternoon slot jams
        // with high probability; everything else is mostly free-flowing.
        let level = if loc == "loc=HKUST-gate" && wx == "weather=rain" && slot == "time=14-15" {
            if rng.random::<f64>() < 0.9 {
                "speed=jammed"
            } else {
                "speed=slow"
            }
        } else {
            congestion[rng.random_range(1..congestion.len())]
        };
        let items: Vec<Item> = [loc, wx, slot, level]
            .iter()
            .map(|s| dict.intern(s))
            .collect();
        // Sensor confidence: good sensors most of the time, degraded ones
        // occasionally.
        let confidence = if rng.random::<f64>() < 0.8 {
            0.85 + 0.14 * rng.random::<f64>()
        } else {
            0.4 + 0.3 * rng.random::<f64>()
        };
        rows.push(UncertainTransaction::new(items, confidence));
    }
    rows
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(2012);
    let mut dict = ItemDictionary::new();
    let rows = simulate_readings(&mut rng, &mut dict);
    let db = UncertainDatabase::new(rows, dict);
    println!("Sensor log: {}", db.stats());

    // Patterns seen in at least 4% of readings with 90% confidence.
    let min_sup = db.len() / 25;
    let config = MinerConfig::new(min_sup, 0.9);
    let outcome = Miner::new(&db).config(config.clone()).run();

    println!(
        "\nProbabilistic frequent closed patterns (min_sup={min_sup}, pfct=0.9):\n\
         {} found in {:?} ({} nodes, {} pruned structurally)\n",
        outcome.results.len(),
        outcome.elapsed,
        outcome.stats.nodes_visited,
        outcome.stats.superset_pruned + outcome.stats.subset_pruned,
    );
    let mut ranked = outcome.results.clone();
    ranked.sort_by(|a, b| b.fcp.partial_cmp(&a.fcp).unwrap());
    for pfci in ranked.iter().take(12) {
        println!("  {}", pfci.render(&db));
    }

    // The planted pattern must surface as (a subset of) a closed pattern
    // containing the jam indicator.
    let jam = db.dictionary().get("speed=jammed").expect("interned");
    let jam_patterns: Vec<_> = outcome
        .results
        .iter()
        .filter(|p| p.items.contains(&jam))
        .collect();
    assert!(
        !jam_patterns.is_empty(),
        "the planted congestion pattern should be discovered"
    );
    println!(
        "\n{} closed pattern(s) involve a jam — the planted rule\n\
         (HKUST gate, rain, 14-15h) is recovered from noisy sensors.",
        jam_patterns.len()
    );
}
