//! `pfcim` — command-line miner for uncertain transaction data.
//!
//! ```text
//! pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] [--epsilon E] [--delta D]
//!       [--variant mpfci|bfs|naive] [--threads N] [--stats]
//!       [--trace FILE.jsonl] [--metrics FILE.json] [--prom FILE.prom]
//! pfcim profile <FILE.dat> --min-sup <N|R%> [--out trace.json] [--sample N]
//!       [...same mining options...]
//! ```
//!
//! `--threads N` fans the DFS miner and `ApproxFCP` sampling out over an
//! in-process work-stealing pool. `N = 0` — the default — picks the
//! machine's available parallelism (overridable via the `PFCIM_THREADS`
//! environment variable); `N = 1` is the sequential miner. Exact-mode
//! output is identical for every thread count.
//!
//! `--metrics` records the run through a [`HistogramSink`] and writes
//! the resulting registry snapshot (counters mirroring the miner stats,
//! plus latency/size histogram summaries) as one JSON object. `--stats`
//! prints the same distributions to stderr alongside the counters.
//! `--prom` writes the same snapshot in the Prometheus text exposition
//! format (counters, gauges and `summary` quantiles, all prefixed
//! `pfcim_`), self-checked through [`lint_prometheus`] before writing.
//!
//! The `profile` subcommand attaches a [`SpanProfiler`] and writes a
//! Chrome trace-event JSON (load it at <https://ui.perfetto.dev>) with
//! one track per miner worker: DFS node spans, per-phase spans beneath
//! them, and the work-stealing pool's task/steal/idle spans. `--sample N`
//! records every Nth node span (default 1 = all); the per-reason DP
//! decision audit is printed to stderr after the run.
//!
//! The input format is one transaction per line: whitespace-separated
//! integer item ids, optionally followed by `: probability` (lines
//! without one are certain transactions). Example:
//!
//! ```text
//! 1 2 3 : 0.9
//! 2 3 : 0.45
//! 1 2 3
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pfcim::core::{
    lint_prometheus, Algorithm, HistogramSink, JsonlSink, Miner, MinerConfig, SearchStrategy,
    SpanProfiler, Tee,
};
use pfcim::utdb::io;

struct Args {
    file: PathBuf,
    min_sup_raw: String,
    pfct: f64,
    epsilon: f64,
    delta: f64,
    variant: String,
    threads: Option<usize>,
    stats: bool,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    prom: Option<PathBuf>,
    profile: bool,
    out: PathBuf,
    sample: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut min_sup_raw = None;
    let mut pfct = 0.8;
    let mut epsilon = 0.1;
    let mut delta = 0.1;
    let mut variant = "mpfci".to_owned();
    let mut threads = None;
    let mut stats = false;
    let mut trace = None;
    let mut metrics = None;
    let mut prom = None;
    let mut profile = false;
    let mut out = PathBuf::from("trace.json");
    let mut sample = 1u32;
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("profile") {
        profile = true;
        argv.next();
    }
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--min-sup" => min_sup_raw = Some(value("--min-sup")?),
            "--pfct" => pfct = value("--pfct")?.parse().map_err(|e| format!("pfct: {e}"))?,
            "--epsilon" => {
                epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("epsilon: {e}"))?
            }
            "--delta" => {
                delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("delta: {e}"))?
            }
            "--variant" => variant = value("--variant")?,
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("threads: {e}"))?,
                )
            }
            "--stats" => stats = true,
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--prom" => prom = Some(PathBuf::from(value("--prom")?)),
            "--out" if profile => out = PathBuf::from(value("--out")?),
            "--sample" if profile => {
                sample = value("--sample")?
                    .parse()
                    .map_err(|e| format!("sample: {e}"))?;
                if sample == 0 {
                    return Err("--sample must be at least 1".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if file.is_none() && !other.starts_with('-') => file = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        file: file.ok_or("missing input file")?,
        min_sup_raw: min_sup_raw.ok_or("missing --min-sup")?,
        pfct,
        epsilon,
        delta,
        variant,
        threads,
        stats,
        trace,
        metrics,
        prom,
        profile,
        out,
        sample,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] \
                 [--epsilon E] [--delta D] [--variant mpfci|bfs|naive] [--threads N] \
                 [--stats] [--trace FILE.jsonl] [--metrics FILE.json] [--prom FILE.prom]\n\
                 \x20      pfcim profile <FILE.dat> --min-sup <N|R%> [--out trace.json] \
                 [--sample N] [...same mining options...]"
            );
            return ExitCode::from(2);
        }
    };

    let db = match io::read_dat(&args.file) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.file.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {}: {}", args.file.display(), db.stats());

    // --min-sup accepts an absolute count or a percentage like "30%".
    let min_sup = if let Some(pct) = args.min_sup_raw.strip_suffix('%') {
        match pct.parse::<f64>() {
            Ok(r) if r > 0.0 && r <= 100.0 => {
                ((r / 100.0 * db.len() as f64).round() as usize).max(1)
            }
            _ => {
                eprintln!("error: bad percentage {:?}", args.min_sup_raw);
                return ExitCode::from(2);
            }
        }
    } else {
        match args.min_sup_raw.parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: bad --min-sup: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let mut config =
        MinerConfig::new(min_sup, args.pfct).with_approximation(args.epsilon, args.delta);
    if let Some(threads) = args.threads {
        // 0 = auto (available parallelism). Unset keeps the config
        // default (auto, overridable via PFCIM_THREADS).
        config = config.with_threads(threads);
    }
    match args.variant.as_str() {
        "mpfci" => {}
        "bfs" => {
            config.search = SearchStrategy::Bfs;
            config.pruning.superset = false;
            config.pruning.subset = false;
        }
        "naive" => {}
        other => {
            eprintln!("error: unknown variant {other:?}");
            return ExitCode::from(2);
        }
    }

    let mut trace_sink = match &args.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some((path, sink)),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // --metrics, --stats and --prom all record the run's cost
    // distributions; `profile` attaches the hierarchical span recorder.
    let mut hist =
        (args.stats || args.metrics.is_some() || args.prom.is_some()).then(HistogramSink::new);
    let mut profiler = args
        .profile
        .then(|| SpanProfiler::new().with_sampling(args.sample));
    let outcome = {
        let mut sink = Tee(
            profiler.as_mut(),
            Tee(trace_sink.as_mut().map(|(_, s)| s), hist.as_mut()),
        );
        let algorithm = match args.variant.as_str() {
            "naive" => Algorithm::Naive,
            "bfs" => Algorithm::Bfs,
            _ => Algorithm::Dfs,
        };
        Miner::new(&db)
            .config(config.clone())
            .algorithm(algorithm)
            .sink(&mut sink)
            .run()
    };
    if let Some((path, sink)) = trace_sink {
        // A write failure anywhere mid-run is latched in the sink and
        // surfaces on finish; report how much trace survived and fail.
        let written = sink.lines_written();
        match sink.finish() {
            Ok(_) => eprintln!("trace written to {} ({written} events)", path.display()),
            Err(e) => {
                eprintln!(
                    "error: trace {} failed after {written} events: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(hist) = &hist {
        if let Some(path) = &args.metrics {
            let json = hist.snapshot().to_json();
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: cannot write metrics {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("metrics written to {}", path.display());
        }
        if let Some(path) = &args.prom {
            let text = hist.snapshot().to_prometheus("pfcim");
            if let Err(e) = lint_prometheus(&text) {
                eprintln!("error: generated Prometheus output fails its own linter: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("prometheus metrics written to {}", path.display());
        }
    }
    if let Some(profiler) = &profiler {
        if let Err(e) = std::fs::write(&args.out, profiler.chrome_trace_json()) {
            eprintln!("error: cannot write trace {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "chrome trace written to {} ({} spans, sample 1/{}; load at https://ui.perfetto.dev)",
            args.out.display(),
            profiler.spans().len(),
            args.sample,
        );
        // The decision audit: one recorded reason per frequentness-DP
        // row — downdates taken, and why each refused row was rebuilt.
        eprintln!("# dp audit: {}", outcome.audit);
    }

    for pfci in &outcome.results {
        let ids: Vec<String> = pfci.items.iter().map(|i| i.0.to_string()).collect();
        println!("{} : {:.6}", ids.join(" "), pfci.fcp);
    }
    eprintln!(
        "{} probabilistic frequent closed itemsets (min_sup={min_sup}, pfct={}) in {:?}",
        outcome.results.len(),
        args.pfct,
        outcome.elapsed
    );
    if args.stats {
        eprintln!("{}", outcome.timed_stats());
        eprintln!("# kernel: {}", outcome.kernel);
        // The raw hit/miss counters above are hard to eyeball; print the
        // derived rate and the capacity that produced it.
        let (hits, misses) = (
            outcome.kernel.bound_cache_hits,
            outcome.kernel.bound_cache_misses,
        );
        let lookups = hits + misses;
        let rate = if lookups == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / lookups as f64)
        };
        eprintln!(
            "# bound_cache: hit rate {rate} ({hits}/{lookups} lookups), \
             event_cache_capacity={}",
            config.event_cache_capacity
        );
        eprintln!("# dp audit: {}", outcome.audit);
        if let Some(hist) = &hist {
            for (name, h) in hist.snapshot().histograms() {
                eprintln!("# {name}: {}", h.summary());
            }
        }
    }
    ExitCode::SUCCESS
}
