//! `pfcim` — command-line miner for uncertain transaction data.
//!
//! ```text
//! pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] [--epsilon E] [--delta D]
//!       [--variant mpfci|bfs|naive] [--stats]
//! ```
//!
//! The input format is one transaction per line: whitespace-separated
//! integer item ids, optionally followed by `: probability` (lines
//! without one are certain transactions). Example:
//!
//! ```text
//! 1 2 3 : 0.9
//! 2 3 : 0.45
//! 1 2 3
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pfcim::core::{mine, mine_naive, MinerConfig, SearchStrategy};
use pfcim::utdb::io;

struct Args {
    file: PathBuf,
    min_sup_raw: String,
    pfct: f64,
    epsilon: f64,
    delta: f64,
    variant: String,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut min_sup_raw = None;
    let mut pfct = 0.8;
    let mut epsilon = 0.1;
    let mut delta = 0.1;
    let mut variant = "mpfci".to_owned();
    let mut stats = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--min-sup" => min_sup_raw = Some(value("--min-sup")?),
            "--pfct" => pfct = value("--pfct")?.parse().map_err(|e| format!("pfct: {e}"))?,
            "--epsilon" => {
                epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("epsilon: {e}"))?
            }
            "--delta" => {
                delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("delta: {e}"))?
            }
            "--variant" => variant = value("--variant")?,
            "--stats" => stats = true,
            "--help" | "-h" => return Err(String::new()),
            other if file.is_none() && !other.starts_with('-') => file = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        file: file.ok_or("missing input file")?,
        min_sup_raw: min_sup_raw.ok_or("missing --min-sup")?,
        pfct,
        epsilon,
        delta,
        variant,
        stats,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] \
                 [--epsilon E] [--delta D] [--variant mpfci|bfs|naive] [--stats]"
            );
            return ExitCode::from(2);
        }
    };

    let db = match io::read_dat(&args.file) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.file.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {}: {}", args.file.display(), db.stats());

    // --min-sup accepts an absolute count or a percentage like "30%".
    let min_sup = if let Some(pct) = args.min_sup_raw.strip_suffix('%') {
        match pct.parse::<f64>() {
            Ok(r) if r > 0.0 && r <= 100.0 => {
                ((r / 100.0 * db.len() as f64).round() as usize).max(1)
            }
            _ => {
                eprintln!("error: bad percentage {:?}", args.min_sup_raw);
                return ExitCode::from(2);
            }
        }
    } else {
        match args.min_sup_raw.parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: bad --min-sup: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let config = MinerConfig::new(min_sup, args.pfct).with_approximation(args.epsilon, args.delta);
    let outcome = match args.variant.as_str() {
        "mpfci" => mine(&db, &config),
        "bfs" => {
            let mut cfg = config;
            cfg.search = SearchStrategy::Bfs;
            cfg.pruning.superset = false;
            cfg.pruning.subset = false;
            mine(&db, &cfg)
        }
        "naive" => mine_naive(&db, &config),
        other => {
            eprintln!("error: unknown variant {other:?}");
            return ExitCode::from(2);
        }
    };

    for pfci in &outcome.results {
        let ids: Vec<String> = pfci.items.iter().map(|i| i.0.to_string()).collect();
        println!("{} : {:.6}", ids.join(" "), pfci.fcp);
    }
    eprintln!(
        "{} probabilistic frequent closed itemsets (min_sup={min_sup}, pfct={}) in {:?}",
        outcome.results.len(),
        args.pfct,
        outcome.elapsed
    );
    if args.stats {
        eprintln!("{}", outcome.stats);
    }
    ExitCode::SUCCESS
}
