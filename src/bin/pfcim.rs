//! `pfcim` — command-line miner for uncertain transaction data.
//!
//! ```text
//! pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] [--epsilon E] [--delta D]
//!       [--variant mpfci|bfs|naive] [--threads N] [--event-cache N] [--stats]
//!       [--trace FILE.jsonl] [--metrics FILE.json] [--prom FILE.prom]
//!       [--telemetry ADDR] [--flight-dump FILE.jsonl]
//! pfcim profile <FILE.dat> --min-sup <N|R%> [--out trace.json] [--sample N]
//!       [...same mining options...]
//! pfcim top <ADDR> [--interval MS] [--iterations N]
//! ```
//!
//! `--threads N` fans the DFS miner and `ApproxFCP` sampling out over an
//! in-process work-stealing pool. `N = 0` — the default — picks the
//! machine's available parallelism (overridable via the `PFCIM_THREADS`
//! environment variable); `N = 1` is the sequential miner. Exact-mode
//! output is identical for every thread count. `--event-cache N` sets the
//! evaluator's bound-input cache capacity (default 32, overridable via
//! `PFCIM_EVENT_CACHE`; 0 disables memoization).
//!
//! `--metrics` records the run through a [`HistogramSink`] and writes
//! the resulting registry snapshot (counters mirroring the miner stats,
//! plus latency/size histogram summaries) as one JSON object. `--stats`
//! prints the same distributions to stderr alongside the counters.
//! `--prom` writes the same snapshot in the Prometheus text exposition
//! format (counters, gauges and `summary` quantiles, all prefixed
//! `pfcim_`), self-checked through [`lint_prometheus`] before writing.
//!
//! `--telemetry ADDR` attaches a live telemetry session: a background
//! sampler snapshots the run every 100 ms into a lock-free flight
//! recorder, and a std-only HTTP thread on `ADDR` (port 0 picks a free
//! port; the bound address is printed to stderr as
//! `telemetry listening on http://…`) serves `GET /metrics` (linted
//! Prometheus text), `GET /healthz` (status, ETA, last-progress
//! watchdog) and `GET /flight` (the recorder as JSONL) *while the run is
//! alive*. A panic hook dumps the recorder to `--flight-dump` (default
//! `flight.jsonl`) so a dying run leaves a post-mortem; successful runs
//! write the same file on exit. `pfcim top ADDR` renders a refreshing
//! terminal dashboard from any such endpoint.
//!
//! The `profile` subcommand attaches a [`SpanProfiler`] and writes a
//! Chrome trace-event JSON (load it at <https://ui.perfetto.dev>) with
//! one track per miner worker: DFS node spans, per-phase spans beneath
//! them, and the work-stealing pool's task/steal/idle spans. `--sample N`
//! records every Nth node span (default 1 = all); the per-reason DP
//! decision audit is printed to stderr after the run.
//!
//! The input format is one transaction per line: whitespace-separated
//! integer item ids, optionally followed by `: probability` (lines
//! without one are certain transactions). Example:
//!
//! ```text
//! 1 2 3 : 0.9
//! 2 3 : 0.45
//! 1 2 3
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pfcim::core::{
    http_get, lint_prometheus, Algorithm, HistogramSink, JsonlSink, Miner, MinerConfig, MinerSink,
    SearchStrategy, ShardableSink, SpanProfiler, Tee, Telemetry,
};
use pfcim::utdb::io;

struct Args {
    file: PathBuf,
    min_sup_raw: String,
    pfct: f64,
    epsilon: f64,
    delta: f64,
    variant: String,
    threads: Option<usize>,
    event_cache: Option<usize>,
    stats: bool,
    trace: Option<PathBuf>,
    metrics: Option<PathBuf>,
    prom: Option<PathBuf>,
    telemetry: Option<String>,
    flight_dump: Option<PathBuf>,
    profile: bool,
    out: PathBuf,
    sample: u32,
}

fn parse_args() -> Result<Args, String> {
    let mut file = None;
    let mut min_sup_raw = None;
    let mut pfct = 0.8;
    let mut epsilon = 0.1;
    let mut delta = 0.1;
    let mut variant = "mpfci".to_owned();
    let mut threads = None;
    let mut event_cache = None;
    let mut stats = false;
    let mut trace = None;
    let mut metrics = None;
    let mut prom = None;
    let mut telemetry = None;
    let mut flight_dump = None;
    let mut profile = false;
    let mut out = PathBuf::from("trace.json");
    let mut sample = 1u32;
    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("profile") {
        profile = true;
        argv.next();
    }
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--min-sup" => min_sup_raw = Some(value("--min-sup")?),
            "--pfct" => pfct = value("--pfct")?.parse().map_err(|e| format!("pfct: {e}"))?,
            "--epsilon" => {
                epsilon = value("--epsilon")?
                    .parse()
                    .map_err(|e| format!("epsilon: {e}"))?
            }
            "--delta" => {
                delta = value("--delta")?
                    .parse()
                    .map_err(|e| format!("delta: {e}"))?
            }
            "--variant" => variant = value("--variant")?,
            "--threads" => {
                threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("threads: {e}"))?,
                )
            }
            "--event-cache" => {
                event_cache = Some(
                    value("--event-cache")?
                        .parse()
                        .map_err(|e| format!("event-cache: {e}"))?,
                )
            }
            "--stats" => stats = true,
            "--trace" => trace = Some(PathBuf::from(value("--trace")?)),
            "--metrics" => metrics = Some(PathBuf::from(value("--metrics")?)),
            "--prom" => prom = Some(PathBuf::from(value("--prom")?)),
            "--telemetry" => telemetry = Some(value("--telemetry")?),
            "--flight-dump" => flight_dump = Some(PathBuf::from(value("--flight-dump")?)),
            "--out" if profile => out = PathBuf::from(value("--out")?),
            "--sample" if profile => {
                sample = value("--sample")?
                    .parse()
                    .map_err(|e| format!("sample: {e}"))?;
                if sample == 0 {
                    return Err("--sample must be at least 1".into());
                }
            }
            "--help" | "-h" => return Err(String::new()),
            other if file.is_none() && !other.starts_with('-') => file = Some(PathBuf::from(other)),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        file: file.ok_or("missing input file")?,
        min_sup_raw: min_sup_raw.ok_or("missing --min-sup")?,
        pfct,
        epsilon,
        delta,
        variant,
        threads,
        event_cache,
        stats,
        trace,
        metrics,
        prom,
        telemetry,
        flight_dump,
        profile,
        out,
        sample,
    })
}

// --- test-injection sinks ---------------------------------------------
//
// The CI telemetry smoke needs two things a healthy miner never does on
// purpose: run slowly enough to be scraped mid-flight, and die with a
// panic so the flight-recorder dump can be verified. Both are injected
// through environment variables so no public flag grows test semantics:
// `PFCIM_TELEMETRY_TEST_SLOW_NODE_US` sleeps that many microseconds per
// enumeration node; `PFCIM_INJECT_PANIC=N` panics at the Nth node.

#[derive(Clone)]
struct SlowNode(Duration);

impl MinerSink for SlowNode {
    fn node_entered(&mut self, _depth: usize) {
        std::thread::sleep(self.0);
    }
}

impl ShardableSink for SlowNode {
    type Shard = SlowNode;
    fn make_shard(&self) -> SlowNode {
        self.clone()
    }
    fn absorb_shard(&mut self, _shard: SlowNode) {}
}

#[derive(Clone)]
struct PanicAfter {
    limit: u64,
    seen: Arc<AtomicU64>,
}

impl MinerSink for PanicAfter {
    fn node_entered(&mut self, _depth: usize) {
        if self.seen.fetch_add(1, Ordering::Relaxed) + 1 == self.limit {
            panic!("injected panic at node {} (PFCIM_INJECT_PANIC)", self.limit);
        }
    }
}

impl ShardableSink for PanicAfter {
    type Shard = PanicAfter;
    fn make_shard(&self) -> PanicAfter {
        // Clones share the counter, so the Nth node panics regardless of
        // which worker reaches it.
        self.clone()
    }
    fn absorb_shard(&mut self, _shard: PanicAfter) {}
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("top") {
        return run_top();
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: pfcim <FILE.dat> --min-sup <N|R%> [--pfct P] \
                 [--epsilon E] [--delta D] [--variant mpfci|bfs|naive] [--threads N] \
                 [--event-cache N] [--stats] [--trace FILE.jsonl] [--metrics FILE.json] \
                 [--prom FILE.prom] [--telemetry ADDR] [--flight-dump FILE.jsonl]\n\
                 \x20      pfcim profile <FILE.dat> --min-sup <N|R%> [--out trace.json] \
                 [--sample N] [...same mining options...]\n\
                 \x20      pfcim top <ADDR> [--interval MS] [--iterations N]"
            );
            return ExitCode::from(2);
        }
    };

    let db = match io::read_dat(&args.file) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("error reading {}: {e}", args.file.display());
            return ExitCode::FAILURE;
        }
    };
    eprintln!("loaded {}: {}", args.file.display(), db.stats());

    // --min-sup accepts an absolute count or a percentage like "30%".
    let min_sup = if let Some(pct) = args.min_sup_raw.strip_suffix('%') {
        match pct.parse::<f64>() {
            Ok(r) if r > 0.0 && r <= 100.0 => {
                ((r / 100.0 * db.len() as f64).round() as usize).max(1)
            }
            _ => {
                eprintln!("error: bad percentage {:?}", args.min_sup_raw);
                return ExitCode::from(2);
            }
        }
    } else {
        match args.min_sup_raw.parse() {
            Ok(n) => n,
            Err(e) => {
                eprintln!("error: bad --min-sup: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let mut config =
        MinerConfig::new(min_sup, args.pfct).with_approximation(args.epsilon, args.delta);
    if let Some(threads) = args.threads {
        // 0 = auto (available parallelism). Unset keeps the config
        // default (auto, overridable via PFCIM_THREADS).
        config = config.with_threads(threads);
    }
    if let Some(capacity) = args.event_cache {
        config = config.with_event_cache_capacity(capacity);
    }
    match args.variant.as_str() {
        "mpfci" => {}
        "bfs" => {
            config.search = SearchStrategy::Bfs;
            config.pruning.superset = false;
            config.pruning.subset = false;
        }
        "naive" => {}
        other => {
            eprintln!("error: unknown variant {other:?}");
            return ExitCode::from(2);
        }
    }

    let mut trace_sink = match &args.trace {
        Some(path) => match JsonlSink::create(path) {
            Ok(sink) => Some((path, sink)),
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // --metrics, --stats and --prom all record the run's cost
    // distributions; `profile` attaches the hierarchical span recorder.
    let mut hist =
        (args.stats || args.metrics.is_some() || args.prom.is_some()).then(HistogramSink::new);
    let mut profiler = args
        .profile
        .then(|| SpanProfiler::new().with_sampling(args.sample));

    // --telemetry: sampler + flight recorder + scrape endpoint + panic
    // dump, all alive for the duration of the run.
    let flight_path = args
        .flight_dump
        .clone()
        .unwrap_or_else(|| PathBuf::from("flight.jsonl"));
    let telemetry = match &args.telemetry {
        Some(addr) => {
            let mut t = Telemetry::start();
            match t.serve(addr) {
                Ok(local) => eprintln!("telemetry listening on http://{local}"),
                Err(e) => {
                    eprintln!("error: cannot bind telemetry endpoint {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            t.install_panic_dump(&flight_path);
            Some(t)
        }
        None => None,
    };
    let mut tel_sink = telemetry.as_ref().map(|t| t.sink());

    let mut slow =
        env_u64("PFCIM_TELEMETRY_TEST_SLOW_NODE_US").map(|us| SlowNode(Duration::from_micros(us)));
    let mut inject_panic = env_u64("PFCIM_INJECT_PANIC")
        .filter(|&n| n > 0)
        .map(|n| PanicAfter {
            limit: n,
            seen: Arc::new(AtomicU64::new(0)),
        });

    let outcome = {
        let mut sink = Tee(
            tel_sink.as_mut(),
            Tee(
                profiler.as_mut(),
                Tee(
                    trace_sink.as_mut().map(|(_, s)| s),
                    Tee(hist.as_mut(), Tee(slow.as_mut(), inject_panic.as_mut())),
                ),
            ),
        );
        let algorithm = match args.variant.as_str() {
            "naive" => Algorithm::Naive,
            "bfs" => Algorithm::Bfs,
            _ => Algorithm::Dfs,
        };
        Miner::new(&db)
            .config(config.clone())
            .algorithm(algorithm)
            .sink(&mut sink)
            .run()
    };
    if let Some(telemetry) = &telemetry {
        // The same dump a panic would have produced, minus the dying.
        if let Err(e) = std::fs::write(&flight_path, telemetry.flight_jsonl()) {
            eprintln!(
                "error: cannot write flight recorder {}: {e}",
                flight_path.display()
            );
            return ExitCode::FAILURE;
        }
        eprintln!("flight recorder written to {}", flight_path.display());
    }
    if let Some((path, sink)) = trace_sink {
        // A write failure anywhere mid-run is latched in the sink and
        // surfaces on finish; report how much trace survived and fail.
        let written = sink.lines_written();
        match sink.finish() {
            Ok(_) => eprintln!("trace written to {} ({written} events)", path.display()),
            Err(e) => {
                eprintln!(
                    "error: trace {} failed after {written} events: {e}",
                    path.display()
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(hist) = &hist {
        if let Some(path) = &args.metrics {
            let json = hist.snapshot().to_json();
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("error: cannot write metrics {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("metrics written to {}", path.display());
        }
        if let Some(path) = &args.prom {
            let text = hist.snapshot().to_prometheus("pfcim");
            if let Err(e) = lint_prometheus(&text) {
                eprintln!("error: generated Prometheus output fails its own linter: {e}");
                return ExitCode::FAILURE;
            }
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("prometheus metrics written to {}", path.display());
        }
    }
    if let Some(profiler) = &profiler {
        if let Err(e) = std::fs::write(&args.out, profiler.chrome_trace_json()) {
            eprintln!("error: cannot write trace {}: {e}", args.out.display());
            return ExitCode::FAILURE;
        }
        eprintln!(
            "chrome trace written to {} ({} spans, sample 1/{}; load at https://ui.perfetto.dev)",
            args.out.display(),
            profiler.spans().len(),
            args.sample,
        );
        // The decision audit: one recorded reason per frequentness-DP
        // row — downdates taken, and why each refused row was rebuilt.
        eprintln!("# dp audit: {}", outcome.audit);
    }

    for pfci in &outcome.results {
        let ids: Vec<String> = pfci.items.iter().map(|i| i.0.to_string()).collect();
        println!("{} : {:.6}", ids.join(" "), pfci.fcp);
    }
    eprintln!(
        "{} probabilistic frequent closed itemsets (min_sup={min_sup}, pfct={}) in {:?}",
        outcome.results.len(),
        args.pfct,
        outcome.elapsed
    );
    if args.stats {
        eprintln!("{}", outcome.timed_stats());
        eprintln!("# kernel: {}", outcome.kernel);
        // The raw hit/miss counters above are hard to eyeball; print the
        // derived rate and the capacity that produced it.
        let (hits, misses) = (
            outcome.kernel.bound_cache_hits,
            outcome.kernel.bound_cache_misses,
        );
        let lookups = hits + misses;
        let rate = if lookups == 0 {
            "-".to_owned()
        } else {
            format!("{:.1}%", 100.0 * hits as f64 / lookups as f64)
        };
        eprintln!(
            "# bound_cache: hit rate {rate} ({hits}/{lookups} lookups), \
             event_cache_capacity={}",
            config.event_cache_capacity
        );
        eprintln!("# dp audit: {}", outcome.audit);
        if let Some(hist) = &hist {
            for (name, h) in hist.snapshot().histograms() {
                eprintln!("# {name}: {}", h.summary());
            }
        }
    }
    ExitCode::SUCCESS
}

// --- pfcim top --------------------------------------------------------

/// Pull a string field out of a flat JSON object without a parser: the
/// telemetry `/healthz` body is machine-generated with known keys, so a
/// substring scan is reliable enough for a dashboard.
fn json_str(body: &str, key: &str) -> Option<String> {
    let tail = &body[body.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let tail = tail.strip_prefix('"')?;
    Some(tail[..tail.find('"')?].to_owned())
}

/// Like [`json_str`] but for a bare number (returns `None` for `null`).
fn json_num(body: &str, key: &str) -> Option<f64> {
    let tail = &body[body.find(&format!("\"{key}\":"))? + key.len() + 3..];
    let end = tail.find([',', '}']).unwrap_or(tail.len());
    tail[..end].trim().parse().ok()
}

/// Parse the plain samples out of a Prometheus text body into
/// `(name, value)` pairs (labelled samples like quantiles are skipped —
/// the dashboard only needs the scalar families).
fn prom_samples(body: &str) -> Vec<(String, f64)> {
    body.lines()
        .filter(|l| !l.starts_with('#') && !l.contains('{'))
        .filter_map(|l| {
            let (name, value) = l.split_once(' ')?;
            Some((name.to_owned(), value.trim().parse().ok()?))
        })
        .collect()
}

fn run_top() -> ExitCode {
    let mut addr = None;
    let mut interval_ms = 500u64;
    let mut iterations = 0u64; // 0 = until the run finishes (or forever)
    let mut argv = std::env::args().skip(2);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--interval" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(ms) => interval_ms = ms,
                None => {
                    eprintln!("error: --interval needs a millisecond value");
                    return ExitCode::from(2);
                }
            },
            "--iterations" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(n) => iterations = n,
                None => {
                    eprintln!("error: --iterations needs a count");
                    return ExitCode::from(2);
                }
            },
            other if addr.is_none() && !other.starts_with('-') => addr = Some(other.to_owned()),
            other => {
                eprintln!("error: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("usage: pfcim top <ADDR> [--interval MS] [--iterations N]");
        return ExitCode::from(2);
    };
    let timeout = Duration::from_secs(2);
    let mut prev: Option<(f64, f64)> = None; // (elapsed_s, nodes)
    let mut tick = 0u64;
    loop {
        tick += 1;
        let health = match http_get(&addr, "/healthz", timeout) {
            Ok((200, body)) => body,
            Ok((status, _)) => {
                eprintln!("error: {addr}/healthz returned HTTP {status}");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: cannot reach {addr}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let metrics = match http_get(&addr, "/metrics", timeout) {
            Ok((200, body)) => prom_samples(&body),
            _ => Vec::new(),
        };
        let metric = |name: &str| {
            metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0.0)
        };
        let status = json_str(&health, "status").unwrap_or_else(|| "?".into());
        let algo = json_str(&health, "algo").unwrap_or_default();
        let elapsed = json_num(&health, "elapsed_s").unwrap_or(0.0);
        let nodes = json_num(&health, "nodes").unwrap_or(0.0);
        let results = json_num(&health, "results").unwrap_or(0.0);
        let rate = match prev.replace((elapsed, nodes)) {
            Some((t0, n0)) if elapsed > t0 => (nodes - n0) / (elapsed - t0),
            _ => 0.0,
        };
        let eta = json_num(&health, "eta_s")
            .map(|e| format!("{e:.1}s"))
            .unwrap_or_else(|| "-".into());
        // ANSI clear + home; plain enough for any terminal or a log file.
        print!("\x1b[2J\x1b[H");
        println!("pfcim top — {addr}  (tick {tick}, every {interval_ms}ms)");
        println!();
        println!(
            "  {} {:10} elapsed {elapsed:8.1}s   eta {eta}",
            match status.as_str() {
                "ok" => "RUNNING ",
                "finished" => "FINISHED",
                "stalled" => "STALLED ",
                _ => "UNKNOWN ",
            },
            algo,
        );
        println!(
            "  nodes {nodes:>12.0}  ({rate:>10.0}/s)   results {results:>8.0}   prunes {:>10.0}",
            metric("pfcim_prunes"),
        );
        println!(
            "  pool  {:>6.0}/{:<6.0} tasks   {:.0} workers   queue {:>6.0}   steals {:>6.0}",
            json_num(&health, "pool")
                .or_else(|| json_num(&health, "completed"))
                .unwrap_or(metric("pfcim_pool_completed")),
            metric("pfcim_pool_total"),
            metric("pfcim_pool_workers"),
            metric("pfcim_pool_queued"),
            metric("pfcim_pool_steals"),
        );
        println!(
            "  dp    {:>10.0} incremental   {:>10.0} rebuilt   freq evals {:>10.0}",
            metric("pfcim_dp_incremental"),
            metric("pfcim_dp_rebuilt"),
            metric("pfcim_freq_prob_evals"),
        );
        println!(
            "  fcp   {:>10.0} exact   {:>10.0} sampled   {:>12.0} samples drawn",
            metric("pfcim_fcp_exact"),
            metric("pfcim_fcp_sampled"),
            metric("pfcim_samples_drawn"),
        );
        println!(
            "  last progress {:>6.1}s ago   runs finished {:>4.0}",
            json_num(&health, "last_progress_age_s").unwrap_or(0.0),
            metric("pfcim_runs_finished"),
        );
        if status == "finished" || (iterations > 0 && tick >= iterations) {
            return ExitCode::SUCCESS;
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}
