//! Facade crate re-exporting the whole `pfcim` workspace under one name.
//!
//! The workspace implements *"Discovering Threshold-based Frequent Closed
//! Itemsets over Probabilistic Data"* (Tong, Chen & Ding, ICDE 2012); see
//! the individual crates for the full documentation:
//!
//! * [`utdb`] — uncertain transaction databases, generators, I/O;
//! * [`prob`] — probability toolkit (Poisson-binomial DP, bounds, FPRAS);
//! * [`fim`] — exact frequent/closed itemset mining baselines;
//! * [`pfim`] — probabilistic frequent itemset mining baselines;
//! * [`core`] — the MPFCI miner and its variants.
#![deny(missing_docs)]
pub use fim;
pub use pfcim_core as core;
pub use pfim;
pub use prob;
pub use utdb;

pub use pfcim_core::prelude;
#[allow(deprecated)]
pub use pfcim_core::{mine, mine_bfs, mine_dfs, mine_naive};
pub use pfcim_core::{
    Algorithm, FcpMethod, KernelStats, Miner, MinerConfig, MinerStats, MiningOutcome, Pfci,
    PruningConfig, SearchStrategy, Variant,
};
