//! Uncertain transaction database substrate.
//!
//! Implements the *tuple-uncertainty* data model of the paper: a database
//! is a sequence of transactions, each an itemset paired with an
//! independent existential probability. Possible-world semantics interpret
//! the database as a distribution over exact transaction databases.
//!
//! The crate provides:
//!
//! * [`item`] — compact item identifiers and a symbol dictionary;
//! * [`transaction`] — validated transactions (sorted, duplicate-free);
//! * [`database`] — the [`UncertainDatabase`] with vertical tid-lists and
//!   dataset statistics;
//! * [`bitset`] — word-level bitmap kernels ([`TidBitmap`]): AND/ANDNOT,
//!   popcount counting, set-bit iteration, fingerprint hashing;
//! * [`tidset`] — packed bitsets over transaction ids, the workhorse of
//!   the miner's structural prunings (a thin adapter over [`bitset`]);
//! * [`worlds`] — exhaustive possible-world enumeration for small
//!   databases (the ground-truth oracle used throughout the test suites);
//! * [`gaussian`] — the paper's experimental protocol of assigning
//!   Gaussian-distributed existential probabilities;
//! * [`gen`] — dataset generators: an IBM-Quest-style synthetic generator
//!   (the `T20I10D30KP40` family) and a Mushroom-like dense categorical
//!   generator;
//! * [`io`] — plain-text `.dat` reading and writing.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bitset;
pub mod database;
pub mod gaussian;
pub mod gen;
pub mod io;
pub mod item;
pub mod tidset;
pub mod transaction;
pub mod worlds;

pub use bitset::TidBitmap;
pub use database::{DatabaseStats, UncertainDatabase};
pub use gaussian::{assign_gaussian_probabilities, assign_uniform_probabilities};
pub use item::{Item, ItemDictionary};
pub use tidset::TidSet;
pub use transaction::UncertainTransaction;
pub use worlds::PossibleWorlds;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_udb() -> impl Strategy<Value = UncertainDatabase> {
        let tx = (1u32..128, 0.01f64..=1.0);
        proptest::collection::vec(tx, 0..14).prop_map(|rows| {
            let transactions: Vec<UncertainTransaction> = rows
                .into_iter()
                .map(|(mask, p)| {
                    let items: Vec<Item> =
                        (0..7).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                    UncertainTransaction::new(items, p)
                })
                .collect();
            UncertainDatabase::new(transactions, ItemDictionary::new())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Serialization round-trips every database exactly.
        #[test]
        fn dat_round_trip(db in arb_udb()) {
            let text = io::to_dat(&db);
            let back = io::parse_dat(&text).expect("serializer output must parse");
            prop_assert_eq!(back.len(), db.len());
            for (a, b) in db.transactions().iter().zip(back.transactions()) {
                prop_assert_eq!(a.items(), b.items());
                prop_assert!((a.probability() - b.probability()).abs() < 1e-12);
            }
        }

        /// The vertical index agrees with row-wise membership.
        #[test]
        fn vertical_index_is_consistent(db in arb_udb()) {
            for id in 0..db.num_items() as u32 {
                let item = Item(id);
                let tids = db.tidset_of(item);
                for (tid, t) in db.transactions().iter().enumerate() {
                    prop_assert_eq!(tids.contains(tid), t.contains(item));
                }
            }
        }

        /// Itemset tid-sets really are intersections, and counts and
        /// expected supports follow.
        #[test]
        fn itemset_tidset_identities(db in arb_udb()) {
            let m = db.num_items() as u32;
            for mask in 1u32..(1 << m.min(7)) {
                let x: Vec<Item> =
                    (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                let tids = db.tidset_of_itemset(&x);
                for (tid, t) in db.transactions().iter().enumerate() {
                    prop_assert_eq!(tids.contains(tid), t.contains_all(&x));
                }
                prop_assert_eq!(db.count_of_itemset(&x), tids.count());
                let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
                prop_assert!((db.expected_support(&x) - esup).abs() < 1e-12);
            }
        }

        /// Possible worlds form a probability space, and per-world support
        /// counts match direct recomputation.
        #[test]
        fn worlds_form_probability_space(db in arb_udb()) {
            let total: f64 = PossibleWorlds::new(&db).map(|(_, p)| p).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            // Expected support == Σ_worlds Pr(w) · sup_w for one item.
            if db.num_items() > 0 {
                let x = vec![Item(0)];
                let by_worlds: f64 = PossibleWorlds::new(&db)
                    .map(|(w, p)| {
                        p * PossibleWorlds::support_in_world(&db, w, &x) as f64
                    })
                    .sum();
                prop_assert!((by_worlds - db.expected_support(&x)).abs() < 1e-9);
            }
        }

        /// A closed itemset in a world equals the intersection of its
        /// present supporting transactions.
        #[test]
        fn closedness_is_closure_fixpoint(db in arb_udb()) {
            if db.is_empty() {
                return Ok(());
            }
            let m = db.num_items() as u32;
            for (w, _) in PossibleWorlds::new(&db) {
                for mask in 1u32..(1 << m.min(5)) {
                    let x: Vec<Item> =
                        (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                    let closed = PossibleWorlds::is_closed_in_world(&db, w, &x);
                    // Recompute from first principles.
                    let present: Vec<usize> = db
                        .tidset_of_itemset(&x)
                        .iter()
                        .filter(|&t| w >> t & 1 == 1)
                        .collect();
                    let expected = if present.is_empty() {
                        false
                    } else {
                        // closure = items common to all present rows
                        let closure: Vec<Item> = (0..m)
                            .map(Item)
                            .filter(|&i| {
                                present
                                    .iter()
                                    .all(|&t| db.transaction(t).contains(i))
                            })
                            .collect();
                        closure == x
                    };
                    prop_assert_eq!(closed, expected, "world={:b} X={:?}", w, x);
                }
            }
        }
    }
}
