//! Assigning Gaussian existential probabilities — the paper's protocol for
//! turning an exact dataset into an uncertain one.
//!
//! "We follow the experimental method adopted by the previous work and
//! generate probabilistic datasets from a real certain dataset and a
//! synthetic certain dataset by assigning a probability generated from
//! Gaussian distribution to each transaction."

use prob::clamped_gaussian;
use rand::{Rng, RngExt};

use crate::database::UncertainDatabase;

/// Lowest probability assigned; a clamped Gaussian can otherwise produce
/// zero, and a tuple with existential probability zero never exists.
pub const MIN_ASSIGNED_PROBABILITY: f64 = 1e-3;

/// Highest probability assigned. Clamping strictly below 1 keeps every
/// tuple genuinely uncertain: a tuple with probability exactly 1 would
/// make entire families of non-closure events *certainly impossible*,
/// which degenerates the probabilistic structure the paper's experiments
/// exercise (its worked examples likewise use probabilities < 1).
pub const MAX_ASSIGNED_PROBABILITY: f64 = 1.0 - 1e-3;

/// Return a copy of `db` whose transactions carry fresh probabilities
/// drawn from `N(mean, variance)` clamped into
/// `[MIN_ASSIGNED_PROBABILITY, MAX_ASSIGNED_PROBABILITY]`.
///
/// The two configurations used in the paper's evaluation:
/// * Mushroom: `mean = 0.5`, `variance = 0.5` (high uncertainty), and the
///   compression study also uses `mean = 0.8`, `variance = 0.1`;
/// * T20I10D30KP40: `mean = 0.8`, `variance = 0.1` (low uncertainty).
///
/// # Examples
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use utdb::{assign_gaussian_probabilities, UncertainDatabase};
/// let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("b c", 1.0)]);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let udb = assign_gaussian_probabilities(&db, 0.8, 0.1, &mut rng);
/// assert_eq!(udb.len(), 2);
/// assert!(udb.transactions().iter().all(|t| t.probability() > 0.0));
/// ```
pub fn assign_gaussian_probabilities<R: Rng + ?Sized>(
    db: &UncertainDatabase,
    mean: f64,
    variance: f64,
    rng: &mut R,
) -> UncertainDatabase {
    let transactions = db
        .transactions()
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.set_probability(clamped_gaussian(
                rng,
                mean,
                variance,
                MIN_ASSIGNED_PROBABILITY,
                MAX_ASSIGNED_PROBABILITY,
            ));
            t
        })
        .collect();
    UncertainDatabase::new(transactions, db.dictionary().clone())
}

/// Return a copy of `db` whose transactions carry fresh probabilities
/// drawn uniformly from `[lo, hi]` (both clamped into
/// `[MIN_ASSIGNED_PROBABILITY, MAX_ASSIGNED_PROBABILITY]`).
///
/// A high uniform band like `[0.6, 0.9]` produces the *high-probability*
/// regime the Gaussian protocol rarely reaches: every removal in the
/// incremental frequentness DP stays within the amplification guard, so
/// the downdate fast path actually fires — the configuration the smoke
/// benchmark uses to exercise `dp_incremental` in CI.
///
/// # Panics
///
/// Panics when `lo > hi`.
pub fn assign_uniform_probabilities<R: Rng + ?Sized>(
    db: &UncertainDatabase,
    lo: f64,
    hi: f64,
    rng: &mut R,
) -> UncertainDatabase {
    assert!(lo <= hi, "uniform probability band is empty: {lo} > {hi}");
    let lo = lo.clamp(MIN_ASSIGNED_PROBABILITY, MAX_ASSIGNED_PROBABILITY);
    let hi = hi.clamp(MIN_ASSIGNED_PROBABILITY, MAX_ASSIGNED_PROBABILITY);
    let transactions = db
        .transactions()
        .iter()
        .map(|t| {
            let mut t = t.clone();
            t.set_probability(lo + (hi - lo) * rng.random::<f64>());
            t
        })
        .collect();
    UncertainDatabase::new(transactions, db.dictionary().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn certain_db(n: usize) -> UncertainDatabase {
        let rows: Vec<(&str, f64)> = (0..n).map(|_| ("a b c", 1.0)).collect();
        UncertainDatabase::parse_symbolic(&rows)
    }

    #[test]
    fn preserves_structure() {
        let db = certain_db(50);
        let mut rng = SmallRng::seed_from_u64(2);
        let udb = assign_gaussian_probabilities(&db, 0.5, 0.5, &mut rng);
        assert_eq!(udb.len(), db.len());
        assert_eq!(udb.num_items(), db.num_items());
        for (a, b) in db.transactions().iter().zip(udb.transactions()) {
            assert_eq!(a.items(), b.items());
        }
    }

    #[test]
    fn low_variance_concentrates_near_mean() {
        let db = certain_db(2000);
        let mut rng = SmallRng::seed_from_u64(3);
        let udb = assign_gaussian_probabilities(&db, 0.8, 0.1, &mut rng);
        let mean = udb.stats().mean_probability;
        // Clamping at 1.0 pulls the mean slightly below 0.8.
        assert!((mean - 0.78).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn high_variance_spreads_and_clamps() {
        let db = certain_db(2000);
        let mut rng = SmallRng::seed_from_u64(4);
        let udb = assign_gaussian_probabilities(&db, 0.5, 0.5, &mut rng);
        let probs: Vec<f64> = udb.transactions().iter().map(|t| t.probability()).collect();
        assert!(probs.contains(&MIN_ASSIGNED_PROBABILITY));
        assert!(probs.contains(&MAX_ASSIGNED_PROBABILITY));
        assert!(probs
            .iter()
            .all(|&p| (MIN_ASSIGNED_PROBABILITY..=MAX_ASSIGNED_PROBABILITY).contains(&p)));
    }

    #[test]
    fn uniform_band_stays_inside_and_is_deterministic() {
        let db = certain_db(500);
        let udb = assign_uniform_probabilities(&db, 0.6, 0.9, &mut SmallRng::seed_from_u64(5));
        assert!(udb
            .transactions()
            .iter()
            .all(|t| (0.6..=0.9).contains(&t.probability())));
        let again = assign_uniform_probabilities(&db, 0.6, 0.9, &mut SmallRng::seed_from_u64(5));
        for (a, b) in udb.transactions().iter().zip(again.transactions()) {
            assert_eq!(a.probability(), b.probability());
        }
        // The band clamps into the assignable range.
        let clamped = assign_uniform_probabilities(&db, 0.0, 2.0, &mut SmallRng::seed_from_u64(6));
        assert!(clamped.transactions().iter().all(|t| {
            (MIN_ASSIGNED_PROBABILITY..=MAX_ASSIGNED_PROBABILITY).contains(&t.probability())
        }));
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let db = certain_db(20);
        let a = assign_gaussian_probabilities(&db, 0.5, 0.5, &mut SmallRng::seed_from_u64(9));
        let b = assign_gaussian_probabilities(&db, 0.5, 0.5, &mut SmallRng::seed_from_u64(9));
        for (x, y) in a.transactions().iter().zip(b.transactions()) {
            assert_eq!(x.probability(), y.probability());
        }
    }
}
