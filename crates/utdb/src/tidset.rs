//! Packed bitsets over transaction identifiers.
//!
//! The miner's structural prunings (the paper's superset and subset
//! prunings, Lemmas 4.2/4.3) reduce to *count equality* between an itemset
//! and a one-item extension, i.e. to subset tests between tid-sets. A flat
//! `u64` bitset gives branch-free intersection, difference and subset
//! checks with hardware popcount.

use std::fmt;

/// A fixed-universe bitset over transaction ids `0..universe`.
///
/// # Examples
///
/// ```
/// use utdb::TidSet;
/// let mut a = TidSet::new(10);
/// a.insert(1);
/// a.insert(4);
/// let mut b = TidSet::new(10);
/// b.insert(4);
/// assert!(b.is_subset(&a));
/// assert_eq!(a.intersection(&b).count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TidSet {
    words: Vec<u64>,
    universe: usize,
}

impl TidSet {
    /// An empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The full set `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let bits = universe.saturating_sub(lo).min(64);
            *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        s
    }

    /// Build from an iterator of tids.
    ///
    /// # Panics
    ///
    /// Panics if a tid is out of the universe.
    pub fn from_tids<I: IntoIterator<Item = usize>>(universe: usize, tids: I) -> Self {
        let mut s = Self::new(universe);
        for tid in tids {
            s.insert(tid);
        }
        s
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Insert `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= universe`.
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        assert!(tid < self.universe, "tid {tid} out of universe");
        self.words[tid / 64] |= 1u64 << (tid % 64);
    }

    /// Remove `tid` if present.
    #[inline]
    pub fn remove(&mut self, tid: usize) {
        if tid < self.universe {
            self.words[tid / 64] &= !(1u64 << (tid % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        tid < self.universe && self.words[tid / 64] >> (tid % 64) & 1 == 1
    }

    /// Number of tids in the set (the paper's *count* of an itemset when
    /// the set is its tid-set, Definition 4.2).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no tid is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∩ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn intersection(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & !b)
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// In-place `self &= other`.
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Self) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_count(&self, other: &Self) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Do the two sets share no tid?
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterate the tids in ascending order.
    pub fn iter(&self) -> TidIter<'_> {
        TidIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        Self {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            universe: self.universe,
        }
    }
}

impl fmt::Debug for TidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the tids of a [`TidSet`].
pub struct TidIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for TidIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a TidSet {
    type Item = usize;
    type IntoIter = TidIter<'a>;

    fn into_iter(self) -> TidIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = TidSet::new(130);
        assert!(!s.contains(100));
        s.insert(100);
        assert!(s.contains(100));
        assert_eq!(s.count(), 1);
        s.remove(100);
        assert!(!s.contains(100));
        assert!(s.is_empty());
    }

    #[test]
    fn full_set_has_exact_count() {
        for n in [0, 1, 63, 64, 65, 127, 128, 200] {
            let s = TidSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
            assert_eq!(s.iter().count(), n);
        }
    }

    #[test]
    fn set_algebra() {
        let a = TidSet::from_tids(70, [0, 3, 64, 69]);
        let b = TidSet::from_tids(70, [3, 5, 69]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![0, 64]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![0, 3, 5, 64, 69]
        );
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.difference_count(&b), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = TidSet::from_tids(100, [1, 2, 80]);
        let b = TidSet::from_tids(100, [1, 2, 3, 80]);
        let c = TidSet::from_tids(100, [50]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn intersect_with_in_place() {
        let mut a = TidSet::from_tids(10, [0, 1, 2, 3]);
        let b = TidSet::from_tids(10, [2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let tids = [0, 63, 64, 127, 128, 191];
        let s = TidSet::from_tids(192, tids);
        assert_eq!(s.iter().collect::<Vec<_>>(), tids.to_vec());
    }

    #[test]
    fn empty_universe() {
        let s = TidSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn debug_renders_members() {
        let s = TidSet::from_tids(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        TidSet::new(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = TidSet::new(5);
        let b = TidSet::new(6);
        let _ = a.intersection(&b);
    }
}
