//! Packed bitsets over transaction identifiers.
//!
//! The miner's structural prunings (the paper's superset and subset
//! prunings, Lemmas 4.2/4.3) reduce to *count equality* between an itemset
//! and a one-item extension, i.e. to subset tests between tid-sets. A flat
//! `u64` bitset gives branch-free intersection, difference and subset
//! checks with hardware popcount.
//!
//! [`TidSet`] is a thin adapter over the word-level kernel type
//! [`crate::bitset::TidBitmap`]: it preserves the original tid-set API
//! (so the `fim`/`pfim` baselines compile unchanged) while the miner core
//! operates on the bitmap kernels directly via [`TidSet::bitmap`].

use std::fmt;

use crate::bitset::TidBitmap;

/// Ascending iterator over the tids of a [`TidSet`] — the bitmap kernel
/// iterator, re-exported under its historical name.
pub type TidIter<'a> = crate::bitset::SetBits<'a>;

/// A fixed-universe bitset over transaction ids `0..universe`.
///
/// # Examples
///
/// ```
/// use utdb::TidSet;
/// let mut a = TidSet::new(10);
/// a.insert(1);
/// a.insert(4);
/// let mut b = TidSet::new(10);
/// b.insert(4);
/// assert!(b.is_subset(&a));
/// assert_eq!(a.intersection(&b).count(), 1);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TidSet {
    bits: TidBitmap,
}

impl TidSet {
    /// An empty set over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            bits: TidBitmap::new(universe),
        }
    }

    /// The full set `0..universe`.
    pub fn full(universe: usize) -> Self {
        Self {
            bits: TidBitmap::full(universe),
        }
    }

    /// Build from an iterator of tids.
    ///
    /// # Panics
    ///
    /// Panics if a tid is out of the universe.
    pub fn from_tids<I: IntoIterator<Item = usize>>(universe: usize, tids: I) -> Self {
        Self {
            bits: TidBitmap::from_tids(universe, tids),
        }
    }

    /// The underlying word-level bitmap kernels.
    #[inline]
    pub fn bitmap(&self) -> &TidBitmap {
        &self.bits
    }

    /// Unwrap into the underlying bitmap.
    #[inline]
    pub fn into_bitmap(self) -> TidBitmap {
        self.bits
    }

    /// The universe size this set was created with.
    #[inline]
    pub fn universe(&self) -> usize {
        self.bits.universe()
    }

    /// Insert `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= universe`.
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        self.bits.insert(tid);
    }

    /// Remove `tid` if present.
    #[inline]
    pub fn remove(&mut self, tid: usize) {
        self.bits.remove(tid);
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        self.bits.contains(tid)
    }

    /// Number of tids in the set (the paper's *count* of an itemset when
    /// the set is its tid-set, Definition 4.2).
    #[inline]
    pub fn count(&self) -> usize {
        self.bits.count()
    }

    /// True when no tid is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `self ∩ other` as a new set.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn intersection(&self, other: &Self) -> Self {
        Self {
            bits: self.bits.and(&other.bits),
        }
    }

    /// `self \ other` as a new set.
    pub fn difference(&self, other: &Self) -> Self {
        Self {
            bits: self.bits.and_not(&other.bits),
        }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &Self) -> Self {
        Self {
            bits: self.bits.or(&other.bits),
        }
    }

    /// In-place `self &= other`.
    pub fn intersect_with(&mut self, other: &Self) {
        self.bits.and_assign(&other.bits);
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.bits.and_count(&other.bits)
    }

    /// `|self \ other|` without allocating.
    #[inline]
    pub fn difference_count(&self, other: &Self) -> usize {
        self.bits.and_not_count(&other.bits)
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.bits.is_subset(&other.bits)
    }

    /// Do the two sets share no tid?
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.bits.is_disjoint(&other.bits)
    }

    /// Iterate the tids in ascending order.
    pub fn iter(&self) -> TidIter<'_> {
        self.bits.iter()
    }
}

impl From<TidBitmap> for TidSet {
    fn from(bits: TidBitmap) -> Self {
        Self { bits }
    }
}

impl fmt::Debug for TidSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<'a> IntoIterator for &'a TidSet {
    type Item = usize;
    type IntoIter = TidIter<'a>;

    fn into_iter(self) -> TidIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = TidSet::new(130);
        assert!(!s.contains(100));
        s.insert(100);
        assert!(s.contains(100));
        assert_eq!(s.count(), 1);
        s.remove(100);
        assert!(!s.contains(100));
        assert!(s.is_empty());
    }

    #[test]
    fn full_set_has_exact_count() {
        for n in [0, 1, 63, 64, 65, 127, 128, 200] {
            let s = TidSet::full(n);
            assert_eq!(s.count(), n, "universe {n}");
            assert_eq!(s.iter().count(), n);
        }
    }

    #[test]
    fn set_algebra() {
        let a = TidSet::from_tids(70, [0, 3, 64, 69]);
        let b = TidSet::from_tids(70, [3, 5, 69]);
        assert_eq!(a.intersection(&b).iter().collect::<Vec<_>>(), vec![3, 69]);
        assert_eq!(a.difference(&b).iter().collect::<Vec<_>>(), vec![0, 64]);
        assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            vec![0, 3, 5, 64, 69]
        );
        assert_eq!(a.intersection_count(&b), 2);
        assert_eq!(a.difference_count(&b), 2);
    }

    #[test]
    fn subset_and_disjoint() {
        let a = TidSet::from_tids(100, [1, 2, 80]);
        let b = TidSet::from_tids(100, [1, 2, 3, 80]);
        let c = TidSet::from_tids(100, [50]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn intersect_with_in_place() {
        let mut a = TidSet::from_tids(10, [0, 1, 2, 3]);
        let b = TidSet::from_tids(10, [2, 3, 4]);
        a.intersect_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn iter_crosses_word_boundaries() {
        let tids = [0, 63, 64, 127, 128, 191];
        let s = TidSet::from_tids(192, tids);
        assert_eq!(s.iter().collect::<Vec<_>>(), tids.to_vec());
    }

    #[test]
    fn empty_universe() {
        let s = TidSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(!s.contains(0));
    }

    #[test]
    fn debug_renders_members() {
        let s = TidSet::from_tids(8, [1, 5]);
        assert_eq!(format!("{s:?}"), "{1, 5}");
    }

    #[test]
    fn adapter_round_trips_through_the_bitmap() {
        let s = TidSet::from_tids(80, [2, 64, 79]);
        assert_eq!(s.bitmap().count(), 3);
        let bits = s.clone().into_bitmap();
        assert_eq!(TidSet::from(bits), s);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        TidSet::new(5).insert(5);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = TidSet::new(5);
        let b = TidSet::new(6);
        let _ = a.intersection(&b);
    }
}
