//! Item identifiers and the symbol dictionary.
//!
//! Items are dense `u32` identifiers; the identifier order doubles as the
//! "alphabetic order" the paper's depth-first enumeration and prunings are
//! stated in. A [`ItemDictionary`] maps external symbols (strings such as
//! `"HKUST"` or `"Rain"`) to identifiers and back, so example databases can
//! be written in the paper's notation while the miner works on integers.

use std::collections::HashMap;
use std::fmt;

/// A dense item identifier.
///
/// Ordering of `Item`s is the total order all prefix-based enumeration in
/// the miner relies on (the paper's "alphabetic order").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Item(pub u32);

impl Item {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Item {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl From<u32> for Item {
    fn from(v: u32) -> Self {
        Item(v)
    }
}

/// Bidirectional mapping between external item symbols and [`Item`] ids.
///
/// Ids are handed out in first-intern order, so interning symbols in
/// lexicographic order makes id order coincide with lexicographic order —
/// which is how the paper's running examples are reproduced faithfully.
///
/// # Examples
///
/// ```
/// use utdb::ItemDictionary;
/// let mut dict = ItemDictionary::new();
/// let a = dict.intern("a");
/// let b = dict.intern("b");
/// assert!(a < b);
/// assert_eq!(dict.intern("a"), a); // idempotent
/// assert_eq!(dict.symbol(a), Some("a"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ItemDictionary {
    by_symbol: HashMap<String, Item>,
    by_id: Vec<String>,
}

impl ItemDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `symbol`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, symbol: &str) -> Item {
        if let Some(&item) = self.by_symbol.get(symbol) {
            return item;
        }
        let item = Item(self.by_id.len() as u32);
        self.by_symbol.insert(symbol.to_owned(), item);
        self.by_id.push(symbol.to_owned());
        item
    }

    /// Look up an already-interned symbol.
    pub fn get(&self, symbol: &str) -> Option<Item> {
        self.by_symbol.get(symbol).copied()
    }

    /// The symbol for an id, if in range.
    pub fn symbol(&self, item: Item) -> Option<&str> {
        self.by_id.get(item.index()).map(String::as_str)
    }

    /// Number of distinct interned items.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Render an itemset as `{a, b, c}` using interned symbols, falling
    /// back to the numeric id for unknown items.
    pub fn render(&self, items: &[Item]) -> String {
        let inner: Vec<String> = items
            .iter()
            .map(|&i| {
                self.symbol(i)
                    .map(str::to_owned)
                    .unwrap_or_else(|| i.to_string())
            })
            .collect();
        format!("{{{}}}", inner.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_dense() {
        let mut d = ItemDictionary::new();
        let ids: Vec<Item> = ["a", "b", "c", "b", "a"]
            .iter()
            .map(|s| d.intern(s))
            .collect();
        assert_eq!(ids[0], ids[4]);
        assert_eq!(ids[1], ids[3]);
        assert_eq!(d.len(), 3);
        assert_eq!(ids[0].0, 0);
        assert_eq!(ids[1].0, 1);
        assert_eq!(ids[2].0, 2);
    }

    #[test]
    fn symbol_round_trip() {
        let mut d = ItemDictionary::new();
        let x = d.intern("Location=HKUST");
        assert_eq!(d.symbol(x), Some("Location=HKUST"));
        assert_eq!(d.get("Location=HKUST"), Some(x));
        assert_eq!(d.get("missing"), None);
        assert_eq!(d.symbol(Item(99)), None);
    }

    #[test]
    fn render_uses_symbols() {
        let mut d = ItemDictionary::new();
        let a = d.intern("a");
        let b = d.intern("b");
        assert_eq!(d.render(&[a, b]), "{a, b}");
        assert_eq!(d.render(&[Item(7)]), "{i7}");
        assert_eq!(d.render(&[]), "{}");
    }

    #[test]
    fn item_order_is_id_order() {
        assert!(Item(0) < Item(1));
        assert!(Item(10) > Item(2));
    }
}
