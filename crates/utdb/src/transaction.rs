//! Uncertain transactions: an itemset plus an existential probability.

use crate::item::Item;

/// One tuple of an uncertain transaction database.
///
/// The item list is kept sorted and duplicate-free (the invariant every
/// algorithm in the workspace relies on); the probability is the chance
/// the tuple exists at all, independent of every other tuple
/// (tuple-uncertainty model).
///
/// # Examples
///
/// ```
/// use utdb::{Item, UncertainTransaction};
/// let t = UncertainTransaction::new(vec![Item(2), Item(0), Item(2)], 0.9);
/// assert_eq!(t.items(), &[Item(0), Item(2)]); // sorted, deduplicated
/// assert_eq!(t.probability(), 0.9);
/// assert!(t.contains(Item(2)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainTransaction {
    items: Vec<Item>,
    probability: f64,
}

impl UncertainTransaction {
    /// Create a transaction, sorting and deduplicating the items.
    ///
    /// # Panics
    ///
    /// Panics if `probability` is not in `(0, 1]` — a tuple that can never
    /// exist does not belong in the database — or if the itemset is empty.
    pub fn new(mut items: Vec<Item>, probability: f64) -> Self {
        assert!(
            probability > 0.0 && probability <= 1.0,
            "existential probability {probability} outside (0, 1]"
        );
        assert!(!items.is_empty(), "empty transaction");
        items.sort_unstable();
        items.dedup();
        Self { items, probability }
    }

    /// A certain transaction (probability 1) — lets exact databases be
    /// represented uniformly.
    pub fn certain(items: Vec<Item>) -> Self {
        Self::new(items, 1.0)
    }

    /// The sorted, duplicate-free itemset.
    #[inline]
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// The existential probability.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.probability
    }

    /// Replace the existential probability (used when re-assigning
    /// Gaussian probabilities to a generated dataset).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn set_probability(&mut self, p: f64) {
        assert!(
            p > 0.0 && p <= 1.0,
            "existential probability {p} outside (0, 1]"
        );
        self.probability = p;
    }

    /// Number of items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Always false: empty transactions are rejected at construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Binary-search membership test.
    #[inline]
    pub fn contains(&self, item: Item) -> bool {
        self.items.binary_search(&item).is_ok()
    }

    /// Does this transaction contain every item of the (sorted) slice?
    pub fn contains_all(&self, itemset: &[Item]) -> bool {
        // Merge-walk: both sides are sorted.
        let mut mine = self.items.iter();
        'outer: for want in itemset {
            for have in mine.by_ref() {
                match have.cmp(want) {
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                    std::cmp::Ordering::Less => {}
                }
            }
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn construction_sorts_and_dedups() {
        let t = UncertainTransaction::new(items(&[3, 1, 3, 2, 1]), 0.5);
        assert_eq!(t.items(), &items(&[1, 2, 3])[..]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn certain_transaction_has_probability_one() {
        let t = UncertainTransaction::certain(items(&[0]));
        assert_eq!(t.probability(), 1.0);
    }

    #[test]
    fn contains_all_merge_walk() {
        let t = UncertainTransaction::new(items(&[1, 3, 5, 7, 9]), 1.0);
        assert!(t.contains_all(&items(&[1, 5, 9])));
        assert!(t.contains_all(&items(&[3])));
        assert!(t.contains_all(&[]));
        assert!(!t.contains_all(&items(&[1, 2])));
        assert!(!t.contains_all(&items(&[0])));
        assert!(!t.contains_all(&items(&[9, 10])));
        assert!(!t.contains_all(&items(&[10])));
    }

    #[test]
    fn set_probability_validates() {
        let mut t = UncertainTransaction::certain(items(&[0]));
        t.set_probability(0.25);
        assert_eq!(t.probability(), 0.25);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn zero_probability_rejected() {
        UncertainTransaction::new(items(&[0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn overunit_probability_rejected() {
        UncertainTransaction::new(items(&[0]), 1.5);
    }

    #[test]
    #[should_panic(expected = "empty transaction")]
    fn empty_itemset_rejected() {
        UncertainTransaction::new(vec![], 0.5);
    }
}
