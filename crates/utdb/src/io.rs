//! Plain-text dataset I/O.
//!
//! The `.dat` format is the lingua franca of itemset-mining tooling: one
//! transaction per line, whitespace-separated integer item ids. The
//! uncertain extension used here appends the existential probability after
//! a `:` separator; lines without one are read as certain transactions.
//!
//! ```text
//! 1 3 5 : 0.9
//! 2 3 : 0.45
//! 1 2 3
//! ```

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::database::UncertainDatabase;
use crate::item::{Item, ItemDictionary};
use crate::transaction::UncertainTransaction;

/// Errors raised when parsing a `.dat` file.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// A malformed line, with its 1-based number and a description.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<io::Error> for ParseError {
    fn from(e: io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse a database from `.dat` text.
///
/// # Examples
///
/// ```
/// let db = utdb::io::parse_dat("1 2 3 : 0.9\n2 3\n").unwrap();
/// assert_eq!(db.len(), 2);
/// assert_eq!(db.transaction(0).probability(), 0.9);
/// assert_eq!(db.transaction(1).probability(), 1.0);
/// ```
pub fn parse_dat(text: &str) -> Result<UncertainDatabase, ParseError> {
    let mut transactions = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (items_part, prob_part) = match line.split_once(':') {
            Some((items, prob)) => (items, Some(prob.trim())),
            None => (line, None),
        };
        let mut items = Vec::new();
        for token in items_part.split_whitespace() {
            let id: u32 = token.parse().map_err(|_| ParseError::Malformed {
                line: line_no,
                reason: format!("invalid item id {token:?}"),
            })?;
            items.push(Item(id));
        }
        if items.is_empty() {
            return Err(ParseError::Malformed {
                line: line_no,
                reason: "no items before probability".into(),
            });
        }
        let probability = match prob_part {
            Some(p) => p.parse::<f64>().map_err(|_| ParseError::Malformed {
                line: line_no,
                reason: format!("invalid probability {p:?}"),
            })?,
            None => 1.0,
        };
        if !(probability > 0.0 && probability <= 1.0) {
            return Err(ParseError::Malformed {
                line: line_no,
                reason: format!("probability {probability} outside (0, 1]"),
            });
        }
        transactions.push(UncertainTransaction::new(items, probability));
    }
    Ok(UncertainDatabase::new(transactions, ItemDictionary::new()))
}

/// Read a `.dat` file from disk.
pub fn read_dat(path: &Path) -> Result<UncertainDatabase, ParseError> {
    parse_dat(&fs::read_to_string(path)?)
}

/// Serialize a database into `.dat` text; certain transactions omit the
/// probability suffix.
pub fn to_dat(db: &UncertainDatabase) -> String {
    let mut out = String::new();
    for t in db.transactions() {
        let ids: Vec<String> = t.items().iter().map(|i| i.0.to_string()).collect();
        out.push_str(&ids.join(" "));
        if t.probability() < 1.0 {
            let _ = write!(out, " : {}", t.probability());
        }
        out.push('\n');
    }
    out
}

/// Write a database to disk in `.dat` format.
pub fn write_dat(db: &UncertainDatabase, path: &Path) -> io::Result<()> {
    fs::write(path, to_dat(db))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_probabilities_and_defaults() {
        let db = parse_dat("1 2 3 : 0.9\n4 5\n# comment\n\n6 : 0.25\n").unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.transaction(0).probability(), 0.9);
        assert_eq!(db.transaction(1).probability(), 1.0);
        assert_eq!(db.transaction(2).probability(), 0.25);
        assert_eq!(db.transaction(0).items(), &[Item(1), Item(2), Item(3)]);
    }

    #[test]
    fn round_trip_preserves_content() {
        let original = parse_dat("1 2 : 0.5\n3\n10 20 30 : 0.125\n").unwrap();
        let text = to_dat(&original);
        let reparsed = parse_dat(&text).unwrap();
        assert_eq!(original.len(), reparsed.len());
        for (a, b) in original.transactions().iter().zip(reparsed.transactions()) {
            assert_eq!(a.items(), b.items());
            assert!((a.probability() - b.probability()).abs() < 1e-15);
        }
    }

    #[test]
    fn file_round_trip() {
        let db = parse_dat("1 2 : 0.5\n2 3 : 0.75\n").unwrap();
        let dir = std::env::temp_dir();
        let path = dir.join("utdb_io_roundtrip_test.dat");
        write_dat(&db, &path).unwrap();
        let back = read_dat(&path).unwrap();
        assert_eq!(back.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_bad_item() {
        let err = parse_dat("1 x 3\n").unwrap_err();
        assert!(
            matches!(err, ParseError::Malformed { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(parse_dat("1 2 : nope\n").is_err());
        assert!(parse_dat("1 2 : 0\n").is_err());
        assert!(parse_dat("1 2 : 1.5\n").is_err());
    }

    #[test]
    fn rejects_probability_without_items() {
        assert!(parse_dat(": 0.5\n").is_err());
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_dat(Path::new("/nonexistent/xyz.dat")).unwrap_err();
        assert!(matches!(err, ParseError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
