//! Word-level bitmap kernels over transaction identifiers.
//!
//! [`TidBitmap`] is the storage and kernel layer beneath
//! [`crate::TidSet`]: a flat array of 64-bit words over a fixed universe
//! `0..universe`, giving branch-free AND / ANDNOT / OR, hardware-popcount
//! support counting, subset and disjointness tests, and an ascending
//! iterator over set tids. The miner's hot path — tid-set intersection in
//! the enumeration loop and the dropped-transaction scan behind the
//! incremental frequentness DP — runs directly on these kernels.
//!
//! The layout is cache-friendly by construction: one contiguous `Vec<u64>`
//! per set, tid `t` at bit `t % 64` of word `t / 64`, so every kernel is a
//! single linear pass over (pairs of) word arrays. The binary kernels and
//! their fused popcounts run in 4×u64 chunks with a scalar tail — a shape
//! LLVM autovectorizes to wide vector ops where the target has them.
//!
//! A 64-bit [`TidBitmap::fingerprint`] (a splitmix64 fold of the words)
//! keys the evaluator's bound-input memoization; collisions are handled by
//! full equality verification at the cache, never assumed away.

use std::fmt;

/// Splitmix64 finalizer — the mixing function folding words into a
/// [`TidBitmap::fingerprint`].
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Apply `f` word-wise over `(a, b)` into `out`, 4 words per iteration
/// with a scalar tail. Every word of `out` is written.
#[inline]
fn zip_words_into(a: &[u64], b: &[u64], out: &mut [u64], f: impl Fn(u64, u64) -> u64 + Copy) {
    debug_assert!(a.len() == b.len() && a.len() == out.len());
    let mut oc = out.chunks_exact_mut(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((o, x), y) in (&mut oc).zip(&mut ac).zip(&mut bc) {
        o[0] = f(x[0], y[0]);
        o[1] = f(x[1], y[1]);
        o[2] = f(x[2], y[2]);
        o[3] = f(x[3], y[3]);
    }
    for ((o, &x), &y) in oc
        .into_remainder()
        .iter_mut()
        .zip(ac.remainder())
        .zip(bc.remainder())
    {
        *o = f(x, y);
    }
}

/// Fused popcount of `f(a, b)` word-wise, 4 words per iteration with
/// independent accumulators so the popcounts pipeline.
#[inline]
fn zip_words_count(a: &[u64], b: &[u64], f: impl Fn(u64, u64) -> u64 + Copy) -> usize {
    debug_assert_eq!(a.len(), b.len());
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for (x, y) in (&mut ac).zip(&mut bc) {
        c0 += f(x[0], y[0]).count_ones() as usize;
        c1 += f(x[1], y[1]).count_ones() as usize;
        c2 += f(x[2], y[2]).count_ones() as usize;
        c3 += f(x[3], y[3]).count_ones() as usize;
    }
    let mut total = c0 + c1 + c2 + c3;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        total += f(x, y).count_ones() as usize;
    }
    total
}

/// A fixed-universe bitmap over transaction ids `0..universe`.
///
/// # Examples
///
/// ```
/// use utdb::bitset::TidBitmap;
/// let a = TidBitmap::from_tids(100, [1, 4, 70]);
/// let b = TidBitmap::from_tids(100, [4, 70, 90]);
/// assert_eq!(a.and_count(&b), 2);
/// assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![4, 70]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TidBitmap {
    words: Vec<u64>,
    universe: usize,
}

impl TidBitmap {
    /// An empty bitmap over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// The full bitmap `0..universe`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::new(universe);
        for (i, w) in s.words.iter_mut().enumerate() {
            let lo = i * 64;
            let bits = universe.saturating_sub(lo).min(64);
            *w = if bits == 64 { !0 } else { (1u64 << bits) - 1 };
        }
        s
    }

    /// Build from an iterator of tids.
    ///
    /// # Panics
    ///
    /// Panics if a tid is out of the universe.
    pub fn from_tids<I: IntoIterator<Item = usize>>(universe: usize, tids: I) -> Self {
        let mut s = Self::new(universe);
        for tid in tids {
            s.insert(tid);
        }
        s
    }

    /// The universe size this bitmap was created with.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The backing words, tid `t` at bit `t % 64` of word `t / 64`.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of backing 64-bit words (`ceil(universe / 64)`) — the unit
    /// the miner's `bitmap_words` counter is denominated in.
    #[inline]
    pub fn word_len(&self) -> usize {
        self.words.len()
    }

    /// Set bit `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= universe`.
    #[inline]
    pub fn insert(&mut self, tid: usize) {
        assert!(tid < self.universe, "tid {tid} out of universe");
        self.words[tid / 64] |= 1u64 << (tid % 64);
    }

    /// Clear bit `tid` if set.
    #[inline]
    pub fn remove(&mut self, tid: usize) {
        if tid < self.universe {
            self.words[tid / 64] &= !(1u64 << (tid % 64));
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tid: usize) -> bool {
        tid < self.universe && self.words[tid / 64] >> (tid % 64) & 1 == 1
    }

    /// Number of set bits (hardware popcount over the words).
    #[inline]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ∩ other` as a new bitmap.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn and(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & b)
    }

    /// `self ∩ other` written into `out`, reusing its allocation —
    /// the arena-recycling variant of [`TidBitmap::and`]. Every word of
    /// `out` is overwritten (stale contents never leak through), so
    /// recycled buffers stay safe for the miner's bit-identical
    /// determinism contract.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes between `self` and `other` (`out`
    /// may have any prior shape; it is resized).
    pub fn and_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        out.universe = self.universe;
        out.words.resize(self.words.len(), 0);
        zip_words_into(&self.words, &other.words, &mut out.words, |a, b| a & b);
    }

    /// `self \ other` as a new bitmap.
    pub fn and_not(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a & !b)
    }

    /// `self ∪ other` as a new bitmap.
    pub fn or(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a | b)
    }

    /// In-place `self &= other`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place `self &= !other`.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes.
    pub fn and_not_assign(&mut self, other: &Self) {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// `|self ∩ other|` without allocating (fused AND + popcount).
    #[inline]
    pub fn and_count(&self, other: &Self) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        zip_words_count(&self.words, &other.words, |a, b| a & b)
    }

    /// `|self \ other|` without allocating (fused ANDNOT + popcount).
    #[inline]
    pub fn and_not_count(&self, other: &Self) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        zip_words_count(&self.words, &other.words, |a, b| a & !b)
    }

    /// Is `self ⊆ other`?
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Do the two bitmaps share no tid?
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Iterate the set tids in ascending order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Iterate the tids of `self \ other` in ascending order without
    /// materializing the difference — the kernel behind the incremental
    /// DP's dropped-transaction scan.
    ///
    /// # Panics
    ///
    /// Panics on mismatched universes (debug builds).
    pub fn diff_iter<'a>(&'a self, other: &'a Self) -> DiffBits<'a> {
        debug_assert_eq!(self.universe, other.universe);
        DiffBits {
            a: &self.words,
            b: &other.words,
            word_idx: 0,
            current: match (self.words.first(), other.words.first()) {
                (Some(&a), Some(&b)) => a & !b,
                _ => 0,
            },
        }
    }

    /// A 64-bit fingerprint of the bitmap contents (splitmix64 fold over
    /// the words and the universe). Deterministic across runs and
    /// platforms; used as an LRU cache key. Distinct bitmaps *can*
    /// collide — callers must verify equality on hit.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix64(self.universe as u64 ^ 0x7fcb_5a1d_93e4_206f);
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                h ^= mix64(w ^ mix64(i as u64));
            }
        }
        h
    }

    fn zip_with(&self, other: &Self, f: impl Fn(u64, u64) -> u64 + Copy) -> Self {
        assert_eq!(self.universe, other.universe, "universe mismatch");
        let mut words = vec![0u64; self.words.len()];
        zip_words_into(&self.words, &other.words, &mut words, f);
        Self {
            words,
            universe: self.universe,
        }
    }
}

impl fmt::Debug for TidBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Ascending iterator over the set bits of a [`TidBitmap`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

impl<'a> IntoIterator for &'a TidBitmap {
    type Item = usize;
    type IntoIter = SetBits<'a>;

    fn into_iter(self) -> SetBits<'a> {
        self.iter()
    }
}

/// Ascending iterator over `a \ b` (see [`TidBitmap::diff_iter`]).
pub struct DiffBits<'a> {
    a: &'a [u64],
    b: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for DiffBits<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.a.len() {
                return None;
            }
            self.current = self.a[self.word_idx] & !self.b[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_cross_word_boundaries() {
        let a = TidBitmap::from_tids(200, [0, 63, 64, 127, 128, 199]);
        let b = TidBitmap::from_tids(200, [63, 64, 199]);
        assert_eq!(a.and(&b).iter().collect::<Vec<_>>(), vec![63, 64, 199]);
        assert_eq!(a.and_not(&b).iter().collect::<Vec<_>>(), vec![0, 127, 128]);
        assert_eq!(a.and_count(&b), 3);
        assert_eq!(a.and_not_count(&b), 3);
        assert!(b.is_subset(&a));
        assert_eq!(
            a.diff_iter(&b).collect::<Vec<_>>(),
            vec![0, 127, 128],
            "diff_iter equals materialized and_not"
        );
    }

    #[test]
    fn in_place_kernels_match_allocating_ones() {
        let a = TidBitmap::from_tids(130, [1, 65, 100, 129]);
        let b = TidBitmap::from_tids(130, [65, 129]);
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c, a.and(&b));
        let mut d = a.clone();
        d.and_not_assign(&b);
        assert_eq!(d, a.and_not(&b));
    }

    #[test]
    fn full_and_empty() {
        for n in [0, 1, 63, 64, 65, 128, 200] {
            let full = TidBitmap::full(n);
            assert_eq!(full.count(), n);
            assert!(TidBitmap::new(n).is_empty());
        }
    }

    #[test]
    fn fingerprint_discriminates_and_is_stable() {
        let a = TidBitmap::from_tids(100, [1, 50, 99]);
        let b = TidBitmap::from_tids(100, [1, 50, 98]);
        let a2 = TidBitmap::from_tids(100, [1, 50, 99]);
        assert_eq!(a.fingerprint(), a2.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Different universes with the same bits hash differently.
        let c = TidBitmap::from_tids(101, [1, 50, 99]);
        assert_ne!(a.fingerprint(), c.fingerprint());
        // Empty bitmaps hash by universe only.
        assert_ne!(
            TidBitmap::new(10).fingerprint(),
            TidBitmap::new(11).fingerprint()
        );
    }

    #[test]
    fn word_access() {
        let a = TidBitmap::from_tids(70, [0, 64]);
        assert_eq!(a.word_len(), 2);
        assert_eq!(a.words(), &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn and_assign_mismatch_panics() {
        let mut a = TidBitmap::new(5);
        a.and_assign(&TidBitmap::new(6));
    }

    #[test]
    fn chunked_kernels_on_unaligned_tails() {
        // Word counts ≡ 0, 1, 2, 3 (mod 4): the 4×u64 main loop at every
        // scalar-tail length, against a contains()-based reference, with
        // empty and full operands included. 64·w bits = w words, so e.g.
        // 320 bits = 5 words (tail 1), 385 bits = 7 words (tail 3).
        for universe in [0, 5, 64, 65, 128, 190, 192, 257, 320, 385, 448, 512] {
            let shapes = [
                TidBitmap::full(universe),
                TidBitmap::new(universe),
                TidBitmap::from_tids(universe, (0..universe).step_by(2)),
                TidBitmap::from_tids(universe, (0..universe).filter(|t| t % 7 < 3)),
            ];
            for x in &shapes {
                for y in &shapes {
                    let want_and: Vec<usize> = (0..universe)
                        .filter(|&t| x.contains(t) && y.contains(t))
                        .collect();
                    let want_not: Vec<usize> = (0..universe)
                        .filter(|&t| x.contains(t) && !y.contains(t))
                        .collect();
                    let want_or: Vec<usize> = (0..universe)
                        .filter(|&t| x.contains(t) || y.contains(t))
                        .collect();
                    assert_eq!(
                        x.and(y).iter().collect::<Vec<_>>(),
                        want_and,
                        "n={universe}"
                    );
                    assert_eq!(x.and_count(y), want_and.len(), "n={universe}");
                    assert_eq!(
                        x.and_not(y).iter().collect::<Vec<_>>(),
                        want_not,
                        "n={universe}"
                    );
                    assert_eq!(x.and_not_count(y), want_not.len(), "n={universe}");
                    assert_eq!(x.or(y).iter().collect::<Vec<_>>(), want_or, "n={universe}");
                    // and_into fully overwrites a dirty, wrong-shaped
                    // recycled buffer.
                    let mut out = TidBitmap::full(7);
                    x.and_into(y, &mut out);
                    assert_eq!(out, x.and(y), "n={universe}");
                    assert_eq!(out.universe(), universe);
                }
            }
        }
    }
}

/// The bitmap kernels against a reference model: a sorted, deduplicated
/// `Vec<usize>` with the obvious set algebra. Every public operation must
/// agree with the model on arbitrary tid universes, including the empty
/// universe and sizes straddling word boundaries.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// An arbitrary universe plus two arbitrary subsets of it, as
    /// (universe, sorted-dedup model A, sorted-dedup model B). Candidate
    /// tids are drawn from the full range and clamped to the universe, so
    /// small universes (including the empty one) are exercised too.
    fn two_sets() -> impl Strategy<Value = (usize, Vec<usize>, Vec<usize>)> {
        let tids = || proptest::collection::vec(0usize..200, 0..64);
        (0usize..200, tids(), tids()).prop_map(|(n, mut a, mut b)| {
            for set in [&mut a, &mut b] {
                set.retain(|&t| t < n);
                set.sort_unstable();
                set.dedup();
            }
            (n, a, b)
        })
    }

    fn model_and(a: &[usize], b: &[usize]) -> Vec<usize> {
        a.iter().filter(|t| b.contains(t)).copied().collect()
    }

    fn model_and_not(a: &[usize], b: &[usize]) -> Vec<usize> {
        a.iter().filter(|t| !b.contains(t)).copied().collect()
    }

    fn model_or(a: &[usize], b: &[usize]) -> Vec<usize> {
        let mut out: Vec<usize> = a.iter().chain(b).copied().collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn kernels_match_sorted_vec_model(input in two_sets()) {
            let (n, a, b) = input;
            let ba = TidBitmap::from_tids(n, a.iter().copied());
            let bb = TidBitmap::from_tids(n, b.iter().copied());

            // Round trip and membership.
            prop_assert_eq!(ba.iter().collect::<Vec<_>>(), a.clone());
            prop_assert_eq!(ba.count(), a.len());
            prop_assert_eq!(ba.is_empty(), a.is_empty());
            for t in 0..n {
                prop_assert_eq!(ba.contains(t), a.contains(&t));
            }

            // Binary kernels.
            let and = model_and(&a, &b);
            let and_not = model_and_not(&a, &b);
            prop_assert_eq!(ba.and(&bb).iter().collect::<Vec<_>>(), and.clone());
            prop_assert_eq!(ba.and_not(&bb).iter().collect::<Vec<_>>(), and_not.clone());
            prop_assert_eq!(ba.or(&bb).iter().collect::<Vec<_>>(), model_or(&a, &b));
            prop_assert_eq!(ba.and_count(&bb), and.len());
            prop_assert_eq!(ba.and_not_count(&bb), and_not.len());
            prop_assert_eq!(ba.diff_iter(&bb).collect::<Vec<_>>(), and_not.clone());

            // In-place variants agree with the allocating ones.
            let mut c = ba.clone();
            c.and_assign(&bb);
            prop_assert_eq!(&c, &ba.and(&bb));
            // and_into into a dirty recycled buffer matches too.
            let mut recycled = TidBitmap::full(97);
            ba.and_into(&bb, &mut recycled);
            prop_assert_eq!(&recycled, &ba.and(&bb));
            let mut d = ba.clone();
            d.and_not_assign(&bb);
            prop_assert_eq!(&d, &ba.and_not(&bb));

            // Predicates.
            prop_assert_eq!(ba.is_subset(&bb), a.iter().all(|t| b.contains(t)));
            prop_assert_eq!(ba.is_disjoint(&bb), and.is_empty());

            // Fingerprints of equal sets agree (the cache relies on it).
            let rebuilt = TidBitmap::from_tids(n, a.iter().copied());
            prop_assert_eq!(ba.fingerprint(), rebuilt.fingerprint());
            if a != b {
                prop_assert!(ba.fingerprint() != bb.fingerprint());
            }
        }

        #[test]
        fn insert_remove_match_model(input in two_sets()) {
            let (n, a, _) = input;
            let mut bitmap = TidBitmap::new(n);
            for &t in &a {
                bitmap.insert(t);
            }
            prop_assert_eq!(bitmap.iter().collect::<Vec<_>>(), a.clone());
            // Remove the first half; the rest must survive untouched.
            let half = a.len() / 2;
            for &t in &a[..half] {
                bitmap.remove(t);
            }
            prop_assert_eq!(bitmap.iter().collect::<Vec<_>>(), a[half..].to_vec());
        }
    }
}
