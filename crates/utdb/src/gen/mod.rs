//! Dataset generators.
//!
//! The paper evaluates on two datasets, neither of which can be shipped
//! here; both are substituted by structure-preserving generators (see
//! DESIGN.md §5):
//!
//! * [`quest`] — a reimplementation of the IBM Quest synthetic generator
//!   (Agrawal & Srikant), parameterized to the paper's `T20I10D30KP40`;
//! * [`mushroom`] — a dense categorical generator mimicking the UCI
//!   Mushroom dataset (23 attributes, 119 items, fixed-length rows,
//!   class-correlated values).
//!
//! Both produce *certain* databases (probability 1 everywhere); the
//! paper's protocol then overlays Gaussian existential probabilities via
//! [`crate::gaussian::assign_gaussian_probabilities`].

pub mod mushroom;
pub mod quest;

pub use mushroom::MushroomConfig;
pub use quest::QuestConfig;

use rand::{Rng, RngExt};

/// Draw from a Poisson distribution with the given mean via Knuth's
/// product-of-uniforms method (fine for the small means used here).
pub(crate) fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    debug_assert!(mean >= 0.0);
    if mean == 0.0 {
        return 0;
    }
    let limit = (-mean).exp();
    let mut k = 0usize;
    let mut product: f64 = rng.random();
    while product > limit {
        k += 1;
        product *= rng.random::<f64>();
    }
    k
}

/// Draw from an exponential distribution with the given mean.
pub(crate) fn exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.random::<f64>(); // in (0, 1]
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(1);
        for mean in [0.5, 2.0, 10.0, 20.0] {
            let n = 50_000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, mean)).sum();
            let emp = total as f64 / n as f64;
            assert!(
                (emp - mean).abs() < 0.15 * mean + 0.05,
                "mean {mean}: {emp}"
            );
        }
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| exponential(&mut rng, 4.0)).sum();
        let emp = total / n as f64;
        assert!((emp - 4.0).abs() < 0.2, "{emp}");
    }

    #[test]
    fn exponential_is_nonnegative() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(exponential(&mut rng, 1.0) >= 0.0);
        }
    }
}
