//! IBM Quest-style synthetic transaction generator.
//!
//! Reimplements the generator of Agrawal & Srikant ("Fast Algorithms for
//! Mining Association Rules", VLDB'94) that produced the paper's
//! `T20I10D30KP40` dataset: `|T| = 20` average transaction length,
//! `|I| = 10` average potential-pattern length, `|D| = 30K` transactions,
//! `N = 40` distinct items.
//!
//! Mechanics: a pool of *potential maximal itemsets* is drawn first —
//! sizes Poisson around `|I|`, contents partially inherited from the
//! previous pattern to model cross-pattern correlation, picking weights
//! exponentially distributed. Each transaction then draws a Poisson length
//! around `|T|` and fills itself with (possibly corrupted) patterns.

use rand::seq::IndexedRandom;
use rand::{Rng, RngExt};

use super::{exponential, poisson};
use crate::database::UncertainDatabase;
use crate::item::{Item, ItemDictionary};
use crate::transaction::UncertainTransaction;

/// Parameters of the Quest generator.
#[derive(Debug, Clone)]
pub struct QuestConfig {
    /// `|D|`: number of transactions.
    pub num_transactions: usize,
    /// `|T|`: average transaction length.
    pub avg_transaction_len: f64,
    /// `|I|`: average size of the potential maximal itemsets.
    pub avg_pattern_len: f64,
    /// `N`: number of distinct items.
    pub num_items: usize,
    /// `|L|`: size of the potential maximal itemset pool.
    pub num_patterns: usize,
    /// Fraction of a pattern inherited from its predecessor (the paper's
    /// generator uses an exponential with mean `correlation`).
    pub correlation: f64,
    /// Mean of the per-pattern corruption level.
    pub corruption_mean: f64,
    /// Standard deviation of the per-pattern corruption level.
    pub corruption_dev: f64,
}

impl QuestConfig {
    /// The paper's synthetic dataset `T20I10D30KP40` scaled to
    /// `num_transactions` rows: average transaction length 20, average
    /// pattern length 10, 40 distinct items.
    pub fn t20i10_p40(num_transactions: usize) -> Self {
        Self {
            num_transactions,
            avg_transaction_len: 20.0,
            avg_pattern_len: 10.0,
            num_items: 40,
            num_patterns: 50,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
        }
    }

    /// Generate a certain database (all probabilities 1).
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (no items, no transactions).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> UncertainDatabase {
        assert!(self.num_items > 0, "need at least one item");
        assert!(self.num_patterns > 0, "need at least one pattern");
        let all_items: Vec<Item> = (0..self.num_items as u32).map(Item).collect();

        // --- Potential maximal itemset pool -------------------------------
        let mut patterns: Vec<Vec<Item>> = Vec::with_capacity(self.num_patterns);
        let mut weights: Vec<f64> = Vec::with_capacity(self.num_patterns);
        let mut corruption: Vec<f64> = Vec::with_capacity(self.num_patterns);
        for p in 0..self.num_patterns {
            let size = poisson(rng, self.avg_pattern_len).clamp(1, self.num_items);
            let mut items: Vec<Item> = Vec::with_capacity(size);
            if p > 0 {
                // Inherit a correlated fraction from the previous pattern.
                let frac = exponential(rng, self.correlation).min(1.0);
                let inherit = ((size as f64 * frac).round() as usize).min(patterns[p - 1].len());
                let mut prev = patterns[p - 1].clone();
                for _ in 0..inherit {
                    let idx = rng.random_range(0..prev.len());
                    items.push(prev.swap_remove(idx));
                }
            }
            while items.len() < size {
                let candidate = *all_items.choose(rng).expect("non-empty item pool");
                if !items.contains(&candidate) {
                    items.push(candidate);
                }
            }
            items.sort_unstable();
            patterns.push(items);
            weights.push(exponential(rng, 1.0));
            corruption.push(
                (self.corruption_mean + self.corruption_dev * prob::standard_normal(rng))
                    .clamp(0.0, 1.0),
            );
        }
        let total_weight: f64 = weights.iter().sum();
        let cumulative: Vec<f64> = weights
            .iter()
            .scan(0.0, |acc, w| {
                *acc += w / total_weight;
                Some(*acc)
            })
            .collect();

        // --- Transactions ---------------------------------------------------
        let mut transactions = Vec::with_capacity(self.num_transactions);
        while transactions.len() < self.num_transactions {
            let target_len = poisson(rng, self.avg_transaction_len).clamp(1, self.num_items);
            let mut items: Vec<Item> = Vec::with_capacity(target_len);
            // Fill with corrupted patterns until the target size is met.
            let mut guard = 0;
            while items.len() < target_len && guard < 64 {
                guard += 1;
                let u: f64 = rng.random();
                let pi = cumulative
                    .iter()
                    .position(|&c| u <= c)
                    .unwrap_or(self.num_patterns - 1);
                // Corrupt: repeatedly drop a random item while a uniform
                // draw exceeds the pattern's corruption level.
                let mut chosen = patterns[pi].clone();
                while chosen.len() > 1 && rng.random::<f64>() > corruption[pi] {
                    let idx = rng.random_range(0..chosen.len());
                    chosen.swap_remove(idx);
                }
                for item in chosen {
                    if !items.contains(&item) {
                        items.push(item);
                    }
                }
            }
            items.truncate(target_len.max(1));
            if items.is_empty() {
                continue;
            }
            transactions.push(UncertainTransaction::new(items, 1.0));
        }

        let mut dict = ItemDictionary::new();
        for i in 0..self.num_items {
            dict.intern(&format!("i{i}"));
        }
        UncertainDatabase::new(transactions, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn t20i10_p40_shape_statistics() {
        let mut rng = SmallRng::seed_from_u64(7);
        let db = QuestConfig::t20i10_p40(2000).generate(&mut rng);
        let stats = db.stats();
        assert_eq!(stats.num_transactions, 2000);
        assert!(stats.num_items <= 40);
        assert!(stats.num_items >= 30, "items {}", stats.num_items);
        // Average length should be near |T| = 20 (clamped at N = 40).
        assert!(
            (stats.avg_length - 20.0).abs() < 3.0,
            "avg_length {}",
            stats.avg_length
        );
    }

    #[test]
    fn transactions_are_valid() {
        let mut rng = SmallRng::seed_from_u64(8);
        let db = QuestConfig::t20i10_p40(500).generate(&mut rng);
        for t in db.transactions() {
            assert!(!t.items().is_empty());
            assert!(t.items().windows(2).all(|w| w[0] < w[1]), "sorted unique");
            assert!(t.items().iter().all(|i| i.index() < 40));
            assert_eq!(t.probability(), 1.0);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let a = QuestConfig::t20i10_p40(100).generate(&mut SmallRng::seed_from_u64(3));
        let b = QuestConfig::t20i10_p40(100).generate(&mut SmallRng::seed_from_u64(3));
        for (x, y) in a.transactions().iter().zip(b.transactions()) {
            assert_eq!(x.items(), y.items());
        }
    }

    #[test]
    fn patterns_induce_cooccurrence() {
        // With pattern-based generation some item pairs must co-occur far
        // more often than independence would predict.
        let mut rng = SmallRng::seed_from_u64(11);
        let db = QuestConfig::t20i10_p40(3000).generate(&mut rng);
        let n = db.len() as f64;
        let mut max_lift: f64 = 0.0;
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                let a = db.tidset_of(Item(i));
                let b = db.tidset_of(Item(j));
                let pa = a.count() as f64 / n;
                let pb = b.count() as f64 / n;
                if pa < 0.05 || pb < 0.05 {
                    continue;
                }
                let pab = a.intersection_count(b) as f64 / n;
                max_lift = max_lift.max(pab / (pa * pb));
            }
        }
        assert!(max_lift > 1.15, "max lift {max_lift}");
    }

    #[test]
    fn small_configs_work() {
        let cfg = QuestConfig {
            num_transactions: 10,
            avg_transaction_len: 3.0,
            avg_pattern_len: 2.0,
            num_items: 6,
            num_patterns: 4,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
        };
        let db = cfg.generate(&mut SmallRng::seed_from_u64(1));
        assert_eq!(db.len(), 10);
    }
}
