//! Mushroom-like dense categorical dataset generator.
//!
//! The UCI Mushroom dataset (8124 rows) encodes 23 categorical attributes
//! (the class plus 22 morphological features) as 119 distinct items; each
//! row carries exactly one value per attribute. Its density and strong
//! attribute correlations make closed-itemset mining dramatically more
//! compact than plain frequent-itemset mining — exactly the property the
//! paper's compression experiment (Fig. 10) exercises.
//!
//! The generator reproduces that structure synthetically: the real
//! attribute arities (119 items in total), fixed row length 23, and
//! class-conditional skewed value distributions that induce the strong
//! cross-attribute correlations.

use rand::{Rng, RngExt};

use crate::database::UncertainDatabase;
use crate::item::{Item, ItemDictionary};
use crate::transaction::UncertainTransaction;

/// Arities of the 23 attributes (class first), summing to 119 items as in
/// the standard itemset encoding of the UCI Mushroom dataset.
pub const ATTRIBUTE_ARITIES: [usize; 23] = [
    2,  // class: edible / poisonous
    6,  // cap-shape
    4,  // cap-surface
    10, // cap-color
    2,  // bruises
    9,  // odor
    2,  // gill-attachment
    2,  // gill-spacing
    2,  // gill-size
    12, // gill-color
    2,  // stalk-shape
    5,  // stalk-root
    4,  // stalk-surface-above-ring
    4,  // stalk-surface-below-ring
    9,  // stalk-color-above-ring
    9,  // stalk-color-below-ring
    1,  // veil-type (constant in the real data)
    4,  // veil-color
    3,  // ring-number
    5,  // ring-type
    9,  // spore-print-color
    6,  // population
    7,  // habitat
];

/// Number of rows in the real UCI Mushroom dataset.
pub const REAL_NUM_ROWS: usize = 8124;

/// Bounds of the per-attribute geometric skew: value at rank `r` gets
/// weight `skew^r` before normalization. The real Mushroom dataset mixes
/// near-constant attributes (veil-color = white in 97% of rows,
/// gill-attachment = free in 97%, ring-number = one in 92%) with diverse
/// ones (cap-color, gill-color); drawing each attribute's skew from this
/// range reproduces that mix — and the near-constant attributes are what
/// give Mushroom its long high-support closed itemsets.
const SKEW_MIN: f64 = 0.03;
const SKEW_MAX: f64 = 0.55;

/// Configuration of the Mushroom-like generator.
#[derive(Debug, Clone)]
pub struct MushroomConfig {
    /// Number of rows to generate (the real dataset has
    /// [`REAL_NUM_ROWS`]; the benchmark harness scales this down by
    /// default).
    pub num_transactions: usize,
    /// Probability of the "edible" class.
    pub edible_fraction: f64,
}

impl MushroomConfig {
    /// A Mushroom-like dataset with `num_transactions` rows and the real
    /// class balance (~51.8% edible).
    pub fn new(num_transactions: usize) -> Self {
        Self {
            num_transactions,
            edible_fraction: 0.518,
        }
    }

    /// Total number of distinct items (119 for the real arities).
    pub fn num_items() -> usize {
        ATTRIBUTE_ARITIES.iter().sum()
    }

    /// Generate a certain database (all probabilities 1).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> UncertainDatabase {
        // Item id layout: attribute-major. offsets[k] is the id of
        // attribute k's value 0.
        let mut offsets = [0usize; 23];
        let mut acc = 0usize;
        for (k, &arity) in ATTRIBUTE_ARITIES.iter().enumerate() {
            offsets[k] = acc;
            acc += arity;
        }

        // Class-conditional value distributions: a fixed geometric skew
        // over a class-specific permutation of the values, derived
        // deterministically from the caller's RNG so datasets are
        // reproducible under a seed.
        // Each attribute draws one skew shared by both classes (how
        // concentrated its values are) but a class-specific value
        // permutation (which values the classes prefer).
        let skews: Vec<f64> = ATTRIBUTE_ARITIES
            .iter()
            .map(|_| SKEW_MIN + (SKEW_MAX - SKEW_MIN) * rng.random::<f64>())
            .collect();
        let mut cumulative: [Vec<Vec<f64>>; 2] = [Vec::new(), Vec::new()];
        for class_dists in cumulative.iter_mut() {
            for (k, &arity) in ATTRIBUTE_ARITIES.iter().enumerate() {
                let mut order: Vec<usize> = (0..arity).collect();
                // Fisher-Yates with the session RNG: classes see different
                // preferred values, creating class-correlated attributes.
                for i in (1..arity).rev() {
                    let j = rng.random_range(0..=i);
                    order.swap(i, j);
                }
                let mut weights = vec![0.0f64; arity];
                for (rank, &v) in order.iter().enumerate() {
                    weights[v] = skews[k].powi(rank as i32);
                }
                let total: f64 = weights.iter().sum();
                let mut cum = 0.0;
                let cdf: Vec<f64> = weights
                    .iter()
                    .map(|w| {
                        cum += w / total;
                        cum
                    })
                    .collect();
                class_dists.push(cdf);
            }
        }

        let mut transactions = Vec::with_capacity(self.num_transactions);
        for _ in 0..self.num_transactions {
            let class = usize::from(rng.random::<f64>() >= self.edible_fraction);
            let mut items = Vec::with_capacity(23);
            for (k, &arity) in ATTRIBUTE_ARITIES.iter().enumerate() {
                let value = if k == 0 {
                    class
                } else {
                    let u: f64 = rng.random();
                    cumulative[class][k]
                        .iter()
                        .position(|&c| u <= c)
                        .unwrap_or(arity - 1)
                };
                items.push(Item((offsets[k] + value) as u32));
            }
            transactions.push(UncertainTransaction::new(items, 1.0));
        }

        let mut dict = ItemDictionary::new();
        for (k, &arity) in ATTRIBUTE_ARITIES.iter().enumerate() {
            for v in 0..arity {
                dict.intern(&format!("attr{k}={v}"));
            }
        }
        UncertainDatabase::new(transactions, dict)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn arities_sum_to_119() {
        assert_eq!(MushroomConfig::num_items(), 119);
        assert_eq!(ATTRIBUTE_ARITIES.len(), 23);
    }

    #[test]
    fn rows_have_exactly_one_value_per_attribute() {
        let db = MushroomConfig::new(300).generate(&mut SmallRng::seed_from_u64(5));
        let mut offsets = vec![0usize];
        for &a in &ATTRIBUTE_ARITIES {
            offsets.push(offsets.last().unwrap() + a);
        }
        for t in db.transactions() {
            assert_eq!(t.len(), 23);
            for (k, w) in offsets.windows(2).enumerate() {
                let in_attr = t
                    .items()
                    .iter()
                    .filter(|i| (w[0]..w[1]).contains(&i.index()))
                    .count();
                assert_eq!(in_attr, 1, "attribute {k}");
            }
        }
    }

    #[test]
    fn dataset_is_dense_like_mushroom() {
        // Table VIII: avg length == max length == 23.
        let db = MushroomConfig::new(500).generate(&mut SmallRng::seed_from_u64(6));
        let stats = db.stats();
        assert_eq!(stats.max_length, 23);
        assert!((stats.avg_length - 23.0).abs() < 1e-12);
        assert!(stats.num_items <= 119);
        assert!(stats.num_items >= 60, "items {}", stats.num_items);
    }

    #[test]
    fn class_balance_is_respected() {
        let db = MushroomConfig::new(4000).generate(&mut SmallRng::seed_from_u64(7));
        let edible = db.tidset_of(Item(0)).count() as f64 / db.len() as f64;
        assert!((edible - 0.518).abs() < 0.03, "edible fraction {edible}");
    }

    #[test]
    fn attributes_correlate_with_class() {
        // Some non-class item should be strongly class-dependent, which is
        // what makes the dataset closed-itemset friendly.
        let db = MushroomConfig::new(3000).generate(&mut SmallRng::seed_from_u64(8));
        let n = db.len() as f64;
        let class0 = db.tidset_of(Item(0));
        let p0 = class0.count() as f64 / n;
        let mut max_dependence: f64 = 0.0;
        for id in 2..119u32 {
            let its = db.tidset_of(Item(id));
            let p = its.count() as f64 / n;
            if p < 0.1 {
                continue;
            }
            let joint = its.intersection_count(class0) as f64 / n;
            max_dependence = max_dependence.max((joint - p * p0).abs());
        }
        assert!(max_dependence > 0.05, "max dependence {max_dependence}");
    }

    #[test]
    fn deterministic_under_seed() {
        let a = MushroomConfig::new(50).generate(&mut SmallRng::seed_from_u64(9));
        let b = MushroomConfig::new(50).generate(&mut SmallRng::seed_from_u64(9));
        for (x, y) in a.transactions().iter().zip(b.transactions()) {
            assert_eq!(x.items(), y.items());
        }
    }
}
