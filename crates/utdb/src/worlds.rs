//! Exhaustive possible-world enumeration.
//!
//! Under possible-world semantics an uncertain database with `n` tuples
//! induces `2^n` exact databases. This module enumerates them all — the
//! ground-truth oracle behind every correctness test of the miners, and
//! the direct realization of the paper's Table III. Usable only for small
//! `n` (capped at [`MAX_WORLD_TUPLES`]).

use crate::database::UncertainDatabase;
use crate::item::Item;

/// Enumeration beyond this tuple count would exceed `2^24` worlds.
pub const MAX_WORLD_TUPLES: usize = 24;

/// Iterator over all possible worlds of a database.
///
/// Each world is reported as `(mask, probability)`: bit `t` of `mask` set
/// means the transaction with tid `t` exists in the world.
///
/// # Examples
///
/// ```
/// use utdb::{PossibleWorlds, UncertainDatabase};
/// let db = UncertainDatabase::parse_symbolic(&[("a", 0.9), ("a b", 0.5)]);
/// let total: f64 = PossibleWorlds::new(&db).map(|(_, p)| p).sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// assert_eq!(PossibleWorlds::new(&db).count(), 4);
/// ```
pub struct PossibleWorlds<'a> {
    db: &'a UncertainDatabase,
    next_mask: u64,
    end: u64,
}

impl<'a> PossibleWorlds<'a> {
    /// Enumerate the worlds of `db`.
    ///
    /// # Panics
    ///
    /// Panics if the database holds more than [`MAX_WORLD_TUPLES`] tuples.
    pub fn new(db: &'a UncertainDatabase) -> Self {
        assert!(
            db.len() <= MAX_WORLD_TUPLES,
            "possible-world enumeration over {} tuples exceeds the {MAX_WORLD_TUPLES}-tuple cap",
            db.len()
        );
        Self {
            db,
            next_mask: 0,
            end: 1u64 << db.len(),
        }
    }

    /// Probability of the world described by `mask`.
    pub fn world_probability(db: &UncertainDatabase, mask: u64) -> f64 {
        let mut p = 1.0;
        for tid in 0..db.len() {
            let pt = db.probability(tid);
            p *= if mask >> tid & 1 == 1 { pt } else { 1.0 - pt };
        }
        p
    }

    /// Support of `itemset` inside the world described by `mask`.
    pub fn support_in_world(db: &UncertainDatabase, mask: u64, itemset: &[Item]) -> usize {
        let tids = db.tidset_of_itemset(itemset);
        tids.iter().filter(|&tid| mask >> tid & 1 == 1).count()
    }

    /// Is `itemset` *closed* in the world `mask`?
    ///
    /// Closed means: the itemset appears (support ≥ 1) and no proper
    /// superset has the same support. Following the paper's convention in
    /// the hardness proof, an itemset absent from the world is *not*
    /// closed.
    pub fn is_closed_in_world(db: &UncertainDatabase, mask: u64, itemset: &[Item]) -> bool {
        let tids = db.tidset_of_itemset(itemset);
        let present: Vec<usize> = tids.iter().filter(|&tid| mask >> tid & 1 == 1).collect();
        if present.is_empty() {
            return false;
        }
        // The closure of X in the world is the intersection of the present
        // supporting transactions; X is closed iff it equals that
        // intersection, i.e. no item outside X occurs in all of them.
        for item_id in 0..db.num_items() {
            let item = Item(item_id as u32);
            if itemset.contains(&item) {
                continue;
            }
            let its = db.tidset_of(item);
            if present.iter().all(|&tid| its.contains(tid)) {
                return false;
            }
        }
        true
    }

    /// Is `itemset` a *frequent closed* itemset in the world `mask`?
    pub fn is_frequent_closed_in_world(
        db: &UncertainDatabase,
        mask: u64,
        itemset: &[Item],
        min_sup: usize,
    ) -> bool {
        Self::support_in_world(db, mask, itemset) >= min_sup.max(1)
            && Self::is_closed_in_world(db, mask, itemset)
    }
}

impl Iterator for PossibleWorlds<'_> {
    type Item = (u64, f64);

    fn next(&mut self) -> Option<(u64, f64)> {
        if self.next_mask >= self.end {
            return None;
        }
        let mask = self.next_mask;
        self.next_mask += 1;
        Some((mask, Self::world_probability(self.db, mask)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn items(db: &UncertainDatabase, symbols: &str) -> Vec<Item> {
        symbols
            .split_whitespace()
            .map(|s| db.dictionary().get(s).unwrap())
            .collect()
    }

    #[test]
    fn world_count_and_total_mass() {
        let db = table2();
        let worlds: Vec<_> = PossibleWorlds::new(&db).collect();
        assert_eq!(worlds.len(), 16);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_world_pw5_probability() {
        // PW5 = {T1, T2, T3} (T4 absent): 0.9 * 0.6 * 0.7 * 0.1 = 0.0378.
        let db = table2();
        let mask = 0b0111;
        let p = PossibleWorlds::world_probability(&db, mask);
        assert!((p - 0.0378).abs() < 1e-12);
    }

    #[test]
    fn support_counts_present_supporting_tuples() {
        let db = table2();
        let abcd = items(&db, "a b c d");
        assert_eq!(PossibleWorlds::support_in_world(&db, 0b1111, &abcd), 2);
        assert_eq!(PossibleWorlds::support_in_world(&db, 0b0110, &abcd), 0);
        let abc = items(&db, "a b c");
        assert_eq!(PossibleWorlds::support_in_world(&db, 0b0110, &abc), 2);
    }

    #[test]
    fn closedness_matches_paper_table_iii() {
        let db = table2();
        let abc = items(&db, "a b c");
        let abcd = items(&db, "a b c d");
        // PW8 = all four tuples: both {abc} (sup 4 > sup(abcd)=2) and
        // {abcd} are closed.
        assert!(PossibleWorlds::is_closed_in_world(&db, 0b1111, &abc));
        assert!(PossibleWorlds::is_closed_in_world(&db, 0b1111, &abcd));
        // PW4 = {T1, T4}: every present tuple carries d, so {abc} is NOT
        // closed there, {abcd} is.
        assert!(!PossibleWorlds::is_closed_in_world(&db, 0b1001, &abc));
        assert!(PossibleWorlds::is_closed_in_world(&db, 0b1001, &abcd));
        // {ab} is never closed: c occurs wherever a and b do.
        let ab = items(&db, "a b");
        for (mask, _) in PossibleWorlds::new(&db) {
            assert!(!PossibleWorlds::is_closed_in_world(&db, mask, &ab));
        }
    }

    #[test]
    fn absent_itemset_is_not_closed() {
        let db = table2();
        let abc = items(&db, "a b c");
        assert!(!PossibleWorlds::is_closed_in_world(&db, 0, &abc));
    }

    #[test]
    fn frequent_closed_requires_min_sup() {
        let db = table2();
        let abcd = items(&db, "a b c d");
        // world {T1}: sup(abcd)=1, closed but not frequent at min_sup=2.
        assert!(PossibleWorlds::is_closed_in_world(&db, 0b0001, &abcd));
        assert!(!PossibleWorlds::is_frequent_closed_in_world(
            &db, 0b0001, &abcd, 2
        ));
        assert!(PossibleWorlds::is_frequent_closed_in_world(
            &db, 0b1001, &abcd, 2
        ));
    }

    #[test]
    fn frequent_closed_probability_of_paper_examples() {
        // Σ over worlds where the itemset is frequent closed must equal
        // the paper's worked values: {abc} -> 0.8754, {abcd} -> 0.81.
        let db = table2();
        let abc = items(&db, "a b c");
        let abcd = items(&db, "a b c d");
        let mut p_abc = 0.0;
        let mut p_abcd = 0.0;
        for (mask, p) in PossibleWorlds::new(&db) {
            if PossibleWorlds::is_frequent_closed_in_world(&db, mask, &abc, 2) {
                p_abc += p;
            }
            if PossibleWorlds::is_frequent_closed_in_world(&db, mask, &abcd, 2) {
                p_abcd += p;
            }
        }
        assert!((p_abc - 0.8754).abs() < 1e-10, "{p_abc}");
        assert!((p_abcd - 0.81).abs() < 1e-10, "{p_abcd}");
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn refuses_oversized_databases() {
        let rows: Vec<(&str, f64)> = (0..25).map(|_| ("a", 0.5)).collect();
        let db = UncertainDatabase::parse_symbolic(&rows);
        let _ = PossibleWorlds::new(&db);
    }
}
