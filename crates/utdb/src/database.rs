//! The uncertain transaction database.

use std::fmt;

use crate::item::{Item, ItemDictionary};
use crate::tidset::TidSet;
use crate::transaction::UncertainTransaction;

/// An uncertain transaction database under the tuple-uncertainty model,
/// with a vertical index (per-item tid-sets) built eagerly.
///
/// # Examples
///
/// Build the paper's running example (Table II):
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b c d", 0.9),
///     ("a b c", 0.6),
///     ("a b c", 0.7),
///     ("a b c d", 0.9),
/// ]);
/// assert_eq!(db.len(), 4);
/// assert_eq!(db.num_items(), 4);
/// let a = db.dictionary().get("a").unwrap();
/// assert_eq!(db.tidset_of(a).count(), 4);
/// ```
#[derive(Clone)]
pub struct UncertainDatabase {
    transactions: Vec<UncertainTransaction>,
    dictionary: ItemDictionary,
    /// `tidsets[i]` = transactions whose itemset contains item `i`.
    tidsets: Vec<TidSet>,
}

impl UncertainDatabase {
    /// Build a database from transactions and an optional dictionary.
    ///
    /// The vertical index covers items `0..=max_id` even if some ids never
    /// occur (their tid-sets are empty).
    pub fn new(transactions: Vec<UncertainTransaction>, dictionary: ItemDictionary) -> Self {
        let n = transactions.len();
        let num_items = transactions
            .iter()
            .flat_map(|t| t.items())
            .map(|i| i.index() + 1)
            .max()
            .unwrap_or(0)
            .max(dictionary.len());
        let mut tidsets = vec![TidSet::new(n); num_items];
        for (tid, t) in transactions.iter().enumerate() {
            for &item in t.items() {
                tidsets[item.index()].insert(tid);
            }
        }
        Self {
            transactions,
            dictionary,
            tidsets,
        }
    }

    /// Build from `(symbolic itemset, probability)` pairs, interning the
    /// whitespace-separated symbols in order of first appearance.
    ///
    /// Intended for paper examples and tests; symbols should be listed so
    /// that first-appearance order equals the desired item order.
    pub fn parse_symbolic(rows: &[(&str, f64)]) -> Self {
        let mut dict = ItemDictionary::new();
        let transactions = rows
            .iter()
            .map(|(symbols, p)| {
                let items: Vec<Item> = symbols.split_whitespace().map(|s| dict.intern(s)).collect();
                UncertainTransaction::new(items, *p)
            })
            .collect();
        Self::new(transactions, dict)
    }

    /// Number of transactions `|UTD|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the database holds no transactions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Number of item ids covered by the vertical index.
    #[inline]
    pub fn num_items(&self) -> usize {
        self.tidsets.len()
    }

    /// All transactions, tid order.
    #[inline]
    pub fn transactions(&self) -> &[UncertainTransaction] {
        &self.transactions
    }

    /// The transaction with the given tid.
    #[inline]
    pub fn transaction(&self, tid: usize) -> &UncertainTransaction {
        &self.transactions[tid]
    }

    /// Existential probability of the transaction with the given tid.
    #[inline]
    pub fn probability(&self, tid: usize) -> f64 {
        self.transactions[tid].probability()
    }

    /// The symbol dictionary.
    #[inline]
    pub fn dictionary(&self) -> &ItemDictionary {
        &self.dictionary
    }

    /// Tid-set of a single item.
    ///
    /// # Panics
    ///
    /// Panics if the item id is outside the vertical index.
    #[inline]
    pub fn tidset_of(&self, item: Item) -> &TidSet {
        &self.tidsets[item.index()]
    }

    /// Word-level bitmap of a single item's tid-set — the representation
    /// the miner's intersection and popcount kernels run on.
    ///
    /// # Panics
    ///
    /// Panics if the item id is outside the vertical index.
    #[inline]
    pub fn bitmap_of(&self, item: Item) -> &crate::bitset::TidBitmap {
        self.tidsets[item.index()].bitmap()
    }

    /// Tid-set of an itemset: the intersection of its items' tid-sets.
    /// Returns the full universe for the empty itemset.
    pub fn tidset_of_itemset(&self, itemset: &[Item]) -> TidSet {
        let mut result = TidSet::full(self.len());
        for &item in itemset {
            result.intersect_with(self.tidset_of(item));
        }
        result
    }

    /// The *count* of an itemset (Definition 4.2): how many transactions
    /// possibly contain it.
    pub fn count_of_itemset(&self, itemset: &[Item]) -> usize {
        self.tidset_of_itemset(itemset).count()
    }

    /// Expected support of an itemset: `Σ_{T ⊇ X} Pr(T)`.
    pub fn expected_support(&self, itemset: &[Item]) -> f64 {
        self.tidset_of_itemset(itemset)
            .iter()
            .map(|tid| self.probability(tid))
            .sum()
    }

    /// Existential probabilities of the transactions in `tids`, ascending
    /// tid order.
    pub fn probabilities_of(&self, tids: &TidSet) -> Vec<f64> {
        tids.iter().map(|tid| self.probability(tid)).collect()
    }

    /// Dataset statistics in the shape of the paper's Table VIII.
    pub fn stats(&self) -> DatabaseStats {
        let lengths: Vec<usize> = self.transactions.iter().map(|t| t.len()).collect();
        let distinct = self.tidsets.iter().filter(|ts| !ts.is_empty()).count();
        DatabaseStats {
            num_transactions: self.len(),
            num_items: distinct,
            avg_length: if lengths.is_empty() {
                0.0
            } else {
                lengths.iter().sum::<usize>() as f64 / lengths.len() as f64
            },
            max_length: lengths.iter().copied().max().unwrap_or(0),
            mean_probability: if self.is_empty() {
                0.0
            } else {
                self.transactions
                    .iter()
                    .map(|t| t.probability())
                    .sum::<f64>()
                    / self.len() as f64
            },
        }
    }

    /// Render an itemset with this database's dictionary.
    pub fn render(&self, itemset: &[Item]) -> String {
        self.dictionary.render(itemset)
    }
}

impl fmt::Debug for UncertainDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UncertainDatabase({} transactions, {} items)",
            self.len(),
            self.num_items()
        )
    }
}

/// Summary statistics of a database — the columns of the paper's
/// Table VIII plus the mean existential probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatabaseStats {
    /// Number of transactions.
    pub num_transactions: usize,
    /// Number of distinct items that actually occur.
    pub num_items: usize,
    /// Average transaction length.
    pub avg_length: f64,
    /// Maximal transaction length.
    pub max_length: usize,
    /// Mean existential probability.
    pub mean_probability: f64,
}

impl fmt::Display for DatabaseStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "|D|={} items={} avg_len={:.2} max_len={} mean_p={:.3}",
            self.num_transactions,
            self.num_items,
            self.avg_length,
            self.max_length,
            self.mean_probability
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    #[test]
    fn vertical_index_matches_rows() {
        let db = table2();
        let d = db.dictionary().get("d").unwrap();
        assert_eq!(db.tidset_of(d).iter().collect::<Vec<_>>(), vec![0, 3]);
        let a = db.dictionary().get("a").unwrap();
        assert_eq!(db.tidset_of(a).count(), 4);
    }

    #[test]
    fn itemset_tidset_is_intersection() {
        let db = table2();
        let dict = db.dictionary();
        let abcd: Vec<Item> = ["a", "b", "c", "d"]
            .iter()
            .map(|s| dict.get(s).unwrap())
            .collect();
        assert_eq!(db.count_of_itemset(&abcd), 2);
        assert_eq!(db.count_of_itemset(&abcd[..3]), 4);
    }

    #[test]
    fn empty_itemset_has_full_tidset() {
        let db = table2();
        assert_eq!(db.count_of_itemset(&[]), 4);
    }

    #[test]
    fn expected_support_sums_probabilities() {
        let db = table2();
        let dict = db.dictionary();
        let d = dict.get("d").unwrap();
        assert!((db.expected_support(&[d]) - 1.8).abs() < 1e-12);
        let a = dict.get("a").unwrap();
        assert!((db.expected_support(&[a]) - 3.1).abs() < 1e-12);
    }

    #[test]
    fn stats_table_viii_shape() {
        let db = table2();
        let s = db.stats();
        assert_eq!(s.num_transactions, 4);
        assert_eq!(s.num_items, 4);
        assert_eq!(s.max_length, 4);
        assert!((s.avg_length - 3.5).abs() < 1e-12);
        assert!((s.mean_probability - 0.775).abs() < 1e-12);
    }

    #[test]
    fn probabilities_of_follows_tid_order() {
        let db = table2();
        let d = db.dictionary().get("d").unwrap();
        assert_eq!(db.probabilities_of(db.tidset_of(d)), vec![0.9, 0.9]);
    }

    #[test]
    fn empty_database() {
        let db = UncertainDatabase::new(vec![], ItemDictionary::new());
        assert!(db.is_empty());
        assert_eq!(db.num_items(), 0);
        assert_eq!(db.stats().num_transactions, 0);
    }

    #[test]
    fn render_uses_dictionary() {
        let db = table2();
        let dict = db.dictionary();
        let ab = vec![dict.get("a").unwrap(), dict.get("b").unwrap()];
        assert_eq!(db.render(&ab), "{a, b}");
    }
}
