//! Minimal, dependency-free property-based testing for the pfcim
//! workspace.
//!
//! An in-tree stand-in for the `proptest` crate providing exactly the API
//! surface the workspace's property tests use, so the build stays
//! hermetic (no registry access). Semantics are simplified but faithful
//! where it matters:
//!
//! * [`strategy::Strategy`] — generate a value from a deterministic RNG;
//!   composable with `prop_map`, tuples, ranges and
//!   [`collection::vec`].
//! * [`proptest!`] — expands each `fn name(arg in strategy, ...) { .. }`
//!   into a `#[test]` that runs the body for
//!   [`test_runner::ProptestConfig::cases`] generated inputs.
//! * [`prop_assert!`]/[`prop_assert_eq!`] — panic on failure (no
//!   shrinking; the failing case index and seed are printed so a failure
//!   is reproducible).
//!
//! Cases are seeded from a hash of the test name and the case index, so
//! runs are deterministic across processes and machines.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;
    use rand::RngExt;

    /// A recipe for generating values of `Value` from a deterministic RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut SmallRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }

    /// Strategy for a type with a canonical generator (see
    /// [`crate::arbitrary::any`]).
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(
        /// The constant to produce.
        pub T,
    );

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! Canonical strategies per type (`any::<T>()`).

    use core::marker::PhantomData;

    use rand::rngs::SmallRng;
    use rand::RngExt;

    use crate::strategy::Strategy;

    /// Types with a canonical full-domain generator.
    pub trait Arbitrary: Sized {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> bool {
            rng.random()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut SmallRng) -> u8 {
            rng.random_range(0..=u8::MAX)
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut SmallRng) -> u32 {
            rng.random()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut SmallRng) -> u64 {
            rng.random()
        }
    }

    impl Arbitrary for f64 {
        /// Unit-interval floats: the workspace's probability-heavy tests
        /// only ever need `[0, 1)`.
        fn arbitrary(rng: &mut SmallRng) -> f64 {
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use rand::rngs::SmallRng;
    use rand::RngExt;

    use crate::strategy::Strategy;

    /// A size specification for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            let (lo, hi) = r.into_inner();
            assert!(lo <= hi, "empty size range");
            Self { lo, hi: hi + 1 }
        }
    }

    /// Strategy generating `Vec`s of `elem` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration and deterministic per-case seeding.

    /// Number of cases to run per property (a subset of the real
    /// `ProptestConfig`).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Generated inputs per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Explicit property failure, for bodies that `return Err(..)` or
    /// `return Ok(())` early (the real crate's richer reject/fail enum
    /// collapses to a message here).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic seed for `case` of the property named `name`
    /// (FNV-1a over the name, mixed with the case index).
    pub fn case_seed(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (u64::from(case) << 32 | u64::from(case))
    }
}

pub mod prelude {
    //! The commonly used subset, mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Assert a condition inside a [`proptest!`] body; panics (with the
/// formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a [`proptest!`] body; panics on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for every generated input.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
// The `#[test]` in the example is the macro's real input syntax, and the
// doctest exercises the expansion itself, so the inner tests do run.
#[allow(clippy::test_attr_in_doctest)]
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::test_runner::case_seed(stringify!($name), __case);
                let mut __rng = <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(__seed);
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                // The body runs as a fallible closure so tests may
                // `return Ok(())` early, like under the real crate.
                let __run = || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::core::result::Result::Ok(())
                };
                let __report = || {
                    eprintln!(
                        "property {} failed at case {}/{} (seed {:#x})",
                        stringify!($name),
                        __case,
                        __config.cases,
                        __seed
                    );
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    ::core::result::Result::Ok(::core::result::Result::Ok(())) => {}
                    ::core::result::Result::Ok(::core::result::Result::Err(__err)) => {
                        __report();
                        panic!("{}", __err);
                    }
                    ::core::result::Result::Err(__panic) => {
                        __report();
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_seed() {
        use rand::{rngs::SmallRng, SeedableRng};
        let strat = crate::collection::vec((1u32..64, 0.05f64..1.0), 1..10);
        let a = strat.generate(&mut SmallRng::seed_from_u64(1));
        let b = strat.generate(&mut SmallRng::seed_from_u64(1));
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 10);
        for &(m, p) in &a {
            assert!((1..64).contains(&m));
            assert!((0.05..1.0).contains(&p));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated ranges respect their bounds.
        #[test]
        fn ranges_respect_bounds(x in 3usize..17, y in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&y));
        }

        /// Mapped strategies apply their function.
        #[test]
        fn prop_map_applies(v in crate::collection::vec(1u32..5, 2..4).prop_map(|v| v.len())) {
            prop_assert!(v == 2 || v == 3);
        }

        /// `any::<bool>` produces both values across cases (statistical,
        /// but 32 cases of the first element make a miss astronomically
        /// unlikely only in aggregate — so just type-check it here).
        #[test]
        fn any_bool_generates(b in any::<bool>()) {
            prop_assert!(usize::from(b) <= 1);
        }
    }

    #[test]
    #[should_panic(expected = "x > 100")]
    fn failing_property_reports_case() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) { prop_assert!(x > 100); }
        }
        always_fails();
    }
}
