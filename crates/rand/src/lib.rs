//! Minimal, dependency-free random number generation for the pfcim
//! workspace.
//!
//! This crate is an in-tree stand-in for the `rand` crate providing
//! exactly the API surface the workspace uses, so that the whole build is
//! hermetic (no registry access required). The design follows the same
//! split the workspace code assumes:
//!
//! * [`Rng`] — the object-safe core trait (`next_u64`), so samplers can
//!   take `&mut dyn Rng`;
//! * [`RngExt`] — the blanket extension trait carrying the generic
//!   conveniences (`random`, `random_range`);
//! * [`SeedableRng`] — deterministic construction from a `u64` seed;
//! * [`rngs::SmallRng`] — a small, fast, high-quality generator
//!   (xoshiro256++ seeded via SplitMix64);
//! * [`seq::IndexedRandom`] — uniform slice element selection.
//!
//! All generators are fully deterministic given their seed; nothing here
//! touches OS entropy.

#![deny(missing_docs)]
#![warn(clippy::all)]

/// The object-safe core of a random number generator.
///
/// Everything else ([`RngExt`], [`seq::IndexedRandom`], the distribution
/// helpers) is derived from a stream of uniform `u64`s.
pub trait Rng {
    /// The next uniformly distributed 64-bit value of the stream.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit value (upper bits of
    /// [`Rng::next_u64`], which are the strongest bits of xoshiro-family
    /// generators).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from an [`Rng`] stream.
///
/// Implemented for the primitive types the workspace draws directly:
/// floats in `[0, 1)`, full-range integers, and fair booleans.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 random mantissa bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    /// A fair coin (the top bit of the stream).
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Uniform value in `[0, bound)` by 128-bit widening multiply (Lemire's
/// method without the rejection step; the bias is below `2^-64` for the
/// bounds used here).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

/// Generic conveniences over any [`Rng`], blanket-implemented so they are
/// available on `&mut dyn Rng` too.
pub trait RngExt: Rng {
    /// A uniformly distributed value of `T` (floats land in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value drawn uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;

    /// Build a generator seeded from another generator's stream.
    fn from_rng<R: Rng + ?Sized>(source: &mut R) -> Self {
        Self::seed_from_u64(source.next_u64())
    }
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Rng, SeedableRng};

    /// A small, fast generator: xoshiro256++ with SplitMix64 seed
    /// expansion. Deterministic, not cryptographically secure.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ requires a non-zero state; SplitMix64 only maps
            // a single input to an all-zero block, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Random selection from sequences.

    use super::{Rng, RngExt};

    /// Uniform random element selection from indexable sequences.
    pub trait IndexedRandom {
        /// Element type.
        type Output;

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::IndexedRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_range_is_uniform_over_small_spans() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.random_range(0..5usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(3..=7usize);
            assert!((3..=7).contains(&v));
        }
    }

    #[test]
    fn dyn_rng_is_usable() {
        let mut rng = SmallRng::seed_from_u64(3);
        let dynr: &mut dyn Rng = &mut rng;
        let x: f64 = dynr.random();
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(4);
        let items = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*items.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn bool_and_random_bool_are_balanced() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((hits as f64 - 5_000.0).abs() < 300.0, "{hits}");
        let biased = (0..10_000).filter(|_| rng.random_bool(0.9)).count();
        assert!((biased as f64 - 9_000.0).abs() < 300.0, "{biased}");
    }
}
