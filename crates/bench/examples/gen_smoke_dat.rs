//! Write the high-probability smoke dataset as a plain-text `.dat`
//! file — the input `scripts/ci.sh` feeds to `pfcim profile` and
//! `pfcim --prom` to exercise the exporters end-to-end.
//!
//! ```text
//! cargo run -p pfcim-bench --example gen_smoke_dat -- [PATH]
//! ```

use std::path::Path;

use pfcim_bench::datasets::{BenchDataset, Scale};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "smoke.dat".to_owned());
    let db = BenchDataset::HighProb.uncertain(Scale::Tiny, 42);
    utdb::io::write_dat(&db, Path::new(&path)).expect("write dataset");
    eprintln!("wrote {path} ({} transactions, {})", db.len(), db.stats());
}
