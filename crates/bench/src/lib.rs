//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (Section V).
//!
//! The [`datasets`] module builds the two evaluation datasets at a
//! configurable scale; [`experiments`] contains one driver per figure
//! (Fig. 5 through Fig. 12) plus the tables; [`report`] renders rows as
//! aligned text and CSV; [`observe`] threads optional JSONL tracing and
//! progress heartbeats through the drivers; [`benchreport`] defines the
//! versioned `BENCH_<label>.json` performance reports and their
//! regression comparator. The `repro` binary wires the figure drivers to
//! a CLI, the `bench-report` binary runs the dataset × algorithm matrix
//! behind `scripts/bench.sh`, and the Criterion benches under `benches/`
//! wrap the same drivers at reduced scale.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod benchreport;
pub mod datasets;
pub mod experiments;
pub mod observe;
pub mod report;

pub use benchreport::{BenchEntry, BenchReport};
pub use datasets::{BenchDataset, DatasetKind, Scale};
pub use observe::Observe;
pub use report::Table;
