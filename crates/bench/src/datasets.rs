//! The two evaluation datasets of the paper, at configurable scale.
//!
//! * **Mushroom** — the dense categorical dataset (8124 rows, 119 items
//!   in the real data), with Gaussian existential probabilities of mean
//!   0.5 / variance 0.5 by default (the paper's "high uncertainty"
//!   scenario), or mean 0.8 / variance 0.1 for the compression study.
//! * **T20I10D30KP40** — the IBM Quest synthetic dataset (30K rows, 40
//!   items), Gaussian mean 0.8 / variance 0.1 ("low uncertainty").
//!
//! Scaled-down row counts keep the full reproduction suite in laptop
//! territory; `Scale::Paper` uses the original sizes.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use utdb::gen::{MushroomConfig, QuestConfig};
use utdb::{assign_gaussian_probabilities, UncertainDatabase};

/// Dataset sizes for a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for smoke tests and Criterion micro-runs.
    Tiny,
    /// Default: minutes for the full suite on a laptop.
    Laptop,
    /// The paper's original row counts (8124 / 30 000).
    Paper,
}

impl Scale {
    /// Mushroom row count at this scale.
    pub fn mushroom_rows(self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Laptop => 1200,
            Scale::Paper => 8124,
        }
    }

    /// Quest row count at this scale.
    pub fn quest_rows(self) -> usize {
        match self {
            Scale::Tiny => 800,
            Scale::Laptop => 3000,
            Scale::Paper => 30_000,
        }
    }

    /// Parse a CLI token.
    pub fn parse(token: &str) -> Option<Scale> {
        match token {
            "tiny" => Some(Scale::Tiny),
            "laptop" => Some(Scale::Laptop),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Which evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The Mushroom-like dense categorical dataset.
    Mushroom,
    /// The Quest synthetic `T20I10D30KP40` dataset.
    Quest,
}

impl DatasetKind {
    /// Both datasets, paper order.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Mushroom, DatasetKind::Quest];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Mushroom => "Mushroom",
            DatasetKind::Quest => "T20I10D30KP40",
        }
    }

    /// The paper's default Gaussian `(mean, variance)` for the dataset.
    pub fn default_gaussian(self) -> (f64, f64) {
        match self {
            DatasetKind::Mushroom => (0.5, 0.5),
            DatasetKind::Quest => (0.8, 0.1),
        }
    }

    /// The paper's default *relative* minimum support for the dataset
    /// (the median of its `min_sup` sweeps).
    pub fn default_min_sup_rel(self) -> f64 {
        match self {
            DatasetKind::Mushroom => 0.4,
            DatasetKind::Quest => 0.3,
        }
    }

    /// The paper's `min_sup` sweep grid for the dataset.
    pub fn min_sup_grid(self) -> [f64; 5] {
        match self {
            DatasetKind::Mushroom => [0.2, 0.3, 0.4, 0.5, 0.6],
            DatasetKind::Quest => [0.1, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// Generate the *certain* base dataset at `scale`.
    pub fn certain(self, scale: Scale, seed: u64) -> UncertainDatabase {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            DatasetKind::Mushroom => MushroomConfig::new(scale.mushroom_rows()).generate(&mut rng),
            DatasetKind::Quest => QuestConfig::t20i10_p40(scale.quest_rows()).generate(&mut rng),
        }
    }

    /// Generate the uncertain dataset with the paper-default Gaussian.
    pub fn uncertain(self, scale: Scale, seed: u64) -> UncertainDatabase {
        let (mean, var) = self.default_gaussian();
        self.uncertain_with(scale, seed, mean, var)
    }

    /// Generate the uncertain dataset with an explicit Gaussian.
    pub fn uncertain_with(
        self,
        scale: Scale,
        seed: u64,
        mean: f64,
        variance: f64,
    ) -> UncertainDatabase {
        let base = self.certain(scale, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
        assign_gaussian_probabilities(&base, mean, variance, &mut rng)
    }
}

/// Turn a relative minimum support into an absolute count (at least 1).
pub fn abs_min_sup(db: &UncertainDatabase, rel: f64) -> usize {
    ((rel * db.len() as f64).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.mushroom_rows() < Scale::Laptop.mushroom_rows());
        assert!(Scale::Laptop.quest_rows() < Scale::Paper.quest_rows());
        assert_eq!(Scale::Paper.mushroom_rows(), 8124);
        assert_eq!(Scale::Paper.quest_rows(), 30_000);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("laptop"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn datasets_generate_deterministically() {
        for kind in DatasetKind::ALL {
            let a = kind.uncertain(Scale::Tiny, 7);
            let b = kind.uncertain(Scale::Tiny, 7);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.transactions().iter().zip(b.transactions()) {
                assert_eq!(x.items(), y.items());
                assert_eq!(x.probability(), y.probability());
            }
        }
    }

    #[test]
    fn gaussian_defaults_match_paper() {
        assert_eq!(DatasetKind::Mushroom.default_gaussian(), (0.5, 0.5));
        assert_eq!(DatasetKind::Quest.default_gaussian(), (0.8, 0.1));
    }

    #[test]
    fn abs_min_sup_rounds_and_floors() {
        let db = DatasetKind::Quest.uncertain(Scale::Tiny, 1);
        assert_eq!(abs_min_sup(&db, 0.5), db.len() / 2);
        assert_eq!(abs_min_sup(&db, 0.0), 1);
    }
}
