//! The two evaluation datasets of the paper, at configurable scale.
//!
//! * **Mushroom** — the dense categorical dataset (8124 rows, 119 items
//!   in the real data), with Gaussian existential probabilities of mean
//!   0.5 / variance 0.5 by default (the paper's "high uncertainty"
//!   scenario), or mean 0.8 / variance 0.1 for the compression study.
//! * **T20I10D30KP40** — the IBM Quest synthetic dataset (30K rows, 40
//!   items), Gaussian mean 0.8 / variance 0.1 ("low uncertainty").
//!
//! Scaled-down row counts keep the full reproduction suite in laptop
//! territory; `Scale::Paper` uses the original sizes.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use utdb::gen::{MushroomConfig, QuestConfig};
use utdb::{assign_gaussian_probabilities, assign_uniform_probabilities, UncertainDatabase};

/// Dataset sizes for a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minimal sizes for smoke tests and Criterion micro-runs.
    Tiny,
    /// Default: minutes for the full suite on a laptop.
    Laptop,
    /// The paper's original row counts (8124 / 30 000).
    Paper,
}

impl Scale {
    /// Mushroom row count at this scale.
    pub fn mushroom_rows(self) -> usize {
        match self {
            Scale::Tiny => 300,
            Scale::Laptop => 1200,
            Scale::Paper => 8124,
        }
    }

    /// Quest row count at this scale.
    pub fn quest_rows(self) -> usize {
        match self {
            Scale::Tiny => 800,
            Scale::Laptop => 3000,
            Scale::Paper => 30_000,
        }
    }

    /// Parse a CLI token.
    pub fn parse(token: &str) -> Option<Scale> {
        match token {
            "tiny" => Some(Scale::Tiny),
            "laptop" => Some(Scale::Laptop),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }
}

/// Which evaluation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// The Mushroom-like dense categorical dataset.
    Mushroom,
    /// The Quest synthetic `T20I10D30KP40` dataset.
    Quest,
}

impl DatasetKind {
    /// Both datasets, paper order.
    pub const ALL: [DatasetKind; 2] = [DatasetKind::Mushroom, DatasetKind::Quest];

    /// Display name used in figures.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Mushroom => "Mushroom",
            DatasetKind::Quest => "T20I10D30KP40",
        }
    }

    /// The paper's default Gaussian `(mean, variance)` for the dataset.
    pub fn default_gaussian(self) -> (f64, f64) {
        match self {
            DatasetKind::Mushroom => (0.5, 0.5),
            DatasetKind::Quest => (0.8, 0.1),
        }
    }

    /// The paper's default *relative* minimum support for the dataset
    /// (the median of its `min_sup` sweeps).
    pub fn default_min_sup_rel(self) -> f64 {
        match self {
            DatasetKind::Mushroom => 0.4,
            DatasetKind::Quest => 0.3,
        }
    }

    /// The paper's `min_sup` sweep grid for the dataset.
    pub fn min_sup_grid(self) -> [f64; 5] {
        match self {
            DatasetKind::Mushroom => [0.2, 0.3, 0.4, 0.5, 0.6],
            DatasetKind::Quest => [0.1, 0.2, 0.3, 0.4, 0.5],
        }
    }

    /// Generate the *certain* base dataset at `scale`.
    pub fn certain(self, scale: Scale, seed: u64) -> UncertainDatabase {
        let mut rng = SmallRng::seed_from_u64(seed);
        match self {
            DatasetKind::Mushroom => MushroomConfig::new(scale.mushroom_rows()).generate(&mut rng),
            DatasetKind::Quest => QuestConfig::t20i10_p40(scale.quest_rows()).generate(&mut rng),
        }
    }

    /// Generate the uncertain dataset with the paper-default Gaussian.
    pub fn uncertain(self, scale: Scale, seed: u64) -> UncertainDatabase {
        let (mean, var) = self.default_gaussian();
        self.uncertain_with(scale, seed, mean, var)
    }

    /// Generate the uncertain dataset with an explicit Gaussian.
    pub fn uncertain_with(
        self,
        scale: Scale,
        seed: u64,
        mean: f64,
        variance: f64,
    ) -> UncertainDatabase {
        let base = self.certain(scale, seed);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
        assign_gaussian_probabilities(&base, mean, variance, &mut rng)
    }
}

/// A dataset of the `bench-report` benchmark matrix: one of the paper's
/// evaluation pair, or the high-probability configuration that exercises
/// the incremental frequentness-DP downdate path.
///
/// The figure drivers keep using [`DatasetKind::ALL`] — the paper plots
/// only its own two datasets — while the kernel-benchmark matrix adds
/// [`BenchDataset::HighProb`] so CI observes `dp_incremental > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchDataset {
    /// One of the paper's evaluation datasets under its default Gaussian.
    Paper(DatasetKind),
    /// A sparse Quest-style base (60 items, average transaction length 4)
    /// with existential probabilities drawn uniformly from `[0.6, 0.9]`.
    ///
    /// Historically this cell existed because the old a-priori
    /// amplification guard only admitted downdates for `min_sup ≤ 3` at
    /// `p ≤ 0.9`; the measured-error downdate now fires on Gaussian
    /// data too (see [`BenchDataset::GaussianSmall`]), and `HighProb`
    /// stays as a second, structurally different (uniform-band) witness
    /// that the incremental path is alive.
    HighProb,
    /// The same sparse Quest-style base as [`BenchDataset::HighProb`]
    /// but under the paper's Mushroom protocol: existential
    /// probabilities drawn from a clamped Gaussian `N(0.5, 0.5)`.
    ///
    /// The paper's own two cells cannot witness the incremental DP at
    /// smoke scale for structural reasons — tiny-scale Mushroom has a
    /// two-root search tree with no children, and Quest's children sit
    /// so close to its large `min_sup` that the truncated head carries
    /// most of the row's mass and every downdate's *measured* error
    /// honestly exceeds the tolerance. This cell keeps the Gaussian
    /// probability model (clamped `p → 0.999` clusters included) while
    /// choosing a support level with a deep tree, so CI can assert the
    /// downdate fires on Gaussian-distributed data rather than only on
    /// the tuned uniform band.
    GaussianSmall,
}

/// Row count of the [`BenchDataset::HighProb`] dataset. Fixed across
/// [`Scale`]s so its relative `min_sup` of [`HIGHPROB_MIN_SUP_REL`]
/// always resolves to the same tiny absolute support of 3, keeping the
/// cell's behaviour comparable across scales.
pub const HIGHPROB_ROWS: usize = 300;

/// Relative minimum support of the `HighProb` benchmark cells:
/// `0.01 × 300 rows = 3` absolute.
pub const HIGHPROB_MIN_SUP_REL: f64 = 0.01;

impl BenchDataset {
    /// All benchmark-matrix datasets: the paper pair, then the two
    /// downdate-witness cells.
    pub const ALL: [BenchDataset; 4] = [
        BenchDataset::Paper(DatasetKind::Mushroom),
        BenchDataset::Paper(DatasetKind::Quest),
        BenchDataset::HighProb,
        BenchDataset::GaussianSmall,
    ];

    /// Display name used in `BENCH_*.json` entry keys.
    pub fn name(self) -> &'static str {
        match self {
            BenchDataset::Paper(kind) => kind.name(),
            BenchDataset::HighProb => "HighProbUniform",
            BenchDataset::GaussianSmall => "GaussianSmallSup",
        }
    }

    /// Default relative minimum support for benchmark cells.
    pub fn default_min_sup_rel(self) -> f64 {
        match self {
            BenchDataset::Paper(kind) => kind.default_min_sup_rel(),
            BenchDataset::HighProb | BenchDataset::GaussianSmall => HIGHPROB_MIN_SUP_REL,
        }
    }

    /// The relative supports the *full* (non-smoke) matrix sweeps.
    pub fn bench_min_sup_rels(self) -> Vec<f64> {
        match self {
            BenchDataset::Paper(kind) => {
                let top = *kind.min_sup_grid().last().expect("non-empty grid");
                vec![kind.default_min_sup_rel(), top]
            }
            // These cells exist to witness the downdate fast path; one
            // support level is enough.
            BenchDataset::HighProb | BenchDataset::GaussianSmall => vec![HIGHPROB_MIN_SUP_REL],
        }
    }

    /// The shared sparse Quest-style certain base of the two
    /// downdate-witness cells.
    fn small_quest_base(seed: u64) -> UncertainDatabase {
        let cfg = QuestConfig {
            num_transactions: HIGHPROB_ROWS,
            avg_transaction_len: 4.0,
            avg_pattern_len: 2.0,
            num_items: 60,
            num_patterns: 20,
            correlation: 0.5,
            corruption_mean: 0.5,
            corruption_dev: 0.1,
        };
        cfg.generate(&mut SmallRng::seed_from_u64(seed))
    }

    /// Generate the uncertain benchmark dataset.
    pub fn uncertain(self, scale: Scale, seed: u64) -> UncertainDatabase {
        match self {
            BenchDataset::Paper(kind) => kind.uncertain(scale, seed),
            BenchDataset::HighProb => {
                let base = Self::small_quest_base(seed);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
                assign_uniform_probabilities(&base, 0.6, 0.9, &mut rng)
            }
            BenchDataset::GaussianSmall => {
                let base = Self::small_quest_base(seed);
                let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
                assign_gaussian_probabilities(&base, 0.5, 0.5, &mut rng)
            }
        }
    }
}

/// Turn a relative minimum support into an absolute count (at least 1).
pub fn abs_min_sup(db: &UncertainDatabase, rel: f64) -> usize {
    ((rel * db.len() as f64).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Scale::Tiny.mushroom_rows() < Scale::Laptop.mushroom_rows());
        assert!(Scale::Laptop.quest_rows() < Scale::Paper.quest_rows());
        assert_eq!(Scale::Paper.mushroom_rows(), 8124);
        assert_eq!(Scale::Paper.quest_rows(), 30_000);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("laptop"), Some(Scale::Laptop));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn datasets_generate_deterministically() {
        for kind in DatasetKind::ALL {
            let a = kind.uncertain(Scale::Tiny, 7);
            let b = kind.uncertain(Scale::Tiny, 7);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.transactions().iter().zip(b.transactions()) {
                assert_eq!(x.items(), y.items());
                assert_eq!(x.probability(), y.probability());
            }
        }
    }

    #[test]
    fn gaussian_defaults_match_paper() {
        assert_eq!(DatasetKind::Mushroom.default_gaussian(), (0.5, 0.5));
        assert_eq!(DatasetKind::Quest.default_gaussian(), (0.8, 0.1));
    }

    #[test]
    fn high_prob_dataset_sits_in_the_downdate_safe_regime() {
        let db = BenchDataset::HighProb.uncertain(Scale::Laptop, 42);
        assert_eq!(db.len(), HIGHPROB_ROWS);
        // Probabilities stay in the uniform band.
        assert!(db
            .transactions()
            .iter()
            .all(|t| (0.6..=0.9).contains(&t.probability())));
        // The default relative support resolves to the amp-guard bound.
        assert_eq!(
            abs_min_sup(&db, BenchDataset::HighProb.default_min_sup_rel()),
            3
        );
        // Scale does not change the rows (the bound depends on it).
        assert_eq!(
            BenchDataset::HighProb.uncertain(Scale::Tiny, 42).len(),
            HIGHPROB_ROWS
        );
        // Deterministic under seed.
        let again = BenchDataset::HighProb.uncertain(Scale::Laptop, 42);
        for (a, b) in db.transactions().iter().zip(again.transactions()) {
            assert_eq!(a.items(), b.items());
            assert_eq!(a.probability(), b.probability());
        }
    }

    #[test]
    fn bench_dataset_names_are_unique() {
        let mut names: Vec<&str> = BenchDataset::ALL.iter().map(|d| d.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BenchDataset::ALL.len());
        assert_eq!(BenchDataset::HighProb.name(), "HighProbUniform");
    }

    #[test]
    fn abs_min_sup_rounds_and_floors() {
        let db = DatasetKind::Quest.uncertain(Scale::Tiny, 1);
        assert_eq!(abs_min_sup(&db, 0.5), db.len() / 2);
        assert_eq!(abs_min_sup(&db, 0.0), 1);
    }
}
