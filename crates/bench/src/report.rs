//! Result tables: aligned text for the terminal, CSV for the archive.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A simple column-aligned result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New empty table with a title and column names.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as aligned text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let render_row = |cells: &[String], out: &mut String| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}", w = w);
            }
            out.push('\n');
        };
        render_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            render_row(row, &mut out);
        }
        out
    }

    /// Render as CSV (RFC-4180-style quoting for cells containing commas
    /// or quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Write the CSV rendering to `dir/<slug>.csv`, creating `dir`.
    pub fn write_csv(&self, dir: &Path, slug: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{slug}.csv")), self.to_csv())
    }
}

/// Format a duration in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Column names for a per-phase time breakdown, one per
/// [`pfcim_core::Phase`] in canonical order, e.g. `mpfci_freq_dp_s` for
/// prefix `mpfci`.
pub fn phase_headers(prefix: &str) -> Vec<String> {
    pfcim_core::Phase::ALL
        .iter()
        .map(|p| format!("{prefix}_{}_s", p.name()))
        .collect()
}

/// Per-phase totals in seconds, matching [`phase_headers`] order.
pub fn phase_cells(timers: &pfcim_core::PhaseTimers) -> Vec<String> {
    pfcim_core::Phase::ALL
        .iter()
        .map(|p| secs(timers.total(*p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Fig X", &["min_sup", "time"]);
        t.push_row(vec!["0.2".into(), "1.5".into()]);
        t.push_row(vec!["0.3".into(), "0.7".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns() {
        let text = sample().to_text();
        assert!(text.contains("== Fig X =="));
        assert!(text.contains("min_sup"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn csv_rendering() {
        let csv = sample().to_csv();
        assert_eq!(csv.lines().next(), Some("min_sup,time"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    fn csv_file_round_trip() {
        let dir = std::env::temp_dir().join("pfcim_report_test");
        sample().write_csv(&dir, "fig_x").unwrap();
        let content = std::fs::read_to_string(dir.join("fig_x.csv")).unwrap();
        assert!(content.starts_with("min_sup,time"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "width")]
    fn row_width_is_enforced() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_row(vec!["only one".into()]);
    }

    #[test]
    fn phase_columns_align_with_timers() {
        use pfcim_core::{Phase, PhaseTimers};
        let headers = phase_headers("mpfci");
        assert_eq!(headers.len(), Phase::COUNT);
        assert_eq!(headers[0], "mpfci_freq_dp_s");
        let mut timers = PhaseTimers::default();
        timers.add(Phase::FcpSample, std::time::Duration::from_millis(1500));
        let cells = phase_cells(&timers);
        assert_eq!(cells.len(), headers.len());
        let idx = Phase::FcpSample.index();
        assert_eq!(cells[idx], "1.500");
        assert_eq!(cells[Phase::FreqDp.index()], "0.000");
    }
}
