//! Observability plumbing for the experiment drivers.
//!
//! [`Observe`] bundles the optional run-level sinks the `repro` binary
//! can enable — a [`JsonlSink`] (`--trace FILE.jsonl`), a
//! [`ProgressSink`] (`--progress`) and a [`HistogramSink`]
//! (`--metrics FILE.json`) — and mediates every mining run the
//! drivers perform. It also accumulates the [`MinerStats`] and
//! [`PhaseTimers`] totals of those runs, so a written trace can be
//! reconciled event-by-event against the printed aggregates
//! ([`Observe::finish`]).

use std::fs::File;
use std::io::{self, BufWriter};
use std::path::{Path, PathBuf};

use pfcim_core::trace::parse_jsonl;
use pfcim_core::{
    Algorithm, CountingSink, HistogramSink, JsonlSink, KernelStats, Miner, MinerConfig, MinerStats,
    MiningOutcome, PhaseTimers, ProgressSink, Tee,
};
use utdb::UncertainDatabase;

/// Optional per-run observers threaded through the experiment drivers,
/// plus the aggregate counters of every run they mediated.
#[derive(Default)]
pub struct Observe {
    trace: Option<(PathBuf, JsonlSink<BufWriter<File>>)>,
    progress: Option<ProgressSink>,
    metrics: Option<(PathBuf, HistogramSink)>,
    /// Counter totals over every mediated run.
    pub totals: MinerStats,
    /// Kernel-counter totals over every mediated run.
    pub kernel: KernelStats,
    /// Phase-timer totals over every mediated run.
    pub timers: PhaseTimers,
    /// Number of mining runs mediated.
    pub runs: u64,
}

impl Observe {
    /// No observers; runs are mediated (totals still accumulate) with
    /// zero callback overhead.
    pub fn none() -> Self {
        Self::default()
    }

    /// Stream a JSONL trace of every mediated run to `path`.
    pub fn with_trace(mut self, path: impl AsRef<Path>) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let sink = JsonlSink::create(&path)?;
        self.trace = Some((path, sink));
        Ok(self)
    }

    /// Print a throttled stderr heartbeat during mediated runs.
    pub fn with_progress(mut self) -> Self {
        self.progress = Some(ProgressSink::new());
        self
    }

    /// Accumulate every mediated run into a [`HistogramSink`] and write
    /// the registry snapshot (counters, latency/size histogram
    /// summaries, the DP decision audit) as one JSON object to `path`
    /// on [`Observe::finish`].
    pub fn with_metrics(mut self, path: impl AsRef<Path>) -> Self {
        self.metrics = Some((path.as_ref().to_path_buf(), HistogramSink::new()));
        self
    }

    /// True when a trace, progress or metrics observer is attached.
    pub fn is_active(&self) -> bool {
        self.trace.is_some() || self.progress.is_some() || self.metrics.is_some()
    }

    /// The composed sink over whatever observers are attached.
    /// `Option<S>` sinks forward when `Some` and discard when `None`, so
    /// one expression covers all attachment combinations — with nothing
    /// attached, `is_enabled()` is false and the miners skip callbacks.
    #[allow(clippy::type_complexity)]
    fn sink(
        &mut self,
    ) -> Tee<
        Option<&mut JsonlSink<BufWriter<File>>>,
        Tee<Option<&mut ProgressSink>, Option<&mut HistogramSink>>,
    > {
        Tee(
            self.trace.as_mut().map(|(_, sink)| sink),
            Tee(
                self.progress.as_mut(),
                self.metrics.as_mut().map(|(_, sink)| sink),
            ),
        )
    }

    /// Run the configured miner (DFS/BFS per `cfg.search`) under the
    /// attached observers.
    pub fn run(&mut self, db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
        let outcome = Miner::new(db)
            .config(cfg.clone())
            .sink(&mut self.sink())
            .run();
        self.absorb(&outcome);
        outcome
    }

    /// Run the Naive baseline under the attached observers.
    pub fn run_naive(&mut self, db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
        let outcome = Miner::new(db)
            .config(cfg.clone())
            .algorithm(Algorithm::Naive)
            .sink(&mut self.sink())
            .run();
        self.absorb(&outcome);
        outcome
    }

    fn absorb(&mut self, outcome: &MiningOutcome) {
        self.totals.absorb(&outcome.stats);
        self.kernel.absorb(&outcome.kernel);
        self.timers.absorb(&outcome.timers);
        self.runs += 1;
    }

    /// Flush the trace (if any) and reconcile it: parse the file back,
    /// aggregate its events through a [`CountingSink`], and compare
    /// against the live totals. Returns a human-readable summary, or an
    /// error describing the flush/parse/reconciliation failure.
    ///
    /// Consumes the observer — call once, after the last run.
    pub fn finish(mut self) -> Result<Option<String>, String> {
        let mut summaries = Vec::new();
        if let Some((path, sink)) = self.metrics.take() {
            let json = sink.snapshot().to_json();
            std::fs::write(&path, json + "\n")
                .map_err(|e| format!("writing metrics {}: {e}", path.display()))?;
            summaries.push(format!(
                "metrics {}: snapshot over {} runs written",
                path.display(),
                sink.runs()
            ));
        }
        let Some((path, sink)) = self.trace.take() else {
            return Ok(if summaries.is_empty() {
                None
            } else {
                Some(summaries.join("\n# "))
            });
        };
        // A mid-run write failure is latched inside the sink and
        // surfaces here; the event count says how much trace survived.
        let written = sink.lines_written();
        sink.finish().map_err(|e| {
            format!(
                "trace {} failed after {written} events: {e}",
                path.display()
            )
        })?;
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("re-reading {}: {e}", path.display()))?;
        let events = parse_jsonl(&text).map_err(|e| e.to_string())?;
        let mut counted = CountingSink::default();
        for event in &events {
            counted.absorb_event(event);
        }
        if counted.stats != self.totals {
            return Err(format!(
                "trace/stats mismatch:\n  trace  {}\n  stats  {}",
                counted.stats, self.totals
            ));
        }
        summaries.push(format!(
            "trace {}: {} events over {} runs reconcile with live stats [{}]",
            path.display(),
            events.len(),
            self.runs,
            self.totals
        ));
        Ok(Some(summaries.join("\n# ")))
    }
}
