//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENTS...] [--scale tiny|laptop|paper] [--budget SECONDS]
//!       [--out DIR] [--threads N] [--event-cache N] [--trace FILE.jsonl]
//!       [--progress] [--metrics FILE.json]
//!
//! EXPERIMENTS: all (default), fig5, fig6, fig7, fig8, fig9, fig10,
//!              fig11, fig12, table7, table8
//! ```
//!
//! `--threads N` sets the miner worker count for every cell (the
//! experiment drivers build their configs internally, so the flag is
//! forwarded through the `PFCIM_THREADS` environment variable). `0`
//! means auto-detect; `1` — the default here, for run-to-run
//! reproducibility — is the sequential miner. `--event-cache N` sets the
//! evaluator's bound-input cache capacity for every cell the same way,
//! via `PFCIM_EVENT_CACHE` (`0` disables memoization; capacity only
//! affects speed, never the mined results).
//!
//! Results are printed as aligned tables and archived as CSV under the
//! output directory (default `results/`). `--trace` streams every mining
//! event of every run to a JSONL file and, on exit, parses the file back
//! and reconciles its per-event aggregates against the live
//! [`MinerStats`](pfcim_core::MinerStats) totals printed at the end.
//! `--progress` prints a throttled heartbeat to stderr while mining.
//! `--metrics` accumulates every mediated run into one
//! [`HistogramSink`](pfcim_core::HistogramSink) and writes the registry
//! snapshot as a JSON object on exit.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use pfcim_bench::experiments::{self, DEFAULT_CELL_BUDGET};
use pfcim_bench::report::Table;
use pfcim_bench::{Observe, Scale};

struct Args {
    experiments: Vec<String>,
    scale: Scale,
    budget: Duration,
    out: PathBuf,
    trace: Option<PathBuf>,
    progress: bool,
    metrics: Option<PathBuf>,
}

const ALL_EXPERIMENTS: [&str; 10] = [
    "table7", "table8", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut scale = Scale::Laptop;
    let mut budget = DEFAULT_CELL_BUDGET;
    let mut out = PathBuf::from("results");
    let mut trace = None;
    let mut progress = false;
    let mut metrics = None;
    let mut threads: Option<usize> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?;
            }
            "--budget" => {
                let v = argv.next().ok_or("--budget needs a value")?;
                let s: u64 = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                budget = Duration::from_secs(s);
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--threads" => {
                let v = argv.next().ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                threads = Some(n);
            }
            "--event-cache" => {
                let v = argv.next().ok_or("--event-cache needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad cache capacity {v:?}"))?;
                // Same forwarding trick as --threads: the drivers build
                // configs internally, and MinerConfig::new reads this.
                std::env::set_var("PFCIM_EVENT_CACHE", n.to_string());
            }
            "--trace" => {
                trace = Some(PathBuf::from(argv.next().ok_or("--trace needs a value")?));
            }
            "--progress" => progress = true,
            "--metrics" => {
                metrics = Some(PathBuf::from(argv.next().ok_or("--metrics needs a value")?));
            }
            "--help" | "-h" => return Err(String::new()),
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            name if ALL_EXPERIMENTS.contains(&name) => experiments.push(name.to_owned()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if experiments.is_empty() {
        experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    // The experiment drivers construct their MinerConfigs internally
    // with the auto default, so the worker count travels through the
    // documented environment override. Without an explicit --threads
    // (or a pre-set PFCIM_THREADS), pin the sequential miner so the
    // regenerated tables stay run-to-run reproducible.
    match threads {
        Some(n) => std::env::set_var("PFCIM_THREADS", n.to_string()),
        None => {
            if std::env::var_os("PFCIM_THREADS").is_none() {
                std::env::set_var("PFCIM_THREADS", "1");
            }
        }
    }
    Ok(Args {
        experiments,
        scale,
        budget,
        out,
        trace,
        progress,
        metrics,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: repro [EXPERIMENTS...] [--scale tiny|laptop|paper] \
                 [--budget SECONDS] [--out DIR] [--threads N] [--event-cache N] \
                 [--trace FILE.jsonl] [--progress] [--metrics FILE.json]\n\
                 EXPERIMENTS: all {}",
                ALL_EXPERIMENTS.join(" ")
            );
            return ExitCode::from(2);
        }
    };

    let mut obs = Observe::none();
    if let Some(path) = &args.trace {
        obs = match obs.with_trace(path) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: cannot open trace file {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
    }
    if args.progress {
        obs = obs.with_progress();
    }
    if let Some(path) = &args.metrics {
        obs = obs.with_metrics(path);
    }

    println!(
        "# pfcim repro — scale={:?}, per-cell budget={}s, out={}",
        args.scale,
        args.budget.as_secs(),
        args.out.display()
    );

    for name in &args.experiments {
        let start = Instant::now();
        let tables: Vec<Table> = match name.as_str() {
            "table7" => vec![experiments::table7()],
            "table8" => vec![experiments::table8(args.scale)],
            "fig5" => experiments::fig5(args.scale, args.budget, &mut obs),
            "fig6" => experiments::fig6(args.scale, args.budget, &mut obs),
            "fig7" => experiments::fig7(args.scale, args.budget, &mut obs),
            "fig8" => experiments::fig8(args.scale, args.budget, &mut obs),
            "fig9" => experiments::fig9(args.scale, args.budget, &mut obs),
            "fig10" => experiments::fig10(args.scale, args.budget, &mut obs),
            "fig11" => experiments::fig11(args.scale, args.budget, &mut obs),
            "fig12" => experiments::fig12(args.scale, args.budget, &mut obs),
            _ => unreachable!("validated in parse_args"),
        };
        for (i, table) in tables.iter().enumerate() {
            println!("\n{}", table.to_text());
            let slug = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{}", (b'a' + i as u8) as char)
            };
            if let Err(e) = table.write_csv(&args.out, &slug) {
                eprintln!("warning: could not write {slug}.csv: {e}");
            }
        }
        println!("[{name} finished in {:.1}s]", start.elapsed().as_secs_f64());
    }

    if obs.runs > 0 {
        println!(
            "\n# aggregate over {} mining runs: {}",
            obs.runs, obs.totals
        );
        if !obs.timers.is_empty() {
            println!("# phases: {}", obs.timers);
        }
    }
    match obs.finish() {
        Ok(Some(summary)) => println!("# {summary}"),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
