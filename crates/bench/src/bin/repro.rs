//! `repro` — regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [EXPERIMENTS...] [--scale tiny|laptop|paper] [--budget SECONDS] [--out DIR]
//!
//! EXPERIMENTS: all (default), fig5, fig6, fig7, fig8, fig9, fig10,
//!              fig11, fig12, table7, table8
//! ```
//!
//! Results are printed as aligned tables and archived as CSV under the
//! output directory (default `results/`).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use pfcim_bench::experiments::{self, DEFAULT_CELL_BUDGET};
use pfcim_bench::report::Table;
use pfcim_bench::Scale;

struct Args {
    experiments: Vec<String>,
    scale: Scale,
    budget: Duration,
    out: PathBuf,
}

const ALL_EXPERIMENTS: [&str; 10] = [
    "table7", "table8", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
];

fn parse_args() -> Result<Args, String> {
    let mut experiments = Vec::new();
    let mut scale = Scale::Laptop;
    let mut budget = DEFAULT_CELL_BUDGET;
    let mut out = PathBuf::from("results");
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--scale" => {
                let v = argv.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?;
            }
            "--budget" => {
                let v = argv.next().ok_or("--budget needs a value")?;
                let s: u64 = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                budget = Duration::from_secs(s);
            }
            "--out" => {
                out = PathBuf::from(argv.next().ok_or("--out needs a value")?);
            }
            "--help" | "-h" => return Err(String::new()),
            "all" => experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string())),
            name if ALL_EXPERIMENTS.contains(&name) => experiments.push(name.to_owned()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if experiments.is_empty() {
        experiments.extend(ALL_EXPERIMENTS.iter().map(|s| s.to_string()));
    }
    Ok(Args {
        experiments,
        scale,
        budget,
        out,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: repro [EXPERIMENTS...] [--scale tiny|laptop|paper] \
                 [--budget SECONDS] [--out DIR]\nEXPERIMENTS: all {}",
                ALL_EXPERIMENTS.join(" ")
            );
            return ExitCode::from(2);
        }
    };

    println!(
        "# pfcim repro — scale={:?}, per-cell budget={}s, out={}",
        args.scale,
        args.budget.as_secs(),
        args.out.display()
    );

    for name in &args.experiments {
        let start = Instant::now();
        let tables: Vec<Table> = match name.as_str() {
            "table7" => vec![experiments::table7()],
            "table8" => vec![experiments::table8(args.scale)],
            "fig5" => experiments::fig5(args.scale, args.budget),
            "fig6" => experiments::fig6(args.scale, args.budget),
            "fig7" => experiments::fig7(args.scale, args.budget),
            "fig8" => experiments::fig8(args.scale, args.budget),
            "fig9" => experiments::fig9(args.scale, args.budget),
            "fig10" => experiments::fig10(args.scale, args.budget),
            "fig11" => experiments::fig11(args.scale, args.budget),
            "fig12" => experiments::fig12(args.scale, args.budget),
            _ => unreachable!("validated in parse_args"),
        };
        for (i, table) in tables.iter().enumerate() {
            println!("\n{}", table.to_text());
            let slug = if tables.len() == 1 {
                name.clone()
            } else {
                format!("{name}_{}", (b'a' + i as u8) as char)
            };
            if let Err(e) = table.write_csv(&args.out, &slug) {
                eprintln!("warning: could not write {slug}.csv: {e}");
            }
        }
        println!("[{name} finished in {:.1}s]", start.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
