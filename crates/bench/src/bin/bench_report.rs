//! `bench-report` — run the dataset × algorithm benchmark matrix and
//! emit a versioned `BENCH_<label>.json` report.
//!
//! ```text
//! bench-report [--label L] [--scale tiny|laptop|paper] [--smoke]
//!              [--budget SECONDS] [--threads N] [--event-cache N]
//!              [--out-dir DIR] [--baseline OLD.json]
//!              [--fail-on-regress PCT] [--no-telemetry-probe]
//! bench-report --compare OLD.json NEW.json [--fail-on-regress PCT]
//! bench-report --validate FILE.json
//! ```
//!
//! `--threads N` mines every cell with `N` miner workers (`0` =
//! available parallelism; default 1, the sequential miner) and stamps
//! the count into the report's schema-v2 `threads` field, so reports at
//! different worker counts can be compared for scaling. `--event-cache
//! N` sets the evaluator's bound-input cache capacity for every cell
//! (capacity only affects speed, never the mined results).
//!
//! Run mode also measures the live-telemetry overhead: the `HighProb`
//! MPFCI cell is re-mined three times bare and three times with a
//! [`Telemetry`] sampler + sink attached at the default sample
//! interval (interleaved, so load drift cancels; a failing pass is
//! retried once), and the median-vs-median slowdown lands in the
//! report's schema-v5 `telemetry` block. When the baseline median is
//! large enough to be trustworthy (≥ 50 ms), an overhead above 5%
//! fails the run. `--no-telemetry-probe` skips the probe entirely.
//!
//! The default mode mines every cell of
//! [`pfcim_bench::experiments::bench_cells`] under a
//! [`HistogramSink`], then writes one JSON report carrying throughput
//! (nodes/s), per-phase wall-clock totals, node-latency quantiles, the
//! pruning mix, result counts and peak memory (RSS high-water; plus
//! allocator counters when built with `--features track-alloc`, which
//! installs the `pfcim_core::memtrack::TrackingAllocator` globally).
//! With `--baseline`, the fresh report is compared against an archived
//! one and the process exits nonzero when any cell slowed down by more
//! than `--fail-on-regress` percent. `--compare` and `--validate` do
//! the same gating/schema-checking on existing files without re-running
//! the matrix — that is what `scripts/bench.sh` and the regression tests
//! use.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use pfcim_bench::benchreport::{self, BenchEntry, BenchReport, TelemetryOverhead, SCHEMA_VERSION};
use pfcim_bench::experiments::{bench_cells, BenchAlgo, BenchCell, DEFAULT_CELL_BUDGET};
use pfcim_bench::report::Table;
use pfcim_bench::{BenchDataset, Scale};
use pfcim_core::{HistogramSink, NullSink, Phase, SpanProfiler, Tee, Telemetry, TelemetryConfig};

#[cfg(feature = "track-alloc")]
#[global_allocator]
static ALLOC: pfcim_core::memtrack::TrackingAllocator =
    pfcim_core::memtrack::TrackingAllocator::system();

enum Mode {
    Run(RunArgs),
    Compare {
        baseline: PathBuf,
        current: PathBuf,
        fail_pct: f64,
    },
    Validate(PathBuf),
}

struct RunArgs {
    label: String,
    scale: Scale,
    smoke: bool,
    budget: Duration,
    threads: usize,
    event_cache: Option<usize>,
    out_dir: PathBuf,
    baseline: Option<PathBuf>,
    fail_pct: f64,
    telemetry_probe: bool,
}

const USAGE: &str = "usage: bench-report [--label L] [--scale tiny|laptop|paper] [--smoke]\n\
       \x20            [--budget SECONDS] [--threads N] [--event-cache N]\n\
       \x20            [--out-dir DIR] [--baseline OLD.json]\n\
       \x20            [--fail-on-regress PCT] [--no-telemetry-probe]\n\
       bench-report --compare OLD.json NEW.json [--fail-on-regress PCT]\n\
       bench-report --validate FILE.json";

fn parse_args() -> Result<Mode, String> {
    let mut label = "local".to_owned();
    let mut scale = None;
    let mut smoke = false;
    let mut budget = DEFAULT_CELL_BUDGET;
    let mut threads = 1usize;
    let mut event_cache = None;
    let mut telemetry_probe = true;
    let mut out_dir = PathBuf::from(".");
    let mut baseline = None;
    let mut fail_pct: Option<f64> = None;
    let mut compare = None;
    let mut validate = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| -> Result<String, String> {
            argv.next().ok_or(format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--label" => {
                label = value("--label")?;
                if label.is_empty()
                    || !label
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
                {
                    return Err(format!("bad label {label:?} (use [A-Za-z0-9._-])"));
                }
            }
            "--scale" => {
                let v = value("--scale")?;
                scale = Some(Scale::parse(&v).ok_or(format!("unknown scale {v:?}"))?);
            }
            "--smoke" => smoke = true,
            "--budget" => {
                let v = value("--budget")?;
                let s: u64 = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                budget = Duration::from_secs(s);
            }
            "--threads" => {
                let v = value("--threads")?;
                threads = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if threads == 0 {
                    // Resolve auto here so the report records the real
                    // worker count instead of a 0 placeholder.
                    threads = pfcim_core::par::available_parallelism();
                }
            }
            "--event-cache" => {
                let v = value("--event-cache")?;
                let n: usize = v.parse().map_err(|_| format!("bad cache capacity {v:?}"))?;
                event_cache = Some(n);
            }
            "--no-telemetry-probe" => telemetry_probe = false,
            "--out-dir" => out_dir = PathBuf::from(value("--out-dir")?),
            "--baseline" => baseline = Some(PathBuf::from(value("--baseline")?)),
            "--fail-on-regress" => {
                let v = value("--fail-on-regress")?;
                fail_pct = Some(v.parse().map_err(|_| format!("bad percentage {v:?}"))?);
            }
            "--compare" => {
                let old = PathBuf::from(value("--compare")?);
                let new = PathBuf::from(value("--compare")?);
                compare = Some((old, new));
            }
            "--validate" => validate = Some(PathBuf::from(value("--validate")?)),
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(path) = validate {
        return Ok(Mode::Validate(path));
    }
    if let Some((old, new)) = compare {
        return Ok(Mode::Compare {
            baseline: old,
            current: new,
            fail_pct: fail_pct.unwrap_or(20.0),
        });
    }
    Ok(Mode::Run(RunArgs {
        label,
        // Smoke runs default to the tiny datasets; full runs to laptop.
        scale: scale.unwrap_or(if smoke { Scale::Tiny } else { Scale::Laptop }),
        smoke,
        budget,
        threads,
        event_cache,
        out_dir,
        baseline,
        fail_pct: fail_pct.unwrap_or(20.0),
        telemetry_probe,
    }))
}

fn load_report(path: &PathBuf) -> Result<BenchReport, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Compare and report; true when the gate passes.
fn gate(baseline: &BenchReport, current: &BenchReport, fail_pct: f64) -> bool {
    let regressions = benchreport::compare(baseline, current, fail_pct);
    if regressions.is_empty() {
        println!(
            "regression gate: {} vs {} — no cell slower by more than {fail_pct}%",
            current.label, baseline.label
        );
        true
    } else {
        eprintln!(
            "regression gate FAILED ({} vs {}, threshold {fail_pct}%):",
            current.label, baseline.label
        );
        for r in &regressions {
            eprintln!("  {r}");
        }
        false
    }
}

/// Sampling rate of the per-cell span profiler: every 64th DFS node gets
/// a full span, which keeps the overhead well under the regression-gate
/// noise while still yielding a representative rollup.
const SPAN_SAMPLE_EVERY: u32 = 64;

/// Build the timing config for `cell` exactly as the matrix and the
/// telemetry-overhead probe both use it.
fn cell_config(
    cell: &BenchCell,
    db: &utdb::UncertainDatabase,
    budget: Duration,
    threads: usize,
    event_cache: Option<usize>,
) -> pfcim_core::MinerConfig {
    let min_sup = pfcim_bench::datasets::abs_min_sup(db, cell.min_sup_rel);
    let cfg = cell
        .algo
        .config(min_sup)
        .with_time_budget(budget)
        .with_threads(threads);
    match event_cache {
        Some(n) => cfg.with_event_cache_capacity(n),
        None => cfg,
    }
}

fn run_cell(
    cell: &BenchCell,
    db: &utdb::UncertainDatabase,
    budget: Duration,
    threads: usize,
    event_cache: Option<usize>,
) -> Result<BenchEntry, String> {
    // Rebase both memory high-water marks so the cell reports its own
    // peak (best-effort for RSS; see `benchreport::reset_peak_rss`).
    benchreport::reset_peak_rss();
    #[cfg(feature = "track-alloc")]
    let alloc_before = {
        pfcim_core::memtrack::reset_peak();
        pfcim_core::memtrack::stats()
    };

    let cfg = cell_config(cell, db, budget, threads, event_cache);
    let mut sink = Tee(
        HistogramSink::new(),
        SpanProfiler::new().with_sampling(SPAN_SAMPLE_EVERY),
    );
    let outcome = cell.algo.run(db, &cfg, &mut sink);
    let Tee(sink, profiler) = sink;

    // The decision audit must reconcile exactly with the kernel
    // counters: every DP row is either downdated or recomputed for a
    // recorded reason. A mismatch means an unaudited DP path.
    let audit = &outcome.audit;
    let kernel = &outcome.kernel;
    if audit.incremental != kernel.dp_incremental || audit.recomputed() != kernel.dp_recomputed {
        return Err(format!(
            "{}/{}: DP audit does not reconcile with kernel counters: \
             incremental {} vs {}, recomputed {} (refusals {}) vs {}",
            cell.dataset.name(),
            cell.algo.name(),
            audit.incremental,
            kernel.dp_incremental,
            audit.recomputed(),
            audit.refusals(),
            kernel.dp_recomputed,
        ));
    }

    #[cfg(feature = "track-alloc")]
    let (peak_alloc_bytes, allocations) = {
        let now = pfcim_core::memtrack::stats();
        (
            now.peak_bytes as u64,
            now.total_allocations - alloc_before.total_allocations,
        )
    };
    #[cfg(not(feature = "track-alloc"))]
    let (peak_alloc_bytes, allocations) = (0u64, 0u64);

    let elapsed_s = outcome.elapsed.as_secs_f64();
    let stats = &outcome.stats;
    Ok(BenchEntry {
        dataset: cell.dataset.name().to_owned(),
        algo: cell.algo.name().to_owned(),
        min_sup_rel: cell.min_sup_rel,
        elapsed_s,
        timed_out: outcome.timed_out,
        nodes: stats.nodes_visited,
        nodes_per_s: if elapsed_s > 0.0 {
            stats.nodes_visited as f64 / elapsed_s
        } else {
            0.0
        },
        results: outcome.results.len() as u64,
        phase_s: Phase::ALL
            .iter()
            .map(|p| (p.name().to_owned(), outcome.timers.total(*p).as_secs_f64()))
            .collect(),
        prune: [
            ("superset", stats.superset_pruned),
            ("subset", stats.subset_pruned),
            ("chernoff_hoeffding", stats.ch_pruned),
            ("infrequent", stats.freq_pruned),
            ("bound_rejected", stats.bound_rejected),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_owned(), v))
        .collect(),
        kernel: outcome
            .kernel
            .named()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        span_s: profiler
            .rollup()
            .into_iter()
            .map(|(name, (seconds, _count))| (name, seconds))
            .collect(),
        audit: audit
            .named()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
        node_latency: sink.node_latency().summary(),
        peak_rss_bytes: benchreport::peak_rss_bytes().unwrap_or(0),
        peak_alloc_bytes,
        allocations,
    })
}

/// Telemetry-overhead gate: the background sampler plus sink may not
/// cost more than this fraction of wall-clock on the probe cell.
const TELEMETRY_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Below this baseline median the probe cell finishes too fast for a
/// percentage comparison to mean anything (timer noise and thread
/// startup dominate), so the gate records the numbers without failing.
const TELEMETRY_NOISE_FLOOR_S: f64 = 0.05;

fn median3(mut xs: [f64; 3]) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[1]
}

/// One probe pass: three bare and three instrumented mines of `cell`,
/// *interleaved* (bare, instrumented, bare, …) so slow load drift on a
/// busy CI core biases both sides equally, compared median vs median.
fn probe_once(
    cell: &BenchCell,
    db: &utdb::UncertainDatabase,
    cfg: &pfcim_core::MinerConfig,
) -> (f64, f64) {
    let mut baseline = [0.0f64; 3];
    let mut instrumented = [0.0f64; 3];
    for i in 0..3 {
        let mut sink = NullSink;
        baseline[i] = cell.algo.run(db, cfg, &mut sink).elapsed.as_secs_f64();
        let telemetry = Telemetry::start();
        let mut sink = telemetry.sink();
        instrumented[i] = cell.algo.run(db, cfg, &mut sink).elapsed.as_secs_f64();
        telemetry.shutdown();
    }
    (median3(baseline), median3(instrumented))
}

/// Re-mine the probe cell (HighProb MPFCI, the same cell the smoke gate
/// watches) bare vs under a live [`Telemetry`] instance — background
/// sampler, flight recorder and sink all attached at the default sample
/// interval. A pass that blows the budget is retried once and the
/// better pass kept: a real overhead regression reproduces in every
/// pass, while a transient load spike on a shared CI core does not.
fn measure_telemetry_overhead(
    cells: &[BenchCell],
    args: &RunArgs,
) -> Result<Option<TelemetryOverhead>, String> {
    let Some(cell) = cells
        .iter()
        .find(|c| c.dataset == BenchDataset::HighProb && c.algo == BenchAlgo::Mpfci)
        .or_else(|| cells.iter().find(|c| c.algo == BenchAlgo::Mpfci))
    else {
        return Ok(None);
    };
    let db = cell.dataset.uncertain(args.scale, 42);
    let cfg = cell_config(cell, &db, args.budget, args.threads, args.event_cache);
    let mut best: Option<TelemetryOverhead> = None;
    for _attempt in 0..2 {
        let (baseline_s, telemetry_s) = probe_once(cell, &db, &cfg);
        let overhead = TelemetryOverhead {
            cell: format!("{}/{}", cell.dataset.name(), cell.algo.name()),
            sample_interval_ms: TelemetryConfig::default().sample_interval.as_millis() as u64,
            baseline_s,
            telemetry_s,
            overhead_pct: if baseline_s > 0.0 {
                (telemetry_s - baseline_s) / baseline_s * 100.0
            } else {
                0.0
            },
        };
        let within_budget = overhead.overhead_pct <= TELEMETRY_OVERHEAD_BUDGET_PCT;
        if best
            .as_ref()
            .is_none_or(|b| overhead.overhead_pct < b.overhead_pct)
        {
            best = Some(overhead);
        }
        if within_budget {
            break;
        }
    }
    let overhead = best.expect("at least one probe pass ran");
    if overhead.baseline_s >= TELEMETRY_NOISE_FLOOR_S
        && overhead.overhead_pct > TELEMETRY_OVERHEAD_BUDGET_PCT
    {
        return Err(format!(
            "telemetry overhead gate FAILED (budget {TELEMETRY_OVERHEAD_BUDGET_PCT}%): {overhead}"
        ));
    }
    println!("telemetry overhead probe — {overhead}");
    Ok(Some(overhead))
}

fn run_matrix(args: &RunArgs) -> Result<BenchReport, String> {
    let scale_name = match args.scale {
        Scale::Tiny => "tiny",
        Scale::Laptop => "laptop",
        Scale::Paper => "paper",
    };
    println!(
        "# bench-report — label={}, scale={scale_name}, smoke={}, per-cell budget={}s, \
         threads={}{}",
        args.label,
        args.smoke,
        args.budget.as_secs(),
        args.threads,
        if cfg!(feature = "track-alloc") {
            ", allocator tracking on"
        } else {
            ""
        },
    );
    let cells = bench_cells(args.smoke);
    let mut entries = Vec::with_capacity(cells.len());
    let mut table = Table::new(
        "bench matrix",
        &[
            "dataset", "algo", "min_sup", "time_s", "nodes/s", "results", "peak_rss",
        ],
    );
    for dataset in BenchDataset::ALL {
        let db = dataset.uncertain(args.scale, 42);
        for cell in cells.iter().filter(|c| c.dataset == dataset) {
            let entry = run_cell(cell, &db, args.budget, args.threads, args.event_cache)?;
            table.push_row(vec![
                entry.dataset.clone(),
                entry.algo.clone(),
                format!("{}", entry.min_sup_rel),
                if entry.timed_out {
                    ">budget".to_owned()
                } else {
                    format!("{:.3}", entry.elapsed_s)
                },
                format!("{:.0}", entry.nodes_per_s),
                entry.results.to_string(),
                format!("{}M", entry.peak_rss_bytes / (1 << 20)),
            ]);
            entries.push(entry);
        }
    }
    println!("\n{}", table.to_text());
    if args.smoke {
        // The smoke matrix keeps the incremental-DP downdate path
        // exercised in CI. With the measured-error downdate the fast
        // path must fire both on the tuned high-probability cell AND on
        // a Gaussian paper-style cell — zero on either means the fast
        // path silently died (the old a-priori amplification guard used
        // to refuse every Gaussian downdate; that regression must not
        // come back).
        for (dataset, label) in [
            (BenchDataset::HighProb.name(), "HighProb"),
            (BenchDataset::GaussianSmall.name(), "Gaussian"),
        ] {
            let cell = entries
                .iter()
                .find(|e| e.dataset == dataset && e.algo == "MPFCI")
                .ok_or_else(|| format!("smoke matrix is missing the {dataset} MPFCI cell"))?;
            let incremental = cell.audit.get("incremental").copied().unwrap_or(0);
            if incremental == 0 {
                return Err(format!(
                    "smoke: {label} ({dataset}) MPFCI cell recorded no incremental \
                     DP downdates (audit: {:?})",
                    cell.audit
                ));
            }
            println!(
                "smoke: {label} ({dataset}) MPFCI cell exercised the incremental DP \
                 ({incremental} downdates, {} refused)",
                ["err_tol", "row_validation", "degenerate"]
                    .iter()
                    .map(|k| cell.audit.get(*k).copied().unwrap_or(0))
                    .sum::<u64>(),
            );
        }
    }
    let telemetry = if args.telemetry_probe {
        measure_telemetry_overhead(&cells, args)?
    } else {
        None
    };
    Ok(BenchReport {
        version: SCHEMA_VERSION,
        label: args.label.clone(),
        scale: scale_name.to_owned(),
        threads: args.threads as u64,
        created_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_err(|e| e.to_string())?
            .as_secs(),
        telemetry,
        entries,
    })
}

fn main() -> ExitCode {
    let mode = match parse_args() {
        Ok(m) => m,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result: Result<bool, String> = match mode {
        Mode::Validate(path) => load_report(&path).map(|report| {
            println!(
                "{}: valid v{} report ({} entries, scale {})",
                path.display(),
                report.version,
                report.entries.len(),
                report.scale
            );
            true
        }),
        Mode::Compare {
            baseline,
            current,
            fail_pct,
        } => load_report(&baseline)
            .and_then(|base| load_report(&current).map(|cur| (base, cur)))
            .map(|(base, cur)| gate(&base, &cur, fail_pct)),
        Mode::Run(args) => run_matrix(&args).and_then(|report| {
            let path = args.out_dir.join(report.file_name());
            std::fs::create_dir_all(&args.out_dir)
                .and_then(|()| std::fs::write(&path, report.to_json()))
                .map_err(|e| format!("writing {}: {e}", path.display()))?;
            println!("report written to {}", path.display());
            match &args.baseline {
                Some(base) => Ok(gate(&load_report(base)?, &report, args.fail_pct)),
                None => Ok(true),
            }
        }),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
