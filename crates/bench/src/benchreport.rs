//! Versioned benchmark reports (`BENCH_<label>.json`): schema,
//! serialization, an in-tree JSON parser for validation, and the
//! regression comparator behind `bench-report --baseline/--compare`.
//!
//! A report captures one run of the dataset × algorithm matrix
//! ([`crate::experiments::bench_cells`]): per-cell wall-clock and
//! throughput, the per-phase time breakdown, node-latency quantiles from
//! a [`pfcim_core::HistogramSink`], the pruning mix, and peak-memory
//! numbers (RSS high-water from `/proc/self/status`, plus allocator
//! counters when built with the `track-alloc` feature). Reports are
//! plain JSON so they diff and archive well; [`BenchReport::from_json`]
//! re-parses and schema-checks them with no external dependencies, which
//! is what `scripts/ci.sh` runs against every emitted file.

use std::collections::BTreeMap;
use std::fmt;

use pfcim_core::HistogramSummary;

/// Schema version stamped into every report. Version 2 added the
/// top-level `threads` field (the miner worker count the matrix ran
/// with); version 3 added the per-entry `kernel` counter map (the
/// [`pfcim_core::KernelStats`] counters: incremental-vs-recomputed DP
/// rows, bound-cache hits/misses, bitmap words scanned); version 4 added
/// the per-entry `span_s` profiler rollup (total seconds per span kind
/// from a sampled [`pfcim_core::SpanProfiler`]) and the `audit` map (the
/// [`pfcim_core::DpAudit`] per-reason DP decision counters); version 5
/// added the optional top-level `telemetry` block ([`TelemetryOverhead`]:
/// the measured wall-clock cost of running the matrix's reference cell
/// with a live telemetry session attached, which `bench-report` gates at
/// ≤5 %). Version-1 through version-4 documents are still accepted by
/// [`BenchReport::from_json`]: v1 reads as `threads = 1` — everything
/// before the parallel miner was sequential — pre-v3 entries read with
/// an empty kernel map, pre-v4 entries read with empty span/audit maps,
/// and pre-v5 documents read with no telemetry block.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version [`BenchReport::from_json`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// Cells faster than this, or slowdowns smaller than this, never count
/// as regressions — sub-5ms timings are dominated by noise.
pub const NOISE_FLOOR_S: f64 = 0.005;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (validation only; the
// writer side is hand-formatted like the rest of the workspace).
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order is not preserved; keys sort).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: \uD8xx\uDCxx.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or(format!("bad \\u escape near byte {}", self.pos))?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xc0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or("truncated \\u escape")?;
        let s = std::str::from_utf8(slice).map_err(|_| "bad \\u escape")?;
        let code = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {s:?} at byte {start}"))
    }
}

// ---------------------------------------------------------------------
// Report schema
// ---------------------------------------------------------------------

/// One cell of the benchmark matrix: a (dataset, algorithm, min_sup)
/// triple and everything measured while mining it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Dataset display name ([`crate::DatasetKind::name`]).
    pub dataset: String,
    /// Algorithm display name ([`crate::experiments::BenchAlgo::name`]).
    pub algo: String,
    /// Relative minimum support of the cell.
    pub min_sup_rel: f64,
    /// Wall-clock seconds of the mining run.
    pub elapsed_s: f64,
    /// True when the run hit the per-cell time budget (timings of such
    /// cells are floors, and the comparator skips them).
    pub timed_out: bool,
    /// Enumeration nodes visited.
    pub nodes: u64,
    /// Throughput: `nodes / elapsed_s`.
    pub nodes_per_s: f64,
    /// Result itemsets emitted.
    pub results: u64,
    /// Per-phase wall-clock totals, keyed by [`pfcim_core::Phase::name`].
    pub phase_s: BTreeMap<String, f64>,
    /// Pruning mix: how many candidates each rule eliminated.
    pub prune: BTreeMap<String, u64>,
    /// Kernel counters ([`pfcim_core::KernelStats::named`]): incremental
    /// vs recomputed DP rows, bound-cache hits/misses, bitmap words
    /// scanned. Empty for pre-v3 reports, which predate the counters.
    pub kernel: BTreeMap<String, u64>,
    /// Profiler span rollup: total seconds per span kind (`run`, `node`,
    /// phase names, pool span kinds) from a sampled
    /// [`pfcim_core::SpanProfiler`] attached to the cell. Empty for
    /// pre-v4 reports, which predate the profiler.
    pub span_s: BTreeMap<String, f64>,
    /// DP decision-audit counters ([`pfcim_core::DpAudit::named`]): how
    /// every frequentness-DP row was produced (incremental downdate vs
    /// each rebuild reason). Empty for pre-v4 reports.
    pub audit: BTreeMap<String, u64>,
    /// Node-to-node latency distribution (seconds).
    pub node_latency: HistogramSummary,
    /// Peak RSS in bytes over the cell (`0` when `/proc` is unreadable;
    /// monotone across cells when the kernel rejects the per-cell reset).
    pub peak_rss_bytes: u64,
    /// Allocator high-water bytes over the cell (`0` without the
    /// `track-alloc` feature).
    pub peak_alloc_bytes: u64,
    /// Allocations performed during the cell (`0` without `track-alloc`).
    pub allocations: u64,
}

impl BenchEntry {
    /// Identity of the cell for cross-report matching.
    pub fn key(&self) -> String {
        format!(
            "{}/{}/min_sup={}",
            self.dataset, self.algo, self.min_sup_rel
        )
    }

    fn to_json(&self) -> String {
        let map_num = |m: &BTreeMap<String, f64>| {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        };
        let map_int = |m: &BTreeMap<String, u64>| {
            let body: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"dataset\":\"{}\",\"algo\":\"{}\",\"min_sup_rel\":{},\
             \"elapsed_s\":{},\"timed_out\":{},\"nodes\":{},\"nodes_per_s\":{},\
             \"results\":{},\"phase_s\":{},\"prune\":{},\"kernel\":{},\
             \"span_s\":{},\"audit\":{},\"node_latency\":{},\
             \"peak_rss_bytes\":{},\"peak_alloc_bytes\":{},\"allocations\":{}}}",
            self.dataset,
            self.algo,
            self.min_sup_rel,
            self.elapsed_s,
            self.timed_out,
            self.nodes,
            self.nodes_per_s,
            self.results,
            map_num(&self.phase_s),
            map_int(&self.prune),
            map_int(&self.kernel),
            map_num(&self.span_s),
            map_int(&self.audit),
            self.node_latency.to_json(),
            self.peak_rss_bytes,
            self.peak_alloc_bytes,
            self.allocations,
        )
    }
}

/// The measured cost of live telemetry (schema v5): the report's
/// reference cell mined twice — bare, then with a [`pfcim_core::
/// Telemetry`] session (sampler thread + attached sink) at the default
/// sample interval — both as a median of repeated runs.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOverhead {
    /// Identity of the measured cell ([`BenchEntry::key`] format).
    pub cell: String,
    /// Sampler interval the overhead was measured at (milliseconds).
    pub sample_interval_ms: u64,
    /// Median wall-clock seconds without telemetry.
    pub baseline_s: f64,
    /// Median wall-clock seconds with the telemetry session attached.
    pub telemetry_s: f64,
    /// Relative cost in percent: `(telemetry/baseline − 1) · 100`.
    pub overhead_pct: f64,
}

impl TelemetryOverhead {
    fn to_json(&self) -> String {
        format!(
            "{{\"cell\":\"{}\",\"sample_interval_ms\":{},\"baseline_s\":{},\
             \"telemetry_s\":{},\"overhead_pct\":{}}}",
            self.cell,
            self.sample_interval_ms,
            self.baseline_s,
            self.telemetry_s,
            self.overhead_pct,
        )
    }

    fn from_json(v: &JsonValue) -> Result<TelemetryOverhead, String> {
        Ok(TelemetryOverhead {
            cell: field_str(v, "cell")?,
            sample_interval_ms: field_u64(v, "sample_interval_ms")?,
            baseline_s: field_f64(v, "baseline_s")?,
            telemetry_s: field_f64(v, "telemetry_s")?,
            overhead_pct: field_f64(v, "overhead_pct")?,
        })
    }
}

impl fmt::Display for TelemetryOverhead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3}s -> {:.3}s ({:+.1}%) at {}ms sampling",
            self.cell,
            self.baseline_s,
            self.telemetry_s,
            self.overhead_pct,
            self.sample_interval_ms
        )
    }
}

/// A complete `BENCH_<label>.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub version: u64,
    /// Report label; the file name is `BENCH_<label>.json`.
    pub label: String,
    /// Dataset scale the matrix ran at (`tiny`/`laptop`/`paper`).
    pub scale: String,
    /// Miner worker count the matrix ran with (`1` = sequential; schema
    /// v1 reports, which predate the parallel miner, parse as `1`).
    pub threads: u64,
    /// Unix timestamp of report creation.
    pub created_unix: u64,
    /// Measured telemetry overhead (schema v5; `None` for older reports
    /// or runs that skipped the measurement).
    pub telemetry: Option<TelemetryOverhead>,
    /// One entry per matrix cell.
    pub entries: Vec<BenchEntry>,
}

impl BenchReport {
    /// The canonical file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.label)
    }

    /// Serialize: one top-level object, one line per entry (diff-friendly).
    pub fn to_json(&self) -> String {
        let telemetry = match &self.telemetry {
            Some(t) => format!("  \"telemetry\": {},\n", t.to_json()),
            None => String::new(),
        };
        let mut out = format!(
            "{{\n  \"version\": {},\n  \"label\": \"{}\",\n  \"scale\": \"{}\",\n  \
             \"threads\": {},\n  \"created_unix\": {},\n{telemetry}  \"entries\": [\n",
            self.version, self.label, self.scale, self.threads, self.created_unix
        );
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&e.to_json());
            out.push_str(if i + 1 < self.entries.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse and schema-validate a report. Every missing or mistyped
    /// field is an error naming its path; the version must lie in
    /// [`MIN_SCHEMA_VERSION`]..=[`SCHEMA_VERSION`] (v1 reports predate
    /// the `threads` field and parse as sequential runs), and a valid
    /// report covers at least two distinct algorithms (the regression
    /// gate is meaningless otherwise).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let root = JsonValue::parse(text)?;
        let version = field_u64(&root, "version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema version {version} \
                 (expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let report = BenchReport {
            version,
            label: field_str(&root, "label")?,
            scale: field_str(&root, "scale")?,
            threads: if version >= 2 {
                field_u64(&root, "threads")?
            } else {
                1
            },
            created_unix: field_u64(&root, "created_unix")?,
            telemetry: match root.get("telemetry") {
                // Optional at every version: pre-v5 documents simply
                // lack it, and v5 runs may skip the measurement.
                None | Some(JsonValue::Null) => None,
                Some(v) => {
                    Some(TelemetryOverhead::from_json(v).map_err(|e| format!("telemetry: {e}"))?)
                }
            },
            entries: root
                .get("entries")
                .and_then(JsonValue::as_arr)
                .ok_or("missing array field \"entries\"")?
                .iter()
                .enumerate()
                .map(|(i, v)| entry_from_json(v).map_err(|e| format!("entries[{i}]: {e}")))
                .collect::<Result<Vec<_>, _>>()?,
        };
        if report.entries.is_empty() {
            return Err("report has no entries".into());
        }
        let algos: std::collections::BTreeSet<&str> =
            report.entries.iter().map(|e| e.algo.as_str()).collect();
        if algos.len() < 2 {
            return Err(format!(
                "report covers only {:?}; at least two algorithms are required",
                algos
            ));
        }
        Ok(report)
    }
}

fn field_u64(v: &JsonValue, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(JsonValue::as_u64)
        .ok_or(format!("missing integer field {name:?}"))
}

fn field_f64(v: &JsonValue, name: &str) -> Result<f64, String> {
    v.get(name)
        .and_then(JsonValue::as_f64)
        .ok_or(format!("missing number field {name:?}"))
}

fn field_str(v: &JsonValue, name: &str) -> Result<String, String> {
    v.get(name)
        .and_then(JsonValue::as_str)
        .map(str::to_owned)
        .ok_or(format!("missing string field {name:?}"))
}

fn field_bool(v: &JsonValue, name: &str) -> Result<bool, String> {
    v.get(name)
        .and_then(JsonValue::as_bool)
        .ok_or(format!("missing bool field {name:?}"))
}

fn summary_from_json(v: &JsonValue) -> Result<HistogramSummary, String> {
    Ok(HistogramSummary {
        count: field_u64(v, "count")?,
        min: field_f64(v, "min")?,
        max: field_f64(v, "max")?,
        mean: field_f64(v, "mean")?,
        sum: field_f64(v, "sum")?,
        p50: field_f64(v, "p50")?,
        p90: field_f64(v, "p90")?,
        p95: field_f64(v, "p95")?,
        p99: field_f64(v, "p99")?,
    })
}

fn entry_from_json(v: &JsonValue) -> Result<BenchEntry, String> {
    let phase_s = v
        .get("phase_s")
        .and_then(JsonValue::as_obj)
        .ok_or("missing object field \"phase_s\"")?
        .iter()
        .map(|(k, x)| {
            x.as_f64()
                .map(|x| (k.clone(), x))
                .ok_or(format!("phase_s[{k:?}] is not a number"))
        })
        .collect::<Result<BTreeMap<_, _>, _>>()?;
    let prune = v
        .get("prune")
        .and_then(JsonValue::as_obj)
        .ok_or("missing object field \"prune\"")?
        .iter()
        .map(|(k, x)| {
            x.as_u64()
                .map(|x| (k.clone(), x))
                .ok_or(format!("prune[{k:?}] is not an integer"))
        })
        .collect::<Result<BTreeMap<_, _>, _>>()?;
    // Pre-v3 entries have no kernel map; read them as empty. The same
    // treatment applies to the v4 span/audit maps below.
    let opt_int_map = |name: &str| -> Result<BTreeMap<String, u64>, String> {
        match v.get(name) {
            None => Ok(BTreeMap::new()),
            Some(k) => k
                .as_obj()
                .ok_or(format!("field {name:?} is not an object"))?
                .iter()
                .map(|(k, x)| {
                    x.as_u64()
                        .map(|x| (k.clone(), x))
                        .ok_or(format!("{name}[{k:?}] is not an integer"))
                })
                .collect(),
        }
    };
    let opt_num_map = |name: &str| -> Result<BTreeMap<String, f64>, String> {
        match v.get(name) {
            None => Ok(BTreeMap::new()),
            Some(k) => k
                .as_obj()
                .ok_or(format!("field {name:?} is not an object"))?
                .iter()
                .map(|(k, x)| {
                    x.as_f64()
                        .map(|x| (k.clone(), x))
                        .ok_or(format!("{name}[{k:?}] is not a number"))
                })
                .collect(),
        }
    };
    let kernel = opt_int_map("kernel")?;
    let span_s = opt_num_map("span_s")?;
    let audit = opt_int_map("audit")?;
    Ok(BenchEntry {
        dataset: field_str(v, "dataset")?,
        algo: field_str(v, "algo")?,
        min_sup_rel: field_f64(v, "min_sup_rel")?,
        elapsed_s: field_f64(v, "elapsed_s")?,
        timed_out: field_bool(v, "timed_out")?,
        nodes: field_u64(v, "nodes")?,
        nodes_per_s: field_f64(v, "nodes_per_s")?,
        results: field_u64(v, "results")?,
        phase_s,
        prune,
        kernel,
        span_s,
        audit,
        node_latency: summary_from_json(
            v.get("node_latency")
                .ok_or("missing field \"node_latency\"")?,
        )
        .map_err(|e| format!("node_latency: {e}"))?,
        peak_rss_bytes: field_u64(v, "peak_rss_bytes")?,
        peak_alloc_bytes: field_u64(v, "peak_alloc_bytes")?,
        allocations: field_u64(v, "allocations")?,
    })
}

// ---------------------------------------------------------------------
// Regression comparison
// ---------------------------------------------------------------------

/// One cell whose wall-clock regressed past the threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Cell identity ([`BenchEntry::key`]).
    pub key: String,
    /// Baseline seconds.
    pub baseline_s: f64,
    /// Current seconds.
    pub current_s: f64,
    /// Slowdown in percent (`(current/baseline − 1) · 100`).
    pub pct: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.3}s -> {:.3}s (+{:.1}%)",
            self.key, self.baseline_s, self.current_s, self.pct
        )
    }
}

/// Compare `current` against `baseline`: every matching cell slower by
/// more than `threshold_pct` percent (and past the [`NOISE_FLOOR_S`]
/// absolute floor) is a regression. Timed-out cells on either side, and
/// cells present in only one report, are skipped.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    threshold_pct: f64,
) -> Vec<Regression> {
    let base: BTreeMap<String, &BenchEntry> =
        baseline.entries.iter().map(|e| (e.key(), e)).collect();
    let mut out = Vec::new();
    for cur in &current.entries {
        let Some(b) = base.get(&cur.key()) else {
            continue;
        };
        if b.timed_out || cur.timed_out {
            continue;
        }
        if cur.elapsed_s <= NOISE_FLOOR_S || cur.elapsed_s - b.elapsed_s <= NOISE_FLOOR_S {
            continue;
        }
        let pct = (cur.elapsed_s / b.elapsed_s - 1.0) * 100.0;
        if pct > threshold_pct {
            out.push(Regression {
                key: cur.key(),
                baseline_s: b.elapsed_s,
                current_s: cur.elapsed_s,
                pct,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Peak-RSS probing (Linux /proc; best-effort elsewhere)
// ---------------------------------------------------------------------

/// The process's peak resident set size in bytes (`VmHWM` from
/// `/proc/self/status`), or `None` where `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Ask the kernel to rebase the RSS high-water mark to the current RSS
/// (write `5` to `/proc/self/clear_refs`). Returns whether it worked;
/// when it doesn't, per-cell peaks degrade to a process-wide monotone
/// high-water, which the report schema documents.
pub fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(algo: &str, elapsed_s: f64) -> BenchEntry {
        let mut phase_s = BTreeMap::new();
        phase_s.insert("freq_dp".to_owned(), elapsed_s / 2.0);
        let mut prune = BTreeMap::new();
        prune.insert("superset".to_owned(), 12);
        let mut kernel = BTreeMap::new();
        kernel.insert("dp_incremental".to_owned(), 40);
        kernel.insert("dp_recomputed".to_owned(), 9);
        let mut span_s = BTreeMap::new();
        span_s.insert("node".to_owned(), elapsed_s / 3.0);
        span_s.insert("run".to_owned(), elapsed_s);
        let mut audit = BTreeMap::new();
        audit.insert("incremental".to_owned(), 40);
        audit.insert("fresh_root".to_owned(), 9);
        let mut latency = pfcim_core::Histogram::new();
        for v in [1e-6, 2e-6, 3e-6] {
            latency.record(v);
        }
        BenchEntry {
            dataset: "Mushroom".to_owned(),
            algo: algo.to_owned(),
            min_sup_rel: 0.4,
            elapsed_s,
            timed_out: false,
            nodes: 100,
            nodes_per_s: 100.0 / elapsed_s,
            results: 7,
            phase_s,
            prune,
            kernel,
            span_s,
            audit,
            node_latency: latency.summary(),
            peak_rss_bytes: 1 << 20,
            peak_alloc_bytes: 0,
            allocations: 0,
        }
    }

    fn sample_report(elapsed_s: f64) -> BenchReport {
        BenchReport {
            version: SCHEMA_VERSION,
            label: "test".to_owned(),
            scale: "tiny".to_owned(),
            threads: 4,
            created_unix: 1_754_000_000,
            telemetry: None,
            entries: vec![sample_entry("MPFCI", elapsed_s), sample_entry("Naive", 2.0)],
        }
    }

    #[test]
    fn parser_handles_all_value_kinds() {
        let v =
            JsonValue::parse(r#"{"a": [1, -2.5e3, true, false, null], "s": "x\n\"Aé"}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2500.0));
        assert_eq!(arr[2].as_bool(), Some(true));
        assert_eq!(arr[4], JsonValue::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"Aé"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{} x"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report(1.0);
        let parsed = BenchReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
        assert_eq!(parsed.file_name(), "BENCH_test.json");
    }

    #[test]
    fn telemetry_block_round_trips_and_stays_optional() {
        let mut report = sample_report(1.0);
        report.telemetry = Some(TelemetryOverhead {
            cell: "HighProb/MPFCI/min_sup=0.4".to_owned(),
            sample_interval_ms: 100,
            baseline_s: 0.5,
            telemetry_s: 0.51,
            overhead_pct: 2.0,
        });
        let json = report.to_json();
        assert!(json.contains("\"telemetry\": {\"cell\""));
        let parsed = BenchReport::from_json(&json).unwrap();
        assert_eq!(parsed, report);
        // A v4 document — no telemetry block — still parses, as None.
        let mut old = sample_report(1.0);
        old.version = 4;
        let parsed = BenchReport::from_json(&old.to_json()).unwrap();
        assert_eq!(parsed.telemetry, None);
        // A malformed block is an error, not silently None.
        let bad = json.replace("\"baseline_s\":0.5", "\"baseline_s\":\"slow\"");
        let err = BenchReport::from_json(&bad).unwrap_err();
        assert!(
            err.contains("telemetry") && err.contains("baseline_s"),
            "{err}"
        );
    }

    #[test]
    fn v1_reports_still_parse_as_sequential() {
        // A pre-parallelism document: version 1, no "threads" field.
        let mut report = sample_report(1.0);
        report.version = 1;
        report.threads = 7; // must be ignored by the v1 reader
        let v1_json = report.to_json().replace("\"threads\": 7,\n  ", "");
        assert!(!v1_json.contains("threads"));
        let parsed = BenchReport::from_json(&v1_json).unwrap();
        assert_eq!(parsed.version, 1);
        assert_eq!(parsed.threads, 1, "v1 reports are sequential by definition");
        assert_eq!(parsed.entries.len(), 2);
    }

    #[test]
    fn pre_v3_entries_parse_with_empty_kernel_map() {
        // A v2 document predating the kernel counters entirely.
        let mut report = sample_report(1.0);
        report.version = 2;
        let v2_json = report.to_json().replace(
            "\"kernel\":{\"dp_incremental\":40,\"dp_recomputed\":9},",
            "",
        );
        assert!(!v2_json.contains("kernel"));
        let parsed = BenchReport::from_json(&v2_json).unwrap();
        assert_eq!(parsed.version, 2);
        for e in &parsed.entries {
            assert!(e.kernel.is_empty());
        }
        // A malformed kernel map is still an error, not silently empty.
        let bad = sample_report(1.0)
            .to_json()
            .replace("\"dp_incremental\":40", "\"dp_incremental\":\"many\"");
        let err = BenchReport::from_json(&bad).unwrap_err();
        assert!(err.contains("dp_incremental"), "{err}");
    }

    #[test]
    fn pre_v4_entries_parse_with_empty_span_and_audit_maps() {
        // A v3 document predating the profiler rollup and audit map.
        let mut report = sample_report(1.0);
        report.version = 3;
        let v3_json = report
            .to_json()
            .replace("\"span_s\":{\"node\":0.3333333333333333,\"run\":1},", "")
            .replace("\"span_s\":{\"node\":0.6666666666666666,\"run\":2},", "")
            .replace("\"audit\":{\"fresh_root\":9,\"incremental\":40},", "");
        assert!(!v3_json.contains("span_s") && !v3_json.contains("audit"));
        let parsed = BenchReport::from_json(&v3_json).unwrap();
        assert_eq!(parsed.version, 3);
        for e in &parsed.entries {
            assert!(e.span_s.is_empty() && e.audit.is_empty());
        }
        // Malformed maps are still errors, not silently empty.
        let bad = sample_report(1.0)
            .to_json()
            .replace("\"fresh_root\":9", "\"fresh_root\":\"lots\"");
        let err = BenchReport::from_json(&bad).unwrap_err();
        assert!(err.contains("fresh_root"), "{err}");
    }

    #[test]
    fn validation_names_the_broken_field() {
        let mut report = sample_report(1.0);
        report.version = 99;
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("version 99"), "{err}");

        let good = sample_report(1.0).to_json();
        let err = BenchReport::from_json(&good.replace("\"nodes\"", "\"knots\"")).unwrap_err();
        assert!(err.contains("entries[0]") && err.contains("nodes"), "{err}");

        let err = BenchReport::from_json("{\"version\":1}").unwrap_err();
        assert!(err.contains("label"), "{err}");

        // v2 requires the threads field it introduced.
        let headless = sample_report(1.0)
            .to_json()
            .replace("\"threads\": 4,\n  ", "");
        let err = BenchReport::from_json(&headless).unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn single_algorithm_reports_are_rejected() {
        let mut report = sample_report(1.0);
        report.entries.truncate(1);
        let err = BenchReport::from_json(&report.to_json()).unwrap_err();
        assert!(err.contains("two algorithms"), "{err}");
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = sample_report(1.0);
        // 30% slower: regression at a 20% threshold, fine at 50%.
        let slow = sample_report(1.3);
        let regs = compare(&base, &slow, 20.0);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].key.contains("MPFCI"));
        assert!((regs[0].pct - 30.0).abs() < 1.0);
        assert!(compare(&base, &slow, 50.0).is_empty());
        // Faster is never a regression.
        assert!(compare(&base, &sample_report(0.5), 20.0).is_empty());
    }

    #[test]
    fn compare_respects_noise_floor_and_timeouts() {
        let mut base = sample_report(0.001);
        let mut fast_but_double = sample_report(0.002);
        // 100% slower but both under the noise floor: not a regression.
        assert!(compare(&base, &fast_but_double, 20.0).is_empty());
        // Timed-out cells never gate.
        base = sample_report(1.0);
        fast_but_double = sample_report(10.0);
        for e in &mut fast_but_double.entries {
            e.timed_out = true;
        }
        assert!(compare(&base, &fast_but_double, 20.0).is_empty());
    }

    #[test]
    fn peak_rss_is_readable_on_linux() {
        if cfg!(target_os = "linux") {
            let peak = peak_rss_bytes().expect("VmHWM readable");
            assert!(peak > 0);
        }
    }
}
