//! One driver per table and figure of the paper's evaluation.
//!
//! Each function returns [`Table`]s holding exactly the series the paper
//! plots; the `repro` binary prints them and archives CSVs. Cells whose
//! algorithm exceeds the per-cell time budget are reported as `>budget` —
//! mirroring the paper's "we did not report the running times over 1
//! hour" convention.
//!
//! Scaling note: at [`Scale::Laptop`] the datasets are smaller than the
//! paper's (see `DESIGN.md` §5), so absolute seconds differ; the *shapes*
//! — who wins, how curves respond to each parameter — are the
//! reproduction target (`EXPERIMENTS.md` records both).

use std::sync::Mutex;
use std::time::Duration;

use pfcim_core::{Algorithm, FcpMethod, Miner, MinerConfig, MiningOutcome, ShardableSink, Variant};
use utdb::UncertainDatabase;

use crate::datasets::{abs_min_sup, BenchDataset, DatasetKind, Scale};
use crate::observe::Observe;
use crate::report::{phase_cells, phase_headers, secs, Table};

/// Default per-cell wall-clock budget.
pub const DEFAULT_CELL_BUDGET: Duration = Duration::from_secs(30);

/// The ε (and δ) sweep grid of Figs. 8, 9 and 11.
pub const EPS_GRID: [f64; 6] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3];

/// The pfct sweep grid of Fig. 7.
pub const PFCT_GRID: [f64; 5] = [0.5, 0.6, 0.7, 0.8, 0.9];

fn cell(outcome: &MiningOutcome) -> String {
    if outcome.timed_out {
        ">budget".to_owned()
    } else {
        secs(outcome.elapsed)
    }
}

fn budgeted(cfg: MinerConfig, budget: Duration) -> MinerConfig {
    cfg.with_time_budget(budget)
}

/// Fig. 5 — Naive vs MPFCI running time w.r.t. `min_sup`, both datasets,
/// with the MPFCI run's per-phase time breakdown as extra columns.
pub fn fig5(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    DatasetKind::ALL
        .iter()
        .map(|&kind| {
            let db = kind.uncertain(scale, 42);
            let mut header: Vec<String> = ["min_sup", "Naive", "MPFCI", "PFIs_checked_by_naive"]
                .map(String::from)
                .to_vec();
            header.extend(phase_headers("mpfci"));
            let mut table = Table::new(
                &format!(
                    "Fig 5 ({}) — runtime [s] vs min_sup: Naive vs MPFCI",
                    kind.name()
                ),
                &header.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            for rel in kind.min_sup_grid() {
                let ms = abs_min_sup(&db, rel);
                // Paper-faithful checking: `ApproxFCP` is the only FCP
                // routine in the paper; the exact inclusion–exclusion
                // fallback of this library is disabled for timing runs.
                let cfg = budgeted(
                    MinerConfig::new(ms, 0.8).with_fcp_method(FcpMethod::ApproxOnly),
                    budget,
                );
                let naive = obs.run_naive(&db, &cfg);
                let mpfci = obs.run(&db, &cfg);
                let mut row = vec![
                    format!("{rel}"),
                    cell(&naive),
                    cell(&mpfci),
                    naive.stats.nodes_visited.to_string(),
                ];
                row.extend(phase_cells(&mpfci.timers));
                table.push_row(row);
            }
            table
        })
        .collect()
}

/// Fig. 6 — running time w.r.t. `min_sup` for the five pruning variants.
pub fn fig6(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    let variants = [
        Variant::Mpfci,
        Variant::NoCh,
        Variant::NoSuper,
        Variant::NoSub,
        Variant::NoBound,
    ];
    sweep_variants(
        scale,
        budget,
        &variants,
        "Fig 6",
        |kind| kind.min_sup_grid().to_vec(),
        |db, kind, value, _| {
            let _ = kind;
            MinerConfig::new(abs_min_sup(db, value), 0.8).with_fcp_method(FcpMethod::ApproxOnly)
        },
        "min_sup",
        obs,
    )
}

/// Fig. 7 — running time w.r.t. `pfct` for the five pruning variants.
pub fn fig7(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    let variants = [
        Variant::Mpfci,
        Variant::NoCh,
        Variant::NoSuper,
        Variant::NoSub,
        Variant::NoBound,
    ];
    sweep_variants(
        scale,
        budget,
        &variants,
        "Fig 7",
        |_| PFCT_GRID.to_vec(),
        |db, kind, value, _| {
            MinerConfig::new(abs_min_sup(db, kind.default_min_sup_rel()), value)
                .with_fcp_method(FcpMethod::ApproxOnly)
        },
        "pfct",
        obs,
    )
}

/// Fig. 8 — running time w.r.t. `ε`.
///
/// Run at a `min_sup` one notch below the dataset default so that the
/// sampling path actually carries work at laptop scale (the effect the
/// figure isolates: only `MPFCI-NoBound`, which cannot skip `ApproxFCP`,
/// responds to `ε`).
pub fn fig8(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    sweep_epsilon_delta(scale, budget, "Fig 8", "epsilon", true, obs)
}

/// Fig. 9 — running time w.r.t. `δ`; same setup as Fig. 8.
pub fn fig9(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    sweep_epsilon_delta(scale, budget, "Fig 9", "delta", false, obs)
}

fn sweep_epsilon_delta(
    scale: Scale,
    budget: Duration,
    fig: &str,
    param: &str,
    vary_epsilon: bool,
    obs: &mut Observe,
) -> Vec<Table> {
    let variants = [
        Variant::Mpfci,
        Variant::NoCh,
        Variant::NoSuper,
        Variant::NoSub,
        Variant::NoBound,
    ];
    sweep_variants(
        scale,
        budget,
        &variants,
        fig,
        |_| EPS_GRID.to_vec(),
        move |db, kind, value, _| {
            let rel = sampling_min_sup_rel(kind);
            let (eps, delta) = if vary_epsilon {
                (value, 0.1)
            } else {
                (0.1, value)
            };
            MinerConfig::new(abs_min_sup(db, rel), 0.8)
                .with_fcp_method(FcpMethod::ApproxOnly)
                .with_approximation(eps, delta)
        },
        param,
        obs,
    )
}

/// `min_sup` one notch below the default, so the checking phase has work.
fn sampling_min_sup_rel(kind: DatasetKind) -> f64 {
    match kind {
        DatasetKind::Mushroom => 0.25,
        DatasetKind::Quest => 0.3,
    }
}

/// Shared sweep driver: one table per dataset, one column per variant,
/// plus a per-phase time breakdown of the *first* (reference) variant.
#[allow(clippy::too_many_arguments)]
fn sweep_variants(
    scale: Scale,
    budget: Duration,
    variants: &[Variant],
    fig: &str,
    grid: impl Fn(DatasetKind) -> Vec<f64>,
    make_cfg: impl Fn(&UncertainDatabase, DatasetKind, f64, Variant) -> MinerConfig,
    param: &str,
    obs: &mut Observe,
) -> Vec<Table> {
    DatasetKind::ALL
        .iter()
        .map(|&kind| {
            let db = kind.uncertain(scale, 42);
            let mut header: Vec<String> = vec![param.to_owned()];
            header.extend(variants.iter().map(|v| v.name().to_owned()));
            header.extend(phase_headers(variants[0].name()));
            let mut table = Table::new(
                &format!("{fig} ({}) — runtime [s] vs {param}", kind.name()),
                &header.iter().map(String::as_str).collect::<Vec<_>>(),
            );
            for &value in &grid(kind) {
                let mut row = vec![format!("{value}")];
                let mut reference_timers = None;
                for &variant in variants {
                    let cfg = budgeted(
                        make_cfg(&db, kind, value, variant).with_variant(variant),
                        budget,
                    );
                    let outcome = obs.run(&db, &cfg);
                    row.push(cell(&outcome));
                    if reference_timers.is_none() {
                        reference_timers = Some(outcome.timers);
                    }
                }
                row.extend(phase_cells(
                    &reference_timers.expect("variants is non-empty"),
                ));
                table.push_row(row);
            }
            table
        })
        .collect()
}

/// Fig. 10 — compression quality: counts of FI, FCI, PFI and PFCI w.r.t.
/// `min_sup` under the two Gaussian configurations of the Mushroom-like
/// dataset.
pub fn fig10(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    let kind = DatasetKind::Mushroom;
    let certain = kind.certain(scale, 42);
    [(0.8, 0.1), (0.5, 0.5)]
        .iter()
        .map(|&(mean, var)| {
            let db = kind.uncertain_with(scale, 42, mean, var);
            let mut table = Table::new(
                &format!("Fig 10 (Mushroom, mean={mean}, var={var}) — itemset counts vs min_sup"),
                &["min_sup", "FI", "FCI", "PFI", "PFCI", "FCI/FI", "PFCI/PFI"],
            );
            let grid = [0.15, 0.2, 0.25, 0.3];
            let count_certain = |rel: f64| {
                let ms_exact = abs_min_sup(&certain, rel);
                let fi = fim::frequent_itemsets_fpgrowth(&certain, ms_exact).len();
                let fci = fim::frequent_closed_itemsets(&certain, ms_exact).len();
                (fi, fci)
            };
            let mut rows: Vec<(f64, [usize; 4])> = Vec::new();
            if obs.is_active() {
                // Observed runs must hit a single sink in a deterministic
                // order, so trace/progress mode runs the grid serially.
                for &rel in &grid {
                    let (fi, fci) = count_certain(rel);
                    let ms = abs_min_sup(&db, rel);
                    let pfi = pfim::probabilistic_frequent_itemsets(&db, ms, 0.8).len();
                    let pfci = obs
                        .run(&db, &budgeted(MinerConfig::new(ms, 0.8), budget))
                        .results
                        .len();
                    rows.push((rel, [fi, fci, pfi, pfci]));
                }
            } else {
                // Counting runs are timing-insensitive, so the four
                // support levels run concurrently on scoped threads.
                let shared: Mutex<Vec<(f64, [usize; 4])>> = Mutex::new(Vec::new());
                std::thread::scope(|scope| {
                    for &rel in &grid {
                        let count_certain = &count_certain;
                        let db = &db;
                        let shared = &shared;
                        scope.spawn(move || {
                            let (fi, fci) = count_certain(rel);
                            let ms = abs_min_sup(db, rel);
                            let pfi = pfim::probabilistic_frequent_itemsets(db, ms, 0.8).len();
                            let pfci = Miner::new(db)
                                .config(budgeted(MinerConfig::new(ms, 0.8), budget))
                                .run()
                                .results
                                .len();
                            shared
                                .lock()
                                .expect("fig10 row lock")
                                .push((rel, [fi, fci, pfi, pfci]));
                        });
                    }
                });
                rows = shared.into_inner().expect("fig10 rows lock");
            }
            rows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("grid is finite"));
            let ratio = |a: usize, b: usize| {
                if b == 0 {
                    "-".to_owned()
                } else {
                    format!("{:.3}", a as f64 / b as f64)
                }
            };
            for (rel, [fi, fci, pfi, pfci]) in rows {
                table.push_row(vec![
                    format!("{rel}"),
                    fi.to_string(),
                    fci.to_string(),
                    pfi.to_string(),
                    pfci.to_string(),
                    ratio(fci, fi),
                    ratio(pfci, pfi),
                ]);
            }
            table
        })
        .collect()
}

/// Fig. 11 — approximation quality: precision and recall of the sampled
/// result set against the exactly-decided truth, w.r.t. `ε` and `δ`.
///
/// Truth: the default MPFCI run, whose decisions at these parameters are
/// made entirely by exact bounds/inclusion–exclusion (asserted via the
/// `fcp_sampled == 0` counter). Measured: `MPFCI-NoBound` with pure
/// `ApproxFCP` checking, the configuration whose output actually depends
/// on `ε`/`δ`.
pub fn fig11(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    let kind = DatasetKind::Mushroom;
    let db = kind.uncertain(scale, 42);
    let ms = abs_min_sup(&db, sampling_min_sup_rel(kind));
    let truth_cfg = MinerConfig::new(ms, 0.8);
    let truth = obs.run(&db, &truth_cfg);
    assert!(
        truth.stats.fcp_sampled == 0,
        "ground truth must be decided without sampling"
    );
    let truth_set = truth.itemsets();

    let mut tables = Vec::new();
    for vary_epsilon in [true, false] {
        let param = if vary_epsilon { "epsilon" } else { "delta" };
        let mut table = Table::new(
            &format!("Fig 11 (Mushroom) — precision/recall vs {param}"),
            &[param, "precision", "recall", "returned", "true"],
        );
        for &value in &EPS_GRID {
            let (eps, delta) = if vary_epsilon {
                (value, 0.1)
            } else {
                (0.1, value)
            };
            let cfg = budgeted(
                MinerConfig::new(ms, 0.8)
                    .with_variant(Variant::NoBound)
                    .with_fcp_method(FcpMethod::ApproxOnly)
                    .with_approximation(eps, delta)
                    .with_seed(0x000f_1611 ^ (value * 1000.0) as u64),
                budget,
            );
            let outcome = obs.run(&db, &cfg);
            if outcome.timed_out {
                // An aborted run returns a partial set; precision/recall
                // against it would be meaningless.
                table.push_row(vec![
                    format!("{value}"),
                    ">budget".into(),
                    ">budget".into(),
                    "-".into(),
                    truth_set.len().to_string(),
                ]);
                continue;
            }
            let got = outcome.itemsets();
            let inter = got.iter().filter(|x| truth_set.contains(x)).count();
            let precision = if got.is_empty() {
                1.0
            } else {
                inter as f64 / got.len() as f64
            };
            let recall = if truth_set.is_empty() {
                1.0
            } else {
                inter as f64 / truth_set.len() as f64
            };
            table.push_row(vec![
                format!("{value}"),
                format!("{precision:.3}"),
                format!("{recall:.3}"),
                got.len().to_string(),
                truth_set.len().to_string(),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Fig. 12 — DFS vs BFS running time w.r.t. `min_sup`, both datasets.
pub fn fig12(scale: Scale, budget: Duration, obs: &mut Observe) -> Vec<Table> {
    sweep_variants(
        scale,
        budget,
        &[Variant::Mpfci, Variant::Bfs],
        "Fig 12",
        |kind| kind.min_sup_grid().to_vec(),
        |db, _, value, _| {
            MinerConfig::new(abs_min_sup(db, value), 0.8).with_fcp_method(FcpMethod::ApproxOnly)
        },
        "min_sup",
        obs,
    )
}

/// Algorithms covered by the `bench-report` benchmark matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchAlgo {
    /// The full MPFCI miner (DFS, all prunings).
    Mpfci,
    /// The breadth-first variant.
    Bfs,
    /// The Naive baseline.
    Naive,
}

impl BenchAlgo {
    /// All benchmarked algorithms, paper order.
    pub const ALL: [BenchAlgo; 3] = [BenchAlgo::Mpfci, BenchAlgo::Bfs, BenchAlgo::Naive];

    /// Display name used in `BENCH_*.json` entries.
    pub fn name(self) -> &'static str {
        match self {
            BenchAlgo::Mpfci => "MPFCI",
            BenchAlgo::Bfs => "MPFCI-BFS",
            BenchAlgo::Naive => "Naive",
        }
    }

    /// The paper-faithful timing configuration for this algorithm
    /// (`ApproxFCP`-only checking, like the figure drivers).
    pub fn config(self, min_sup: usize) -> MinerConfig {
        let cfg = MinerConfig::new(min_sup, 0.8).with_fcp_method(FcpMethod::ApproxOnly);
        match self {
            BenchAlgo::Bfs => cfg.with_variant(Variant::Bfs),
            BenchAlgo::Mpfci | BenchAlgo::Naive => cfg,
        }
    }

    /// Run the algorithm under `sink`.
    pub fn run<S: ShardableSink>(
        self,
        db: &UncertainDatabase,
        cfg: &MinerConfig,
        sink: &mut S,
    ) -> MiningOutcome {
        let miner = Miner::new(db).config(cfg.clone());
        match self {
            BenchAlgo::Naive => miner.algorithm(Algorithm::Naive).sink(sink).run(),
            BenchAlgo::Mpfci | BenchAlgo::Bfs => miner.sink(sink).run(),
        }
    }
}

/// One cell of the benchmark matrix.
#[derive(Debug, Clone, Copy)]
pub struct BenchCell {
    /// Dataset of the cell.
    pub dataset: BenchDataset,
    /// Algorithm of the cell.
    pub algo: BenchAlgo,
    /// Relative minimum support.
    pub min_sup_rel: f64,
}

/// The dataset × algorithm matrix `bench-report` runs: every algorithm
/// on the paper's two datasets — at the dataset's default `min_sup`
/// plus the top of its sweep grid — and on the high-probability dataset
/// whose uniform band makes incremental frequentness-DP downdates
/// trivially cheap to verify. `smoke` keeps only each dataset's default
/// support level (the search does real work there at every scale) — the
/// cheap configuration `scripts/ci.sh` gates on; the smoke gate asserts
/// `dp_incremental > 0` on both the Gaussian paper cells and `HighProb`.
pub fn bench_cells(smoke: bool) -> Vec<BenchCell> {
    let mut cells = Vec::new();
    for dataset in BenchDataset::ALL {
        let rels: Vec<f64> = if smoke {
            vec![dataset.default_min_sup_rel()]
        } else {
            dataset.bench_min_sup_rels()
        };
        for min_sup_rel in rels {
            for algo in BenchAlgo::ALL {
                cells.push(BenchCell {
                    dataset,
                    algo,
                    min_sup_rel,
                });
            }
        }
    }
    cells
}

/// Table VII — the feature matrix of the algorithm variants.
pub fn table7() -> Table {
    let mut table = Table::new(
        "Table VII — algorithm variants",
        &["Algorithm", "CH", "Super", "Sub", "PB", "Framework"],
    );
    for variant in Variant::ALL {
        let cfg = MinerConfig::new(2, 0.8).with_variant(variant);
        let tick = |b: bool| if b { "yes" } else { "no" }.to_owned();
        table.push_row(vec![
            variant.name().to_owned(),
            tick(cfg.pruning.chernoff_hoeffding),
            tick(cfg.pruning.superset),
            tick(cfg.pruning.subset),
            tick(cfg.pruning.probability_bounds),
            format!("{:?}", cfg.search).to_uppercase(),
        ]);
    }
    table
}

/// Table VIII — dataset characteristics.
pub fn table8(scale: Scale) -> Table {
    let mut table = Table::new(
        "Table VIII — dataset characteristics",
        &[
            "Dataset",
            "Transactions",
            "Items",
            "AvgLen",
            "MaxLen",
            "Gaussian(mean,var)",
        ],
    );
    for kind in DatasetKind::ALL {
        let db = kind.certain(scale, 42);
        let s = db.stats();
        let (mean, var) = kind.default_gaussian();
        table.push_row(vec![
            kind.name().to_owned(),
            s.num_transactions.to_string(),
            s.num_items.to_string(),
            format!("{:.1}", s.avg_length),
            s.max_length.to_string(),
            format!("({mean}, {var})"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const FAST: Duration = Duration::from_secs(5);

    #[test]
    fn table7_matches_paper_matrix() {
        let t = table7();
        let text = t.to_text();
        assert_eq!(t.len(), 6);
        assert!(text.contains("MPFCI-NoBound"));
        assert!(text.contains("BFS"));
    }

    #[test]
    fn table8_has_both_datasets() {
        let t = table8(Scale::Tiny);
        assert_eq!(t.len(), 2);
        assert!(t.to_text().contains("T20I10D30KP40"));
    }

    #[test]
    fn fig5_produces_full_grids() {
        let mut obs = Observe::none();
        let tables = fig5(Scale::Tiny, FAST, &mut obs);
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.len(), 5, "{}", t.title());
            assert!(t
                .to_csv()
                .lines()
                .next()
                .unwrap()
                .contains("mpfci_freq_dp_s"));
        }
        assert!(obs.runs > 0, "runs are mediated by the observer");
    }

    #[test]
    fn fig10_counts_are_ordered() {
        let tables = fig10(Scale::Tiny, FAST, &mut Observe::none());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            let csv = t.to_csv();
            for line in csv.lines().skip(1) {
                let cells: Vec<&str> = line.split(',').collect();
                let fi: usize = cells[1].parse().unwrap();
                let fci: usize = cells[2].parse().unwrap();
                let pfi: usize = cells[3].parse().unwrap();
                let pfci: usize = cells[4].parse().unwrap();
                assert!(fci <= fi, "closed compresses: {line}");
                assert!(pfci <= pfi, "probabilistic closed compresses: {line}");
            }
        }
    }

    #[test]
    fn bench_matrix_covers_datasets_and_algorithms() {
        let full = bench_cells(false);
        let smoke = bench_cells(true);
        assert!(smoke.len() < full.len());
        for cells in [&full, &smoke] {
            for dataset in BenchDataset::ALL {
                assert!(cells.iter().any(|c| c.dataset == dataset));
            }
            for algo in BenchAlgo::ALL {
                assert!(cells.iter().any(|c| c.algo == algo));
            }
        }
        // Cell identities are unique.
        let mut keys: Vec<String> = full
            .iter()
            .map(|c| format!("{}/{}/{}", c.dataset.name(), c.algo.name(), c.min_sup_rel))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), full.len());
    }

    #[test]
    fn bench_algo_configs_run_to_completion() {
        let db = DatasetKind::Mushroom.uncertain(Scale::Tiny, 42);
        let ms = abs_min_sup(&db, DatasetKind::Mushroom.default_min_sup_rel());
        for algo in BenchAlgo::ALL {
            let cfg = algo.config(ms).with_time_budget(FAST);
            let outcome = algo.run(&db, &cfg, &mut pfcim_core::NullSink);
            assert!(!outcome.timed_out, "{} timed out", algo.name());
            assert!(
                outcome.stats.nodes_visited > 0,
                "{} did no work",
                algo.name()
            );
        }
    }

    #[test]
    fn fig12_has_dfs_and_bfs_columns() {
        let tables = fig12(Scale::Tiny, FAST, &mut Observe::none());
        for t in &tables {
            assert!(t.to_csv().starts_with("min_sup,MPFCI,MPFCI-BFS"));
            assert!(t
                .to_csv()
                .lines()
                .next()
                .unwrap()
                .contains("MPFCI_fcp_sample_s"));
        }
    }
}
