//! Fig. 7 — runtime vs the probabilistic frequent closed threshold.

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (name, db, rel) in [
        ("mushroom", common::mushroom(), 0.35),
        ("quest", common::quest(), 0.3),
    ] {
        let mut group = c.benchmark_group(format!("fig7/{name}"));
        common::tune(&mut group);
        for pfct in [0.5, 0.7, 0.9] {
            let cfg = common::paper_cfg(&db, rel, pfct);
            group.bench_with_input(BenchmarkId::new("mpfci", pfct), &pfct, |b, _| {
                b.iter(|| black_box(mine(&db, &cfg)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
