//! Fig. 8 — runtime vs the relative tolerance ε. Only `MPFCI-NoBound`
//! (which must run `ApproxFCP` on every surviving itemset) responds.

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfcim_core::Variant;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = common::mushroom();
    let mut group = c.benchmark_group("fig8/mushroom");
    common::tune(&mut group);
    for eps in [0.15, 0.2, 0.3] {
        for variant in [Variant::Mpfci, Variant::NoBound] {
            let cfg = common::paper_cfg(&db, 0.3, 0.8)
                .with_variant(variant)
                .with_approximation(eps, 0.1);
            group.bench_with_input(BenchmarkId::new(variant.name(), eps), &eps, |b, _| {
                b.iter(|| black_box(mine(&db, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
