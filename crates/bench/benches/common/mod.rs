//! Shared helpers for the Criterion benches: tiny-scale datasets (built
//! once per process) and the paper's default miner configurations.
//!
//! Benches use `Scale::Tiny` so that the whole suite completes in
//! minutes; the `repro` binary runs the same drivers at full scale.
#![allow(dead_code)]

use std::time::Duration;

use pfcim_bench::datasets::{abs_min_sup, DatasetKind, Scale};
use pfcim_core::{Algorithm, FcpMethod, Miner, MinerConfig, MiningOutcome};
use utdb::UncertainDatabase;

pub fn mushroom() -> UncertainDatabase {
    DatasetKind::Mushroom.uncertain(Scale::Tiny, 42)
}

pub fn quest() -> UncertainDatabase {
    DatasetKind::Quest.uncertain(Scale::Tiny, 42)
}

/// Paper-default config (ApproxFCP checking) at a relative support.
pub fn paper_cfg(db: &UncertainDatabase, rel: f64, pfct: f64) -> MinerConfig {
    MinerConfig::new(abs_min_sup(db, rel), pfct).with_fcp_method(FcpMethod::ApproxOnly)
}

/// Run the configured miner (DFS/BFS per `cfg.search`) via the builder.
pub fn mine(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db).config(cfg.clone()).run()
}

/// Run the Naive baseline via the builder.
pub fn mine_naive(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
    Miner::new(db)
        .config(cfg.clone())
        .algorithm(Algorithm::Naive)
        .run()
}

/// Tighten a Criterion group so the whole suite stays fast.
pub fn tune(group: &mut criterion::BenchmarkGroup<'_, criterion::measurement::WallTime>) {
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
}
