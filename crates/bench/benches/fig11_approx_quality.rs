//! Fig. 11 — the cost of the `ApproxFCP` estimator as ε/δ tighten, on a
//! single representative event family (quality itself is asserted by the
//! test suites; this bench tracks the sampling cost curve).

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfcim_core::{approx_fcp, NonClosureEvents};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;
use utdb::Item;

fn bench(c: &mut Criterion) {
    let db = common::quest();
    // A two-item prefix with a real event family.
    let x = vec![Item(0), Item(1)];
    let tids = db.tidset_of_itemset(&x).into_bitmap();
    let min_sup = db.len() / 5;
    let ext = (0..db.num_items() as u32)
        .map(Item)
        .filter(|i| !x.contains(i));
    let events = NonClosureEvents::build(&db, &tids, ext, min_sup);
    let pr_f = pfim::frequent_probability(&db, &x, min_sup);

    let mut group = c.benchmark_group("fig11/approx_fcp");
    common::tune(&mut group);
    for eps in [0.1, 0.2, 0.3] {
        group.bench_with_input(BenchmarkId::new("epsilon", eps), &eps, |b, &eps| {
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| black_box(approx_fcp(&events, pr_f, eps, 0.1, &mut rng)))
        });
    }
    for delta in [0.05, 0.1, 0.3] {
        group.bench_with_input(BenchmarkId::new("delta", delta), &delta, |b, &delta| {
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| black_box(approx_fcp(&events, pr_f, 0.3, delta, &mut rng)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
