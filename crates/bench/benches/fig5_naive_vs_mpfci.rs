//! Fig. 5 — Naive (check every PFI with `ApproxFCP`) vs MPFCI, runtime
//! as `min_sup` varies on both datasets.

mod common;

use common::{mine, mine_naive};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (name, db) in [("mushroom", common::mushroom()), ("quest", common::quest())] {
        let mut group = c.benchmark_group(format!("fig5/{name}"));
        common::tune(&mut group);
        for rel in [0.3, 0.4] {
            let cfg = common::paper_cfg(&db, rel, 0.8);
            group.bench_with_input(BenchmarkId::new("naive", rel), &rel, |b, _| {
                b.iter(|| black_box(mine_naive(&db, &cfg)))
            });
            group.bench_with_input(BenchmarkId::new("mpfci", rel), &rel, |b, _| {
                b.iter(|| black_box(mine(&db, &cfg)))
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
