//! Micro-benchmarks of the substrate hot paths: the Poisson–binomial
//! tail DP, tid-set algebra, the conditional sampler, the Karp–Luby
//! estimator, and the exact miners.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prob::cond_sample::ConditionalBernoulliSampler;
use prob::poisson_binomial::{tail_at_least, tail_at_least_with};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use utdb::TidSet;

fn probs(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(3);
    (0..n).map(|_| 0.05 + 0.9 * rng.random::<f64>()).collect()
}

fn bench_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/poisson_binomial_tail");
    common::tune(&mut group);
    for n in [256usize, 1024, 4096] {
        let p = probs(n);
        let k = n / 3;
        group.bench_with_input(BenchmarkId::new("alloc", n), &n, |b, _| {
            b.iter(|| black_box(tail_at_least(&p, k)))
        });
        group.bench_with_input(BenchmarkId::new("scratch", n), &n, |b, _| {
            let mut scratch = vec![0.0; k + 1];
            b.iter(|| black_box(tail_at_least_with(&p, k, &mut scratch)))
        });
    }
    group.finish();
}

fn bench_tidset(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/tidset");
    common::tune(&mut group);
    let n = 30_000;
    let mut rng = SmallRng::seed_from_u64(4);
    let a = TidSet::from_tids(n, (0..n).filter(|_| rng.random::<f64>() < 0.4));
    let b_set = TidSet::from_tids(n, (0..n).filter(|_| rng.random::<f64>() < 0.4));
    group.bench_function("intersection_count", |b| {
        b.iter(|| black_box(a.intersection_count(&b_set)))
    });
    group.bench_function("is_subset", |b| b.iter(|| black_box(a.is_subset(&b_set))));
    group.bench_function("intersection_alloc", |b| {
        b.iter(|| black_box(a.intersection(&b_set)))
    });
    group.bench_function("iterate", |b| b.iter(|| black_box(a.iter().sum::<usize>())));
    group.finish();
}

fn bench_cond_sampler(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/conditional_sampler");
    common::tune(&mut group);
    let p = probs(512);
    // Likely event -> rejection strategy; rare event -> suffix DP.
    for (label, k) in [("rejection", 150usize), ("suffix_dp", 350)] {
        let sampler = ConditionalBernoulliSampler::new(p.clone(), k);
        group.bench_function(label, |b| {
            let mut rng = SmallRng::seed_from_u64(5);
            let mut out = Vec::new();
            b.iter(|| {
                sampler.sample_into(&mut rng, &mut out);
                black_box(out.len())
            })
        });
    }
    group.finish();
}

fn bench_exact_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/exact_miners");
    common::tune(&mut group);
    let db = pfcim_bench::datasets::DatasetKind::Mushroom
        .certain(pfcim_bench::datasets::Scale::Tiny, 42);
    let ms = db.len() / 4;
    group.bench_function("fpgrowth", |b| {
        b.iter(|| black_box(fim::frequent_itemsets_fpgrowth(&db, ms)))
    });
    group.bench_function("eclat", |b| {
        b.iter(|| black_box(fim::frequent_itemsets_eclat(&db, ms)))
    });
    group.bench_function("closed", |b| {
        b.iter(|| black_box(fim::frequent_closed_itemsets(&db, ms)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_dp,
    bench_tidset,
    bench_cond_sampler,
    bench_exact_miners
);
criterion_main!(benches);
