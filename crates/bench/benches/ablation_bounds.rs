//! Ablation of the checking phase design choices DESIGN.md calls out:
//! how much do (a) the cheap S1/max-singleton bounds, (b) the pairwise
//! de Caen/Kwerel refinement, and (c) the exact inclusion–exclusion
//! fallback save relative to raw sampling?

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfcim_core::{FcpMethod, MinerConfig, Variant};
use std::hint::black_box;

fn bench_checking_strategies(c: &mut Criterion) {
    let db = common::mushroom();
    let rel = 0.3;
    let mut group = c.benchmark_group("ablation/checking");
    common::tune(&mut group);
    let configs: [(&str, MinerConfig); 4] = [
        (
            "bounds+exact_auto",
            common::paper_cfg(&db, rel, 0.8).with_fcp_method(FcpMethod::Auto { exact_cap: 8 }),
        ),
        (
            "bounds+sampling",
            common::paper_cfg(&db, rel, 0.8).with_fcp_method(FcpMethod::ApproxOnly),
        ),
        (
            "nobounds+exact_auto",
            common::paper_cfg(&db, rel, 0.8)
                .with_variant(Variant::NoBound)
                .with_fcp_method(FcpMethod::Auto { exact_cap: 8 }),
        ),
        (
            "nobounds+sampling",
            common::paper_cfg(&db, rel, 0.8)
                .with_variant(Variant::NoBound)
                .with_fcp_method(FcpMethod::ApproxOnly)
                .with_approximation(0.3, 0.1),
        ),
    ];
    for (label, cfg) in configs {
        group.bench_function(label, |b| b.iter(|| black_box(mine(&db, &cfg))));
    }
    group.finish();
}

fn bench_pairwise_budget(c: &mut Criterion) {
    // The max_pairwise_events knob: more events in the O(m²) bound
    // computation buys tighter bounds at quadratic cost.
    let db = common::quest();
    let rel = 0.3;
    let mut group = c.benchmark_group("ablation/pairwise_budget");
    common::tune(&mut group);
    for cap in [4usize, 16, 48] {
        let mut cfg = common::paper_cfg(&db, rel, 0.8);
        cfg.max_pairwise_events = cap;
        group.bench_with_input(BenchmarkId::new("cap", cap), &cap, |b, _| {
            b.iter(|| black_box(mine(&db, &cfg)))
        });
    }
    group.finish();
}

fn bench_estimators(c: &mut Criterion) {
    // Head-to-head of the three FCP estimators on one representative
    // event family: fixed-N Karp–Luby (the paper's ApproxFCP), the
    // adaptive stopping-rule variant, and the naive world sampler at the
    // same sample budget.
    use pfcim_core::{approx_fcp, approx_fcp_adaptive, NonClosureEvents};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use utdb::Item;

    let db = common::quest();
    let x = vec![Item(0), Item(1)];
    let tids = db.tidset_of_itemset(&x).into_bitmap();
    let min_sup = db.len() / 5;
    let ext = (0..db.num_items() as u32)
        .map(Item)
        .filter(|i| !x.contains(i));
    let events = NonClosureEvents::build(&db, &tids, ext, min_sup);
    let pr_f = pfim::frequent_probability(&db, &x, min_sup);

    let mut group = c.benchmark_group("ablation/estimators");
    common::tune(&mut group);
    group.bench_function("approx_fcp_fixed_n", |b| {
        let mut rng = SmallRng::seed_from_u64(11);
        b.iter(|| black_box(approx_fcp(&events, pr_f, 0.2, 0.1, &mut rng)))
    });
    group.bench_function("approx_fcp_adaptive", |b| {
        let mut rng = SmallRng::seed_from_u64(11);
        b.iter(|| black_box(approx_fcp_adaptive(&events, pr_f, 0.2, 0.1, &mut rng)))
    });
    group.bench_function("naive_world_sampling", |b| {
        let mut rng = SmallRng::seed_from_u64(11);
        b.iter(|| black_box(events.naive_sampling_fcp(10_000, &mut rng)))
    });
    group.finish();
}

fn bench_tail_approximations(c: &mut Criterion) {
    // The exact DP vs the O(n) analytic approximations of the frequent
    // probability (the acceleration direction of the cited related work).
    use prob::poisson_binomial::tail_at_least;
    use prob::{tail_normal, tail_poisson, tail_refined_normal};
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};

    let mut rng = SmallRng::seed_from_u64(2);
    let probs: Vec<f64> = (0..2000).map(|_| 0.1 + 0.8 * rng.random::<f64>()).collect();
    let k = 700;
    let mut group = c.benchmark_group("ablation/tail_methods");
    common::tune(&mut group);
    group.bench_function("exact_dp", |b| {
        b.iter(|| black_box(tail_at_least(&probs, k)))
    });
    group.bench_function("normal", |b| b.iter(|| black_box(tail_normal(&probs, k))));
    group.bench_function("refined_normal", |b| {
        b.iter(|| black_box(tail_refined_normal(&probs, k)))
    });
    group.bench_function("poisson", |b| b.iter(|| black_box(tail_poisson(&probs, k))));
    group.finish();
}

fn report_time_per_pruning(_c: &mut Criterion) {
    // Not a timing loop: one full-ablation pass that prices each pruning
    // rule as (extra elapsed time without it) / (times it fired in the
    // baseline run), plus the baseline's per-phase breakdown. Skipped
    // when Criterion is only enumerating benches.
    if std::env::args().any(|a| a == "--list") {
        return;
    }
    let db = common::mushroom();
    let rel = 0.3;
    let baseline = mine(&db, &common::paper_cfg(&db, rel, 0.8));
    println!("\nablation/time_per_pruning (mushroom, rel_sup={rel})");
    println!(
        "  {:<8} elapsed={:>9.3?}  phases: {}",
        "MPFCI", baseline.elapsed, baseline.timers
    );
    let ablations: [(Variant, u64); 4] = [
        (Variant::NoCh, baseline.stats.ch_pruned),
        (Variant::NoSuper, baseline.stats.superset_pruned),
        (Variant::NoSub, baseline.stats.subset_pruned),
        (
            Variant::NoBound,
            baseline.stats.bound_rejected + baseline.stats.bound_decided,
        ),
    ];
    for (variant, firings) in ablations {
        let cfg = common::paper_cfg(&db, rel, 0.8).with_variant(variant);
        let outcome = mine(&db, &cfg);
        let delta = outcome.elapsed.as_secs_f64() - baseline.elapsed.as_secs_f64();
        let per_firing = if firings > 0 {
            format!("{:.1}us/firing", delta * 1e6 / firings as f64)
        } else {
            "n/a (never fired)".to_owned()
        };
        println!(
            "  {:<14} elapsed={:>9.3?}  delta={:>+8.3}s over {:>6} firings -> {}",
            variant.name(),
            outcome.elapsed,
            delta,
            firings,
            per_firing
        );
    }
}

criterion_group!(
    benches,
    bench_checking_strategies,
    bench_pairwise_budget,
    bench_estimators,
    bench_tail_approximations,
    report_time_per_pruning
);
criterion_main!(benches);
