//! Fig. 10 — the four miners behind the compression study: FI (FP-growth)
//! and FCI (closed) on exact data, PFI and PFCI on uncertain data.

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, Criterion};
use pfcim_bench::datasets::{abs_min_sup, DatasetKind, Scale};
use pfcim_core::MinerConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let certain = DatasetKind::Mushroom.certain(Scale::Tiny, 42);
    let db = DatasetKind::Mushroom.uncertain_with(Scale::Tiny, 42, 0.8, 0.1);
    let rel = 0.25;
    let ms_exact = abs_min_sup(&certain, rel);
    let ms = abs_min_sup(&db, rel);

    let mut group = c.benchmark_group("fig10/mushroom");
    common::tune(&mut group);
    group.bench_function("FI_fpgrowth", |b| {
        b.iter(|| black_box(fim::frequent_itemsets_fpgrowth(&certain, ms_exact)))
    });
    group.bench_function("FCI_closed", |b| {
        b.iter(|| black_box(fim::frequent_closed_itemsets(&certain, ms_exact)))
    });
    group.bench_function("PFI_todis", |b| {
        b.iter(|| black_box(pfim::probabilistic_frequent_itemsets(&db, ms, 0.8)))
    });
    group.bench_function("PFCI_mpfci", |b| {
        b.iter(|| black_box(mine(&db, &MinerConfig::new(ms, 0.8))))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
