//! Fig. 12 — depth-first vs breadth-first enumeration frameworks.

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfcim_core::Variant;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for (name, db) in [("mushroom", common::mushroom()), ("quest", common::quest())] {
        let mut group = c.benchmark_group(format!("fig12/{name}"));
        common::tune(&mut group);
        for rel in [0.25, 0.35] {
            for variant in [Variant::Mpfci, Variant::Bfs] {
                let cfg = common::paper_cfg(&db, rel, 0.8).with_variant(variant);
                group.bench_with_input(BenchmarkId::new(variant.name(), rel), &rel, |b, _| {
                    b.iter(|| black_box(mine(&db, &cfg)))
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
