//! Micro-benchmarks of the bitmap/DP kernel layer: word-level
//! [`TidBitmap`] intersection and the incremental-vs-full frequentness
//! DP, at tid universes of 1k, 10k and 100k transactions.
//!
//! The DP threshold is held at a fixed small `k`: the full rebuild is
//! `O(N·k)` while the downdate is `O(drops·k)`, so the gap these benches
//! measure is the `N / drops` factor the DFS miner exploits on child
//! nodes that drop only a handful of transactions.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prob::TailDp;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use utdb::TidBitmap;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Frequentness threshold for the DP benches (absolute `min_sup`).
const K: usize = 64;

/// Transactions a child node drops from its parent's tid-set.
const DROPS: usize = 8;

fn random_bitmap(n: usize, density: f64, seed: u64) -> TidBitmap {
    let mut rng = SmallRng::seed_from_u64(seed);
    TidBitmap::from_tids(n, (0..n).filter(|_| rng.random::<f64>() < density))
}

fn probs(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(9);
    (0..n).map(|_| 0.05 + 0.9 * rng.random::<f64>()).collect()
}

/// Gaussian(0.5, 0.5)-style existence probabilities clamped to [0, 1],
/// matching the paper's synthetic uncertainty model (Irwin–Hall sum of
/// uniforms approximates the normal closely enough for a benchmark).
fn gaussian_probs(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(17);
    (0..n)
        .map(|_| {
            let z: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
            (0.5 + 0.5 * z).clamp(0.0, 1.0)
        })
        .collect()
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/bitmap");
    common::tune(&mut group);
    for n in SIZES {
        let a = random_bitmap(n, 0.4, 1);
        let b_map = random_bitmap(n, 0.4, 2);
        group.bench_with_input(BenchmarkId::new("and_count", n), &n, |b, _| {
            b.iter(|| black_box(a.and_count(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("and_alloc", n), &n, |b, _| {
            b.iter(|| black_box(a.and(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("is_subset", n), &n, |b, _| {
            b.iter(|| black_box(a.is_subset(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("diff_iter", n), &n, |b, _| {
            b.iter(|| black_box(a.diff_iter(&b_map).sum::<usize>()))
        });
    }
    group.finish();
}

fn bench_incremental_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/freq_dp");
    common::tune(&mut group);
    for n in SIZES {
        let p = probs(n);
        let parent = TailDp::from_probs(K, p.iter().copied());
        // Drop low-probability transactions: their deconvolution keeps the
        // measured error bound far below the default 1e-9 tolerance, so
        // this bench measures the pure downdate path (no rebuild fallback).
        let dropped_idx: Vec<usize> = p
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v < 0.5)
            .take(DROPS)
            .map(|(i, _)| i)
            .collect();
        let dropped: Vec<f64> = dropped_idx.iter().map(|&i| p[i]).collect();
        let survivors: Vec<f64> = p
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped_idx.contains(i))
            .map(|(_, &v)| v)
            .collect();

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let mut dp = TailDp::new(K);
                for &q in &survivors {
                    dp.push(q);
                }
                black_box(dp.tail())
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut dp = parent.clone();
                for &q in &dropped {
                    assert!(dp.try_remove(q, 1e-9));
                }
                black_box(dp.tail())
            })
        });

        // Gaussian paper-style probabilities (mean 0.5, sd 0.5, clamped):
        // the regime the acceptance gate cares about. The downdate must
        // fire here at the default tolerance.
        let gp = gaussian_probs(n);
        let gparent = TailDp::from_probs(K, gp.iter().copied());
        let gdropped: Vec<f64> = gp
            .iter()
            .copied()
            .filter(|&v| v > 0.0 && v < 1.0)
            .take(DROPS)
            .collect();
        group.bench_with_input(BenchmarkId::new("incremental_gaussian", n), &n, |b, _| {
            b.iter(|| {
                let mut dp = gparent.clone();
                for &q in &gdropped {
                    assert!(dp.try_remove(q, 1e-9));
                }
                black_box(dp.tail())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitmap, bench_incremental_dp);
criterion_main!(benches);
