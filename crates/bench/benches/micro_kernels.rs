//! Micro-benchmarks of the bitmap/DP kernel layer: word-level
//! [`TidBitmap`] intersection and the incremental-vs-full frequentness
//! DP, at tid universes of 1k, 10k and 100k transactions.
//!
//! The DP threshold is held at a fixed small `k`: the full rebuild is
//! `O(N·k)` while the downdate is `O(drops·k)`, so the gap these benches
//! measure is the `N / drops` factor the DFS miner exploits on child
//! nodes that drop only a handful of transactions.

mod common;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prob::TailDp;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;
use utdb::TidBitmap;

const SIZES: [usize; 3] = [1_000, 10_000, 100_000];

/// Frequentness threshold for the DP benches (absolute `min_sup`).
const K: usize = 64;

/// Transactions a child node drops from its parent's tid-set.
const DROPS: usize = 8;

fn random_bitmap(n: usize, density: f64, seed: u64) -> TidBitmap {
    let mut rng = SmallRng::seed_from_u64(seed);
    TidBitmap::from_tids(n, (0..n).filter(|_| rng.random::<f64>() < density))
}

fn probs(n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(9);
    (0..n).map(|_| 0.05 + 0.9 * rng.random::<f64>()).collect()
}

fn bench_bitmap(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/bitmap");
    common::tune(&mut group);
    for n in SIZES {
        let a = random_bitmap(n, 0.4, 1);
        let b_map = random_bitmap(n, 0.4, 2);
        group.bench_with_input(BenchmarkId::new("and_count", n), &n, |b, _| {
            b.iter(|| black_box(a.and_count(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("and_alloc", n), &n, |b, _| {
            b.iter(|| black_box(a.and(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("is_subset", n), &n, |b, _| {
            b.iter(|| black_box(a.is_subset(&b_map)))
        });
        group.bench_with_input(BenchmarkId::new("diff_iter", n), &n, |b, _| {
            b.iter(|| black_box(a.diff_iter(&b_map).sum::<usize>()))
        });
    }
    group.finish();
}

fn bench_incremental_dp(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel/freq_dp");
    common::tune(&mut group);
    for n in SIZES {
        let p = probs(n);
        let parent = TailDp::from_probs(K, p.iter().copied());
        // Drop low-probability transactions: `try_remove` refuses p with
        // p/(1-p) amplification beyond the limit (the miner then falls
        // back to a rebuild), and this bench measures the downdate path.
        let dropped_idx: Vec<usize> = p
            .iter()
            .enumerate()
            .filter(|&(_, &v)| v < 0.5)
            .take(DROPS)
            .map(|(i, _)| i)
            .collect();
        let dropped: Vec<f64> = dropped_idx.iter().map(|&i| p[i]).collect();
        let survivors: Vec<f64> = p
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped_idx.contains(i))
            .map(|(_, &v)| v)
            .collect();

        group.bench_with_input(BenchmarkId::new("full_rebuild", n), &n, |b, _| {
            b.iter(|| {
                let mut dp = TailDp::new(K);
                for &q in &survivors {
                    dp.push(q);
                }
                black_box(dp.tail())
            })
        });
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut dp = parent.clone();
                for &q in &dropped {
                    assert!(dp.try_remove(q, 100.0));
                }
                black_box(dp.tail())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitmap, bench_incremental_dp);
criterion_main!(benches);
