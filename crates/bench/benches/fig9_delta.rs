//! Fig. 9 — runtime vs the confidence parameter δ; the ln(2/δ) sample
//! factor makes this gentler than ε (the paper's observation).

mod common;

use common::mine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pfcim_core::Variant;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let db = common::mushroom();
    let mut group = c.benchmark_group("fig9/mushroom");
    common::tune(&mut group);
    for delta in [0.05, 0.1, 0.3] {
        for variant in [Variant::Mpfci, Variant::NoBound] {
            let cfg = common::paper_cfg(&db, 0.3, 0.8)
                .with_variant(variant)
                .with_approximation(0.2, delta);
            group.bench_with_input(BenchmarkId::new(variant.name(), delta), &delta, |b, _| {
                b.iter(|| black_box(mine(&db, &cfg)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
