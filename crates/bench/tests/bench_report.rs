//! End-to-end tests of the `bench-report` binary: schema validation of
//! the committed seed report, regression gating with an injected
//! slowdown, and a budgeted smoke run of the real matrix.

use std::path::PathBuf;
use std::process::Command;

use pfcim_bench::benchreport::{BenchReport, SCHEMA_VERSION};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_bench-report"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pfcim_bench_report_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A minimal two-algorithm report whose cells all take `elapsed_s`.
fn synthetic_report(label: &str, elapsed_s: f64) -> String {
    let entry = |algo: &str| {
        format!(
            "{{\"dataset\":\"Mushroom\",\"algo\":\"{algo}\",\"min_sup_rel\":0.4,\
             \"elapsed_s\":{elapsed_s},\"timed_out\":false,\"nodes\":1000,\
             \"nodes_per_s\":1000.0,\"results\":5,\"phase_s\":{{\"freq_dp\":{elapsed_s}}},\
             \"prune\":{{\"superset\":3}},\
             \"node_latency\":{{\"count\":999,\"min\":0.000001,\"max\":0.01,\"mean\":0.001,\
             \"sum\":0.999,\"p50\":0.0008,\"p90\":0.002,\"p95\":0.004,\"p99\":0.009}},\
             \"peak_rss_bytes\":1048576,\"peak_alloc_bytes\":0,\"allocations\":0}}"
        )
    };
    format!(
        "{{\"version\":{SCHEMA_VERSION},\"label\":\"{label}\",\"scale\":\"tiny\",\
         \"threads\":1,\"created_unix\":1754000000,\"entries\":[{},{}]}}",
        entry("MPFCI"),
        entry("Naive")
    )
}

#[test]
fn compare_fails_on_injected_regression() {
    let dir = temp_dir("compare");
    let base = dir.join("BENCH_base.json");
    let slow = dir.join("BENCH_slow.json");
    // Inject a 30% slowdown into every cell of the "current" report.
    std::fs::write(&base, synthetic_report("base", 1.0)).unwrap();
    std::fs::write(&slow, synthetic_report("slow", 1.3)).unwrap();

    let out = bin()
        .args(["--compare"])
        .arg(&base)
        .arg(&slow)
        .args(["--fail-on-regress", "20"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("regression gate FAILED"), "{stderr}");
    assert!(
        stderr.contains("MPFCI") && stderr.contains("+30"),
        "{stderr}"
    );

    // The same pair passes a 50% threshold, and an unchanged pair any.
    for (current, pct) in [(&slow, "50"), (&base, "20")] {
        let out = bin()
            .args(["--compare"])
            .arg(&base)
            .arg(current)
            .args(["--fail-on-regress", pct])
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn validate_accepts_good_and_rejects_broken_reports() {
    let dir = temp_dir("validate");
    let good = dir.join("BENCH_good.json");
    std::fs::write(&good, synthetic_report("good", 0.5)).unwrap();
    let out = bin().arg("--validate").arg(&good).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let broken = dir.join("BENCH_broken.json");
    std::fs::write(
        &broken,
        synthetic_report("broken", 0.5).replace("\"nodes\"", "\"gnodes\""),
    )
    .unwrap();
    let out = bin().arg("--validate").arg(&broken).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("nodes"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seed_report_in_the_repository_is_valid() {
    let seed = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_seed.json");
    let text = std::fs::read_to_string(&seed).expect("BENCH_seed.json is committed at repo root");
    let report = BenchReport::from_json(&text).expect("seed report matches the schema");
    assert_eq!(report.label, "seed");
    // The seed predates the parallel miner: a v1 document, which must
    // keep validating under the v2 reader and read as sequential.
    assert_eq!(report.version, 1);
    assert_eq!(report.threads, 1);
    let out = bin().arg("--validate").arg(&seed).output().unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn parallel_report_in_the_repository_is_valid() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_par.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_par.json is committed at repo root");
    let report = BenchReport::from_json(&text).expect("parallel report matches the schema");
    assert_eq!(report.version, 2);
    assert!(report.threads > 1, "BENCH_par.json is a multi-worker run");
    let out = bin().arg("--validate").arg(&path).output().unwrap();
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn smoke_run_emits_a_valid_multi_algorithm_report() {
    let dir = temp_dir("smoke");
    // Tight per-cell budget: slow cells are cut off and marked
    // timed_out, which the schema and comparator both accept.
    let out = bin()
        .args(["--smoke", "--label", "itest", "--budget", "2", "--out-dir"])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{out:?}");
    let path = dir.join("BENCH_itest.json");
    let report = BenchReport::from_json(&std::fs::read_to_string(&path).unwrap())
        .expect("emitted report validates");
    let algos: std::collections::BTreeSet<&str> =
        report.entries.iter().map(|e| e.algo.as_str()).collect();
    assert!(algos.len() >= 2, "matrix covers {algos:?}");
    assert!(report.entries.iter().any(|e| e.nodes > 0));
    // Cells that finished report coherent throughput and phase totals.
    for e in report.entries.iter().filter(|e| !e.timed_out) {
        assert!(e.elapsed_s >= 0.0);
        if e.elapsed_s > 0.0 {
            let expected = e.nodes as f64 / e.elapsed_s;
            assert!((e.nodes_per_s - expected).abs() <= expected * 1e-6 + 1e-6);
        }
        assert!(e.phase_s.values().all(|&s| s >= 0.0));
    }
    std::fs::remove_dir_all(&dir).ok();
}
