//! End-to-end checks of the profiling exporters on real benchmark
//! datasets: the Chrome trace-event JSON must round-trip through an
//! actual JSON parser with strictly nested per-thread spans, the
//! Prometheus text output must pass its own linter, and attaching the
//! profiler must not change what is mined.

use pfcim_bench::benchreport::JsonValue;
use pfcim_bench::datasets::{abs_min_sup, BenchDataset, Scale};
use pfcim_core::{lint_prometheus, HistogramSink, Miner, MinerConfig, NullSink, SpanProfiler, Tee};

fn dataset() -> (pfcim_bench::datasets::BenchDataset, utdb::UncertainDatabase) {
    let dataset = BenchDataset::HighProb;
    let db = dataset.uncertain(Scale::Tiny, 42);
    (dataset, db)
}

fn config(db: &utdb::UncertainDatabase, dataset: BenchDataset) -> MinerConfig {
    MinerConfig::new(abs_min_sup(db, dataset.default_min_sup_rel()), 0.8)
}

#[test]
fn chrome_trace_round_trips_and_spans_nest_per_thread() {
    let (dataset, db) = dataset();
    let cfg = config(&db, dataset);
    let mut profiler = SpanProfiler::new();
    let outcome = Miner::new(&db).config(cfg).sink(&mut profiler).run();
    assert!(outcome.stats.nodes_visited > 0, "the run must do work");

    let text = profiler.chrome_trace_json();
    let doc = JsonValue::parse(&text).expect("chrome trace must be valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("top-level traceEvents array");
    assert!(!events.is_empty());

    // Split into metadata ("M") and complete ("X") events; collect the
    // per-thread complete spans as (ts, ts+dur) microsecond intervals.
    let mut names = Vec::new();
    let mut by_tid: std::collections::BTreeMap<u64, Vec<(f64, f64)>> = Default::default();
    let mut node_spans = 0u64;
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).expect("ph");
        let name = ev.get("name").and_then(JsonValue::as_str).expect("name");
        let tid = ev.get("tid").and_then(JsonValue::as_u64).expect("tid");
        assert_eq!(ev.get("pid").and_then(JsonValue::as_u64), Some(1));
        match ph {
            "M" => {
                assert_eq!(name, "thread_name");
                names.push(tid);
            }
            "X" => {
                let ts = ev.get("ts").and_then(JsonValue::as_f64).expect("ts");
                let dur = ev.get("dur").and_then(JsonValue::as_f64).expect("dur");
                assert!(ts >= 0.0 && dur >= 0.0, "{name}: ts={ts} dur={dur}");
                if name == "node" {
                    node_spans += 1;
                    assert!(
                        ev.get("args").and_then(|a| a.get("depth")).is_some(),
                        "node spans carry their depth"
                    );
                }
                by_tid.entry(tid).or_default().push((ts, ts + dur));
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    // One thread_name metadata record per track that carries spans.
    for tid in by_tid.keys() {
        assert!(names.contains(tid), "track {tid} has no thread_name");
    }
    // Unsampled profiling records every DFS node.
    assert_eq!(node_spans, outcome.stats.nodes_visited);

    // Per thread, spans must strictly nest: sorted by start, each span
    // either contains the next or ends before it starts.
    for (tid, spans) in &mut by_tid {
        // Parents first: start ascending, end descending.
        spans.sort_by(|a, b| {
            (a.0, b.1)
                .partial_cmp(&(b.0, a.1))
                .expect("finite timestamps")
        });
        let mut stack: Vec<(f64, f64)> = Vec::new();
        for &(start, end) in spans.iter() {
            while let Some(&(_, open_end)) = stack.last() {
                if open_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                assert!(
                    open_start <= start && end <= open_end,
                    "track {tid}: span [{start}, {end}] straddles [{open_start}, {open_end}]"
                );
            }
            stack.push((start, end));
        }
    }
}

#[test]
fn parallel_profile_produces_worker_tracks() {
    let (dataset, db) = dataset();
    let cfg = config(&db, dataset).with_threads(4);
    let mut profiler = SpanProfiler::new();
    Miner::new(&db).config(cfg).sink(&mut profiler).run();
    let text = profiler.chrome_trace_json();
    let doc = JsonValue::parse(&text).expect("valid JSON");
    let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
    let worker_named = events.iter().any(|ev| {
        ev.get("ph").and_then(JsonValue::as_str) == Some("M")
            && ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(JsonValue::as_str)
                .is_some_and(|n| n.starts_with("worker-"))
    });
    assert!(worker_named, "pool spans must land on named worker tracks");
    let pool_kinds: std::collections::BTreeSet<&str> = events
        .iter()
        .filter_map(|ev| ev.get("name").and_then(JsonValue::as_str))
        .filter(|n| matches!(*n, "task" | "steal" | "idle"))
        .collect();
    assert!(
        pool_kinds.contains("task"),
        "worker tracks carry pool task spans (got {pool_kinds:?})"
    );
}

#[test]
fn prometheus_export_of_a_real_run_lints_clean() {
    let (dataset, db) = dataset();
    let cfg = config(&db, dataset);
    let mut sink = HistogramSink::new();
    let outcome = Miner::new(&db).config(cfg).sink(&mut sink).run();
    let text = sink.snapshot().to_prometheus("pfcim");
    lint_prometheus(&text).expect("exporter output must pass the linter");
    assert!(text.contains(&format!(
        "pfcim_nodes_visited {}",
        outcome.stats.nodes_visited
    )));
    // The DP decision audit rides along as counters; on this dataset
    // the incremental path must actually fire.
    assert!(text.contains("# TYPE pfcim_audit_incremental counter"));
    assert_eq!(
        outcome.audit.incremental, outcome.kernel.dp_incremental,
        "audit reconciles with the kernel counter"
    );
    assert!(
        outcome.kernel.dp_incremental > 0,
        "the high-probability dataset must exercise the downdate path"
    );
}

#[test]
fn profiling_does_not_perturb_mining() {
    let (dataset, db) = dataset();
    let cfg = config(&db, dataset);
    let baseline = Miner::new(&db)
        .config(cfg.clone())
        .sink(&mut NullSink)
        .run();
    // Full-rate profiling plus histograms, as `pfcim profile` attaches.
    let mut sink = Tee(SpanProfiler::new(), HistogramSink::new());
    let profiled = Miner::new(&db).config(cfg).sink(&mut sink).run();
    assert_eq!(baseline.results, profiled.results);
    assert_eq!(baseline.stats, profiled.stats);
    assert_eq!(baseline.kernel, profiled.kernel);
    assert_eq!(baseline.audit, profiled.audit);
}
