//! End-to-end check of the live telemetry scrape endpoint: a real
//! MPFCI run on a benchmark dataset is slowed down just enough to be
//! observable, the HTTP server is scraped *mid-run* for `/metrics`
//! (which must pass the Prometheus linter) and `/healthz` (which must
//! be valid JSON reporting live progress), and after the run the
//! `/flight` recorder dump must be line-by-line parseable.

use std::time::{Duration, Instant};

use pfcim_bench::benchreport::JsonValue;
use pfcim_bench::datasets::{abs_min_sup, BenchDataset, Scale};
use pfcim_core::{http_get, lint_prometheus, Miner, MinerConfig, MinerSink, ShardableSink, Tee};
use pfcim_core::{Telemetry, TelemetryConfig};

/// Sleeps on every enumeration-tree node so the run stays alive long
/// enough for the scraper to catch it in flight.
#[derive(Clone)]
struct SlowNode(Duration);

impl MinerSink for SlowNode {
    fn node_entered(&mut self, _depth: usize) {
        std::thread::sleep(self.0);
    }
}

impl ShardableSink for SlowNode {
    type Shard = SlowNode;
    fn make_shard(&self) -> SlowNode {
        self.clone()
    }
    fn absorb_shard(&mut self, _shard: SlowNode) {}
}

const HTTP_TIMEOUT: Duration = Duration::from_secs(5);

fn get_ok(addr: &str, path: &str) -> String {
    let (status, body) =
        http_get(addr, path, HTTP_TIMEOUT).unwrap_or_else(|e| panic!("GET {path} failed: {e}"));
    assert_eq!(status, 200, "GET {path} returned {status}: {body}");
    body
}

#[test]
fn metrics_and_healthz_scrape_cleanly_during_a_live_run() {
    let dataset = BenchDataset::HighProb;
    let db = dataset.uncertain(Scale::Tiny, 42);
    let cfg = MinerConfig::new(abs_min_sup(&db, dataset.default_min_sup_rel()), 0.8);

    let mut telemetry = Telemetry::with_config(TelemetryConfig {
        sample_interval: Duration::from_millis(5),
        ..TelemetryConfig::default()
    });
    let addr = telemetry
        .serve("127.0.0.1:0")
        .expect("bind scrape endpoint")
        .to_string();
    let addr = addr.as_str();
    let tel_sink = telemetry.sink();

    let miner = std::thread::spawn(move || {
        let mut sink = Tee(tel_sink, SlowNode(Duration::from_millis(2)));
        Miner::new(&db).config(cfg).sink(&mut sink).run()
    });

    // Wait until the run is demonstrably in flight: /healthz must report
    // visited nodes while `finished` is still false.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut live_health = None;
    while Instant::now() < deadline {
        let body = get_ok(addr, "/healthz");
        let doc = JsonValue::parse(&body).expect("healthz must be valid JSON");
        let nodes = doc.get("nodes").and_then(JsonValue::as_u64).unwrap_or(0);
        let finished = doc.get("finished").and_then(JsonValue::as_bool);
        if nodes > 0 && finished == Some(false) {
            live_health = Some(doc);
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    let health = live_health.expect("never observed the run in flight via /healthz");
    assert_eq!(
        health.get("status").and_then(JsonValue::as_str),
        Some("ok"),
        "mid-run healthz: {health:?}"
    );
    assert!(health.get("elapsed_s").and_then(JsonValue::as_f64).unwrap() > 0.0);

    // The mid-run metrics scrape must lint cleanly and carry the core
    // mining counters.
    let metrics = get_ok(addr, "/metrics");
    lint_prometheus(&metrics).unwrap_or_else(|e| panic!("mid-run /metrics fails lint: {e}"));
    for required in [
        "pfcim_nodes_visited",
        "pfcim_elapsed_s",
        "pfcim_event_cache_capacity",
    ] {
        assert!(metrics.contains(required), "missing {required}:\n{metrics}");
    }

    let outcome = miner.join().expect("miner thread panicked");
    assert!(outcome.stats.nodes_visited > 0);

    // After the run: /healthz flips to finished and the flight recorder
    // replays as one valid JSON record per line.
    let body = get_ok(addr, "/healthz");
    let doc = JsonValue::parse(&body).expect("post-run healthz must be valid JSON");
    assert_eq!(doc.get("finished").and_then(JsonValue::as_bool), Some(true));

    let flight = get_ok(addr, "/flight");
    let mut samples = 0usize;
    for line in flight.lines() {
        let rec = JsonValue::parse(line)
            .unwrap_or_else(|e| panic!("unparseable flight record {line:?}: {e}"));
        match rec.get("record").and_then(JsonValue::as_str) {
            Some("sample") => {
                samples += 1;
                assert!(rec.get("nodes").and_then(JsonValue::as_u64).is_some());
            }
            Some("event") => {
                assert!(rec.get("kind").and_then(JsonValue::as_str).is_some());
            }
            other => panic!("flight record with unknown type {other:?}: {line}"),
        }
    }
    assert!(
        samples > 0,
        "flight recorder retained no samples:\n{flight}"
    );

    // The final sample's node count reconciles with the miner's own
    // statistics (run_finished pushes one last sample).
    let last_sample = flight
        .lines()
        .filter_map(|l| JsonValue::parse(l).ok())
        .rfind(|r| r.get("record").and_then(JsonValue::as_str) == Some("sample"))
        .unwrap();
    assert_eq!(
        last_sample.get("nodes").and_then(JsonValue::as_u64),
        Some(outcome.stats.nodes_visited)
    );

    telemetry.shutdown();
}
