//! FP-growth (Han, Pei & Yin, SIGMOD'00): pattern-growth mining over the
//! FP-tree, the frequent-itemset miner the paper's Fig. 10 uses for the
//! exact side of the compression comparison.

use utdb::{Item, UncertainDatabase};

use crate::fptree::FpTree;
use crate::MinedItemset;

/// Mine all itemsets with support at least `min_sup` (≥ 1) via FP-growth.
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b", 1.0),
///     ("a b", 1.0),
///     ("b c", 1.0),
/// ]);
/// let fis = fim::frequent_itemsets_fpgrowth(&db, 2);
/// assert_eq!(fis.len(), 3); // {a}, {b}, {a,b}
/// ```
pub fn frequent_itemsets_fpgrowth(db: &UncertainDatabase, min_sup: usize) -> Vec<MinedItemset> {
    let min_sup = min_sup.max(1);

    // Global item order: descending support, ties by ascending id — the
    // canonical FP-tree insertion order.
    let mut frequent: Vec<(Item, usize)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .map(|item| (item, db.tidset_of(item).count()))
        .filter(|&(_, c)| c >= min_sup)
        .collect();
    frequent.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let rank: std::collections::HashMap<Item, usize> = frequent
        .iter()
        .enumerate()
        .map(|(r, &(item, _))| (item, r))
        .collect();

    let mut tree = FpTree::new();
    let mut path: Vec<Item> = Vec::new();
    for t in db.transactions() {
        path.clear();
        path.extend(t.items().iter().copied().filter(|i| rank.contains_key(i)));
        path.sort_by_key(|i| rank[i]);
        if !path.is_empty() {
            tree.insert(&path, 1);
        }
    }

    let mut results = Vec::new();
    let mut suffix = Vec::new();
    grow(&tree, min_sup, &mut suffix, &mut results);
    for m in &mut results {
        m.items.sort_unstable();
    }
    results
}

/// Recursive pattern growth: emit each frequent item of `tree` appended to
/// `suffix`, then mine its conditional tree.
fn grow(tree: &FpTree, min_sup: usize, suffix: &mut Vec<Item>, results: &mut Vec<MinedItemset>) {
    // Single-path shortcut: every combination of path items is frequent
    // with the minimum count along the chosen sub-path.
    if let Some(path) = tree.single_path() {
        if path.is_empty() {
            return;
        }
        emit_path_combinations(&path, min_sup, suffix, results);
        return;
    }

    let mut items: Vec<(Item, usize)> = tree
        .items()
        .filter(|&(_, count)| count >= min_sup)
        .collect();
    // Deterministic order for reproducible output.
    items.sort_by_key(|&(item, _)| item);

    for (item, count) in items {
        suffix.push(item);
        results.push(MinedItemset {
            items: suffix.clone(),
            support: count,
        });
        // Conditional tree on `item`.
        let base = tree.conditional_pattern_base(item);
        let mut cond_counts: std::collections::HashMap<Item, usize> =
            std::collections::HashMap::new();
        for (path, c) in &base {
            for &i in path {
                *cond_counts.entry(i).or_default() += c;
            }
        }
        let mut cond = FpTree::new();
        let mut filtered: Vec<Item> = Vec::new();
        for (path, c) in &base {
            filtered.clear();
            filtered.extend(path.iter().copied().filter(|i| cond_counts[i] >= min_sup));
            if !filtered.is_empty() {
                cond.insert(&filtered, *c);
            }
        }
        if !cond.is_empty() {
            grow(&cond, min_sup, suffix, results);
        }
        suffix.pop();
    }
}

/// All non-empty combinations of a single path, each with the minimum
/// count of its members, appended to `suffix`.
fn emit_path_combinations(
    path: &[(Item, usize)],
    min_sup: usize,
    suffix: &[Item],
    results: &mut Vec<MinedItemset>,
) {
    let n = path.len();
    debug_assert!(n < 64, "single-path combination blowup guard");
    for mask in 1u64..(1 << n) {
        let mut count = usize::MAX;
        let mut items = suffix.to_vec();
        for (i, &(item, c)) in path.iter().enumerate() {
            if mask >> i & 1 == 1 {
                count = count.min(c);
                items.push(item);
            }
        }
        if count >= min_sup {
            results.push(MinedItemset {
                items,
                support: count,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_canonical;
    use crate::testutil::{brute_force_frequent, random_db};

    #[test]
    fn matches_brute_force_on_random_data() {
        for seed in 20..26 {
            let db = random_db(seed, 35, 9, 0.45);
            for min_sup in [1, 3, 7, 15] {
                let mut got = frequent_itemsets_fpgrowth(&db, min_sup);
                sort_canonical(&mut got);
                assert_eq!(
                    got,
                    brute_force_frequent(&db, min_sup),
                    "seed={seed} min_sup={min_sup}"
                );
            }
        }
    }

    #[test]
    fn single_transaction_database_uses_single_path_shortcut() {
        let db = UncertainDatabase::parse_symbolic(&[("a b c d e", 1.0)]);
        let fis = frequent_itemsets_fpgrowth(&db, 1);
        assert_eq!(fis.len(), 31);
    }

    #[test]
    fn identical_transactions_share_one_path() {
        let db =
            UncertainDatabase::parse_symbolic(&[("a b c", 1.0), ("a b c", 1.0), ("a b c", 1.0)]);
        let fis = frequent_itemsets_fpgrowth(&db, 3);
        assert_eq!(fis.len(), 7);
        assert!(fis.iter().all(|m| m.support == 3));
    }

    #[test]
    fn infrequent_items_never_appear() {
        let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("a b", 1.0), ("a c", 1.0)]);
        let c = db.dictionary().get("c").unwrap();
        let fis = frequent_itemsets_fpgrowth(&db, 2);
        assert!(fis.iter().all(|m| !m.items.contains(&c)));
    }

    #[test]
    fn results_are_sorted_itemsets() {
        let db = random_db(99, 20, 8, 0.5);
        for m in frequent_itemsets_fpgrowth(&db, 2) {
            assert!(m.items.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
