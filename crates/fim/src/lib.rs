//! Exact (deterministic) frequent itemset mining.
//!
//! These are the classical algorithms the paper's compression experiment
//! (Fig. 10) measures against — FP-growth for frequent itemsets and a
//! closed-itemset miner standing in for CLOSET+ — plus Apriori and Eclat
//! as cross-validation baselines. They operate on an
//! [`utdb::UncertainDatabase`] *ignoring probabilities* (every transaction
//! counts), which also makes them directly usable inside possible-world
//! enumeration where each world is an exact database.
//!
//! All miners return the same [`MinedItemset`] records and agree exactly
//! with one another; the test suites cross-validate them on random
//! databases.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod apriori;
pub mod closed;
pub mod eclat;
pub mod fpgrowth;
pub mod fptree;
pub mod maximal;

pub use apriori::frequent_itemsets_apriori;
pub use closed::{closed_by_filtering, frequent_closed_itemsets};
pub use eclat::frequent_itemsets_eclat;
pub use fpgrowth::frequent_itemsets_fpgrowth;
pub use maximal::{frequent_maximal_itemsets, maximal_by_filtering};

use utdb::Item;

/// A mined itemset with its (deterministic) support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedItemset {
    /// The itemset, sorted ascending.
    pub items: Vec<Item>,
    /// Number of transactions containing the itemset.
    pub support: usize,
}

impl MinedItemset {
    /// Construct, asserting sortedness in debug builds.
    pub fn new(items: Vec<Item>, support: usize) -> Self {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]), "unsorted itemset");
        Self { items, support }
    }
}

/// Canonical ordering for result comparison: by itemset lexicographically.
pub fn sort_canonical(results: &mut [MinedItemset]) {
    results.sort_by(|a, b| a.items.cmp(&b.items));
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::SmallRng;
    use rand::{RngExt, SeedableRng};
    use utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};

    /// A random exact database for cross-validation tests.
    pub fn random_db(seed: u64, n: usize, num_items: u32, density: f64) -> UncertainDatabase {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut rows = Vec::new();
        while rows.len() < n {
            let items: Vec<Item> = (0..num_items)
                .filter(|_| rng.random::<f64>() < density)
                .map(Item)
                .collect();
            if items.is_empty() {
                continue;
            }
            rows.push(UncertainTransaction::new(items, 1.0));
        }
        UncertainDatabase::new(rows, ItemDictionary::new())
    }

    /// Brute-force frequent itemsets by enumerating every subset of the
    /// item universe (tiny universes only).
    pub fn brute_force_frequent(
        db: &UncertainDatabase,
        min_sup: usize,
    ) -> Vec<crate::MinedItemset> {
        let m = db.num_items();
        assert!(m <= 16);
        let mut out = Vec::new();
        for mask in 1u32..(1 << m) {
            let items: Vec<Item> = (0..m as u32)
                .filter(|i| mask >> i & 1 == 1)
                .map(Item)
                .collect();
            let support = db.count_of_itemset(&items);
            if support >= min_sup {
                out.push(crate::MinedItemset::new(items, support));
            }
        }
        crate::sort_canonical(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_validate_all_miners_on_random_databases() {
        for seed in 0..8 {
            let db = testutil::random_db(seed, 40, 10, 0.4);
            for min_sup in [1, 2, 5, 10, 20] {
                let brute = testutil::brute_force_frequent(&db, min_sup);
                let mut ap = frequent_itemsets_apriori(&db, min_sup);
                let mut ec = frequent_itemsets_eclat(&db, min_sup);
                let mut fp = frequent_itemsets_fpgrowth(&db, min_sup);
                sort_canonical(&mut ap);
                sort_canonical(&mut ec);
                sort_canonical(&mut fp);
                assert_eq!(ap, brute, "apriori seed={seed} min_sup={min_sup}");
                assert_eq!(ec, brute, "eclat seed={seed} min_sup={min_sup}");
                assert_eq!(fp, brute, "fpgrowth seed={seed} min_sup={min_sup}");
            }
        }
    }

    #[test]
    fn closed_miners_agree_with_filter_reference() {
        for seed in 10..16 {
            let db = testutil::random_db(seed, 30, 9, 0.45);
            for min_sup in [1, 3, 8] {
                let fis = frequent_itemsets_fpgrowth(&db, min_sup);
                let mut by_filter = closed_by_filtering(&fis);
                let mut direct = frequent_closed_itemsets(&db, min_sup);
                sort_canonical(&mut by_filter);
                sort_canonical(&mut direct);
                assert_eq!(direct, by_filter, "seed={seed} min_sup={min_sup}");
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use utdb::{Item, ItemDictionary, UncertainDatabase, UncertainTransaction};

    fn arb_db() -> impl Strategy<Value = UncertainDatabase> {
        proptest::collection::vec(1u32..256, 1..20).prop_map(|masks| {
            let rows: Vec<UncertainTransaction> = masks
                .into_iter()
                .map(|mask| {
                    let items: Vec<Item> =
                        (0..8).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                    UncertainTransaction::new(items, 1.0)
                })
                .collect();
            UncertainDatabase::new(rows, ItemDictionary::new())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// All three frequent-itemset miners agree on arbitrary inputs.
        #[test]
        fn miners_agree(db in arb_db(), min_sup in 1usize..6) {
            let mut ap = frequent_itemsets_apriori(&db, min_sup);
            let mut ec = frequent_itemsets_eclat(&db, min_sup);
            let mut fp = frequent_itemsets_fpgrowth(&db, min_sup);
            sort_canonical(&mut ap);
            sort_canonical(&mut ec);
            sort_canonical(&mut fp);
            prop_assert_eq!(&ap, &ec);
            prop_assert_eq!(&ap, &fp);
        }

        /// The direct closed miner equals filtering the frequent set.
        #[test]
        fn closed_miner_equals_filter(db in arb_db(), min_sup in 1usize..5) {
            let fis = frequent_itemsets_fpgrowth(&db, min_sup);
            let mut direct = frequent_closed_itemsets(&db, min_sup);
            let mut filtered = closed_by_filtering(&fis);
            sort_canonical(&mut direct);
            sort_canonical(&mut filtered);
            prop_assert_eq!(direct, filtered);
        }

        /// Reported supports are correct and at least min_sup.
        #[test]
        fn supports_are_exact(db in arb_db(), min_sup in 1usize..5) {
            for m in frequent_itemsets_fpgrowth(&db, min_sup) {
                prop_assert!(m.support >= min_sup);
                prop_assert_eq!(m.support, db.count_of_itemset(&m.items));
            }
        }

        /// Downward closure: every non-empty subset of a frequent itemset
        /// is frequent (appears in the result set).
        #[test]
        fn downward_closure(db in arb_db(), min_sup in 1usize..5) {
            let mut fis = frequent_itemsets_fpgrowth(&db, min_sup);
            sort_canonical(&mut fis);
            let sets: Vec<&[Item]> = fis.iter().map(|m| m.items.as_slice()).collect();
            for m in &fis {
                if m.items.len() < 2 {
                    continue;
                }
                for skip in 0..m.items.len() {
                    let sub: Vec<Item> = m
                        .items
                        .iter()
                        .enumerate()
                        .filter(|&(i, _)| i != skip)
                        .map(|(_, &it)| it)
                        .collect();
                    prop_assert!(sets.binary_search(&sub.as_slice()).is_ok());
                }
            }
        }
    }
}
