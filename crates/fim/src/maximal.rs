//! Maximal frequent itemset (MFI) mining.
//!
//! A frequent itemset is *maximal* when no proper superset is frequent.
//! Maximal itemsets are the third member of the classic compression
//! hierarchy `MFI ⊆ FCI ⊆ FI`: smaller than the closed set but lossy
//! (supports of subsets are not recoverable). Included to complete the
//! baseline family around the paper's closed-itemset compression story.

use utdb::{Item, TidSet, UncertainDatabase};

use crate::MinedItemset;

/// Mine all maximal frequent itemsets directly: depth-first over the
/// vertical layout, emitting a node only when no frequent extension by
/// *any* other item exists.
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b c", 1.0),
///     ("a b", 1.0),
///     ("c", 1.0),
/// ]);
/// // At min_sup 2: frequent sets are {a}, {b}, {c}, {a,b}; maximal are
/// // {a,b} and {c}.
/// let mfis = fim::frequent_maximal_itemsets(&db, 2);
/// let rendered: Vec<String> = mfis.iter().map(|m| db.render(&m.items)).collect();
/// assert_eq!(rendered, vec!["{a, b}", "{c}"]);
/// ```
pub fn frequent_maximal_itemsets(db: &UncertainDatabase, min_sup: usize) -> Vec<MinedItemset> {
    let min_sup = min_sup.max(1);
    let mut results: Vec<MinedItemset> = Vec::new();
    if db.is_empty() {
        return results;
    }
    let singles: Vec<(Item, TidSet)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .filter_map(|item| {
            let ts = db.tidset_of(item);
            (ts.count() >= min_sup).then(|| (item, ts.clone()))
        })
        .collect();
    let mut prefix = Vec::new();
    recurse(db, &singles, &mut prefix, min_sup, &mut results);
    // The DFS guarantees no frequent single-item extension exists for an
    // emitted node, which implies maximality (any frequent superset would
    // imply a frequent one-item extension by downward closure) — but a
    // node emitted deep in one branch can be subsumed by a maximal set
    // found in another branch only through items *smaller* than its own,
    // which the per-node check below rules out by scanning all items.
    results
}

fn recurse(
    db: &UncertainDatabase,
    equiv: &[(Item, TidSet)],
    prefix: &mut Vec<Item>,
    min_sup: usize,
    results: &mut Vec<MinedItemset>,
) {
    for (idx, (item, tids)) in equiv.iter().enumerate() {
        prefix.push(*item);
        let mut child: Vec<(Item, TidSet)> = Vec::new();
        for (other, other_tids) in &equiv[idx + 1..] {
            let joint = tids.intersection(other_tids);
            if joint.count() >= min_sup {
                child.push((*other, joint));
            }
        }
        if child.is_empty() {
            // No frequent extension to the right; check every other item
            // (including those ordered before the prefix) for a frequent
            // superset before declaring maximality.
            let extendable = (0..db.num_items() as u32).map(Item).any(|e| {
                prefix.binary_search(&e).is_err()
                    && tids.intersection_count(db.tidset_of(e)) >= min_sup
            });
            if !extendable {
                results.push(MinedItemset::new(prefix.clone(), tids.count()));
            }
        } else {
            recurse(db, &child, prefix, min_sup, results);
        }
        prefix.pop();
    }
}

/// Reference implementation: filter a complete frequent-itemset list down
/// to the maximal ones.
pub fn maximal_by_filtering(frequent: &[MinedItemset]) -> Vec<MinedItemset> {
    let mut out = Vec::new();
    for a in frequent {
        let maximal = !frequent
            .iter()
            .any(|b| b.items.len() > a.items.len() && is_subset(&a.items, &b.items));
        if maximal {
            out.push(a.clone());
        }
    }
    out
}

fn is_subset(a: &[Item], b: &[Item]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::closed::frequent_closed_itemsets;
    use crate::fpgrowth::frequent_itemsets_fpgrowth;
    use crate::sort_canonical;
    use crate::testutil::random_db;

    #[test]
    fn matches_filter_reference_on_random_data() {
        for seed in 60..70 {
            let db = random_db(seed, 30, 9, 0.45);
            for min_sup in [1, 3, 7] {
                let fis = frequent_itemsets_fpgrowth(&db, min_sup);
                let mut by_filter = maximal_by_filtering(&fis);
                let mut direct = frequent_maximal_itemsets(&db, min_sup);
                sort_canonical(&mut by_filter);
                sort_canonical(&mut direct);
                assert_eq!(direct, by_filter, "seed={seed} min_sup={min_sup}");
            }
        }
    }

    #[test]
    fn compression_hierarchy_holds() {
        // |MFI| <= |FCI| <= |FI|, and every MFI is closed.
        for seed in 70..76 {
            let db = random_db(seed, 30, 9, 0.5);
            for min_sup in [2, 5] {
                let fi = frequent_itemsets_fpgrowth(&db, min_sup);
                let fci = frequent_closed_itemsets(&db, min_sup);
                let mfi = frequent_maximal_itemsets(&db, min_sup);
                assert!(mfi.len() <= fci.len());
                assert!(fci.len() <= fi.len());
                for m in &mfi {
                    assert!(
                        fci.iter().any(|c| c.items == m.items),
                        "maximal itemset {:?} is not closed",
                        m.items
                    );
                }
            }
        }
    }

    #[test]
    fn every_frequent_itemset_has_a_maximal_cover() {
        let db = random_db(80, 25, 8, 0.5);
        let fis = frequent_itemsets_fpgrowth(&db, 2);
        let mfis = frequent_maximal_itemsets(&db, 2);
        for f in &fis {
            assert!(
                mfis.iter().any(|m| is_subset(&f.items, &m.items)),
                "{:?} has no maximal cover",
                f.items
            );
        }
    }

    #[test]
    fn single_maximal_set_when_all_rows_identical() {
        let db = UncertainDatabase::parse_symbolic(&[("a b c", 1.0), ("a b c", 1.0)]);
        let mfis = frequent_maximal_itemsets(&db, 2);
        assert_eq!(mfis.len(), 1);
        assert_eq!(db.render(&mfis[0].items), "{a, b, c}");
    }

    #[test]
    fn empty_inputs() {
        let db = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(frequent_maximal_itemsets(&db, 1).is_empty());
        assert!(maximal_by_filtering(&[]).is_empty());
    }
}
