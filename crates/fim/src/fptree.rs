//! The FP-tree (frequent-pattern tree) of Han, Pei & Yin (SIGMOD'00).
//!
//! A prefix-tree compression of the database restricted to frequent items,
//! with per-item node chains (the header table) enabling fast extraction
//! of conditional pattern bases. Arena-allocated: nodes live in one `Vec`
//! and refer to each other by index.

use std::collections::HashMap;

use utdb::Item;

/// Index of a node within the tree arena.
pub type NodeId = usize;

/// One node of the FP-tree.
#[derive(Debug, Clone)]
pub struct FpNode {
    /// The item labelling the edge from the parent (meaningless at root).
    pub item: Item,
    /// Number of transactions passing through this node.
    pub count: usize,
    /// Parent node; `None` only for the root.
    pub parent: Option<NodeId>,
    /// Children, keyed by item.
    children: HashMap<Item, NodeId>,
}

/// A frequent-pattern tree with its header table.
#[derive(Debug, Clone)]
pub struct FpTree {
    nodes: Vec<FpNode>,
    /// item -> ids of all nodes carrying that item.
    header: HashMap<Item, Vec<NodeId>>,
    /// item -> total count across its node chain.
    item_counts: HashMap<Item, usize>,
}

impl FpTree {
    /// An empty tree (a lone root).
    pub fn new() -> Self {
        Self {
            nodes: vec![FpNode {
                item: Item(u32::MAX),
                count: 0,
                parent: None,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
            item_counts: HashMap::new(),
        }
    }

    /// Insert one (ordered) item path with multiplicity `count`.
    ///
    /// Items must already be filtered to the frequent ones and sorted in
    /// the tree's global item order — the caller owns that policy.
    pub fn insert(&mut self, path: &[Item], count: usize) {
        let mut current = 0; // root
        for &item in path {
            current = match self.nodes[current].children.get(&item) {
                Some(&child) => {
                    self.nodes[child].count += count;
                    child
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(FpNode {
                        item,
                        count,
                        parent: Some(current),
                        children: HashMap::new(),
                    });
                    self.nodes[current].children.insert(item, id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
            *self.item_counts.entry(item).or_default() += count;
        }
    }

    /// The items present in the tree, with their total counts.
    pub fn items(&self) -> impl Iterator<Item = (Item, usize)> + '_ {
        self.item_counts.iter().map(|(&i, &c)| (i, c))
    }

    /// Total count of one item across the tree (0 if absent).
    pub fn item_count(&self, item: Item) -> usize {
        self.item_counts.get(&item).copied().unwrap_or(0)
    }

    /// Number of nodes excluding the root.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True if the tree holds no items.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// The *conditional pattern base* of `item`: for each node in its
    /// chain, the path from its parent up to the root (reversed into
    /// root-first order) together with the node's count.
    pub fn conditional_pattern_base(&self, item: Item) -> Vec<(Vec<Item>, usize)> {
        let Some(chain) = self.header.get(&item) else {
            return Vec::new();
        };
        let mut base = Vec::with_capacity(chain.len());
        for &node_id in chain {
            let count = self.nodes[node_id].count;
            let mut path = Vec::new();
            let mut cursor = self.nodes[node_id].parent;
            while let Some(id) = cursor {
                if id == 0 {
                    break;
                }
                path.push(self.nodes[id].item);
                cursor = self.nodes[id].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, count));
            }
        }
        base
    }

    /// Does the tree consist of a single path from the root? (The
    /// FP-growth base case: all combinations of the path are frequent.)
    pub fn single_path(&self) -> Option<Vec<(Item, usize)>> {
        let mut path = Vec::new();
        let mut current = 0;
        loop {
            let children = &self.nodes[current].children;
            match children.len() {
                0 => return Some(path),
                1 => {
                    let (&item, &id) = children.iter().next().expect("len checked");
                    path.push((item, self.nodes[id].count));
                    current = id;
                }
                _ => return None,
            }
        }
    }
}

impl Default for FpTree {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(ids: &[u32]) -> Vec<Item> {
        ids.iter().map(|&i| Item(i)).collect()
    }

    #[test]
    fn shared_prefixes_are_merged() {
        let mut t = FpTree::new();
        t.insert(&items(&[0, 1, 2]), 1);
        t.insert(&items(&[0, 1, 3]), 1);
        t.insert(&items(&[0, 1]), 1);
        // Nodes: 0, 1, 2, 3 -> 4 nodes.
        assert_eq!(t.node_count(), 4);
        assert_eq!(t.item_count(Item(0)), 3);
        assert_eq!(t.item_count(Item(1)), 3);
        assert_eq!(t.item_count(Item(2)), 1);
    }

    #[test]
    fn multiplicity_counts() {
        let mut t = FpTree::new();
        t.insert(&items(&[0, 1]), 5);
        t.insert(&items(&[0]), 2);
        assert_eq!(t.item_count(Item(0)), 7);
        assert_eq!(t.item_count(Item(1)), 5);
    }

    #[test]
    fn conditional_pattern_base_extracts_prefix_paths() {
        let mut t = FpTree::new();
        t.insert(&items(&[0, 1, 2]), 2);
        t.insert(&items(&[0, 2]), 1);
        t.insert(&items(&[2]), 4);
        let mut base = t.conditional_pattern_base(Item(2));
        base.sort();
        assert_eq!(
            base,
            vec![(items(&[0]), 1), (items(&[0, 1]), 2)],
            "the empty prefix from the bare `2` path is dropped"
        );
    }

    #[test]
    fn single_path_detection() {
        let mut t = FpTree::new();
        assert_eq!(t.single_path(), Some(vec![]));
        t.insert(&items(&[0, 1, 2]), 3);
        assert_eq!(
            t.single_path(),
            Some(vec![(Item(0), 3), (Item(1), 3), (Item(2), 3)])
        );
        t.insert(&items(&[0, 3]), 1);
        assert_eq!(t.single_path(), None);
    }

    #[test]
    fn empty_tree() {
        let t = FpTree::new();
        assert!(t.is_empty());
        assert_eq!(t.node_count(), 0);
        assert!(t.conditional_pattern_base(Item(0)).is_empty());
    }
}
