//! Exact frequent *closed* itemset mining.
//!
//! An itemset is closed when no proper superset has the same support
//! (Definition 3.2 of the paper). The direct miner below is the
//! prefix-preserving closure-extension scheme of LCM / DCI-Closed — the
//! same closure machinery CLOSET+ exploits, expressed over the vertical
//! tid-set layout. A quadratic filter over plain frequent itemsets serves
//! as the cross-validation reference.

use utdb::{Item, TidSet, UncertainDatabase};

use crate::MinedItemset;

/// Mine all frequent closed itemsets directly (LCM-style prefix-preserving
/// closure extension).
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// // a and b always co-occur: {a} and {b} are not closed, {a,b} is.
/// let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("a b c", 1.0)]);
/// let fcis = fim::frequent_closed_itemsets(&db, 1);
/// let rendered: Vec<String> = fcis.iter().map(|m| db.render(&m.items)).collect();
/// assert!(rendered.contains(&"{a, b}".to_string()));
/// assert!(!rendered.contains(&"{a}".to_string()));
/// ```
pub fn frequent_closed_itemsets(db: &UncertainDatabase, min_sup: usize) -> Vec<MinedItemset> {
    let min_sup = min_sup.max(1);
    let mut results = Vec::new();
    if db.is_empty() {
        return results;
    }
    let full = TidSet::full(db.len());
    expand(db, &[], &full, 0, min_sup, &mut results);
    results
}

/// Try every prefix-preserving closure extension of the closed itemset
/// `current` (with tid-set `tids`) by items `>= start`.
fn expand(
    db: &UncertainDatabase,
    current: &[Item],
    tids: &TidSet,
    start: u32,
    min_sup: usize,
    results: &mut Vec<MinedItemset>,
) {
    let num_items = db.num_items() as u32;
    'candidates: for id in start..num_items {
        let item = Item(id);
        if current.binary_search(&item).is_ok() {
            continue;
        }
        let child_tids = tids.intersection(db.tidset_of(item));
        let support = child_tids.count();
        if support < min_sup {
            continue;
        }
        // Closure of current ∪ {item}: all items whose tid-set covers
        // child_tids. Prefix-preservation: if the closure acquires an item
        // smaller than `item` that is not already in `current`, this
        // closed set is generated elsewhere — skip.
        let mut closure: Vec<Item> = Vec::with_capacity(current.len() + 1);
        for other_id in 0..num_items {
            let other = Item(other_id);
            if other_id < id {
                let in_current = current.binary_search(&other).is_ok();
                let covers = child_tids.is_subset(db.tidset_of(other));
                if covers && !in_current {
                    continue 'candidates; // not prefix-preserving
                }
                if in_current {
                    closure.push(other);
                }
            } else if other_id == id || child_tids.is_subset(db.tidset_of(other)) {
                closure.push(other);
            }
        }
        results.push(MinedItemset::new(closure.clone(), support));
        expand(db, &closure, &child_tids, id + 1, min_sup, results);
    }
}

/// Reference implementation: filter a complete frequent-itemset list down
/// to the closed ones (no proper superset in the list with equal support).
///
/// Quadratic per support-class; meant for cross-validation, not scale.
pub fn closed_by_filtering(frequent: &[MinedItemset]) -> Vec<MinedItemset> {
    let mut out = Vec::new();
    for a in frequent {
        let closed = !frequent.iter().any(|b| {
            b.support == a.support && b.items.len() > a.items.len() && is_subset(&a.items, &b.items)
        });
        if closed {
            out.push(a.clone());
        }
    }
    out
}

/// Is sorted `a` a subset of sorted `b`?
fn is_subset(a: &[Item], b: &[Item]) -> bool {
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Less => {}
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpgrowth::frequent_itemsets_fpgrowth;
    use crate::sort_canonical;
    use crate::testutil::random_db;

    #[test]
    fn table_ii_closed_sets() {
        // As exact data, Table II has exactly two closed itemsets at
        // min_sup 2: {a,b,c} (support 4) and {a,b,c,d} (support 2).
        let db = UncertainDatabase::parse_symbolic(&[
            ("a b c d", 1.0),
            ("a b c", 1.0),
            ("a b c", 1.0),
            ("a b c d", 1.0),
        ]);
        let mut fcis = frequent_closed_itemsets(&db, 2);
        sort_canonical(&mut fcis);
        let rendered: Vec<(String, usize)> = fcis
            .iter()
            .map(|m| (db.render(&m.items), m.support))
            .collect();
        assert_eq!(
            rendered,
            vec![
                ("{a, b, c}".to_string(), 4),
                ("{a, b, c, d}".to_string(), 2)
            ]
        );
    }

    #[test]
    fn closed_count_never_exceeds_frequent_count() {
        for seed in 30..36 {
            let db = random_db(seed, 30, 9, 0.5);
            for min_sup in [1, 2, 5] {
                let fis = frequent_itemsets_fpgrowth(&db, min_sup);
                let fcis = frequent_closed_itemsets(&db, min_sup);
                assert!(fcis.len() <= fis.len());
                assert_eq!(fis.is_empty(), fcis.is_empty());
            }
        }
    }

    #[test]
    fn every_frequent_itemset_has_a_closed_superset_with_equal_support() {
        // The compression property: FCIs are a lossless summary of FIs.
        let db = random_db(41, 25, 8, 0.5);
        let fis = frequent_itemsets_fpgrowth(&db, 2);
        let fcis = frequent_closed_itemsets(&db, 2);
        for f in &fis {
            assert!(
                fcis.iter()
                    .any(|c| c.support == f.support && is_subset(&f.items, &c.items)),
                "{:?} lacks a closed cover",
                f.items
            );
        }
    }

    #[test]
    fn full_support_items_collapse_to_one_closure() {
        let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("a b", 1.0)]);
        let fcis = frequent_closed_itemsets(&db, 1);
        assert_eq!(fcis.len(), 1);
        assert_eq!(db.render(&fcis[0].items), "{a, b}");
        assert_eq!(fcis[0].support, 2);
    }

    #[test]
    fn no_duplicates_in_output() {
        for seed in 50..55 {
            let db = random_db(seed, 25, 8, 0.5);
            let mut fcis = frequent_closed_itemsets(&db, 1);
            sort_canonical(&mut fcis);
            for w in fcis.windows(2) {
                assert_ne!(w[0].items, w[1].items, "duplicate closed itemset");
            }
        }
    }

    #[test]
    fn is_subset_merge_walk() {
        let a = vec![Item(1), Item(3)];
        let b = vec![Item(0), Item(1), Item(2), Item(3)];
        assert!(is_subset(&a, &b));
        assert!(!is_subset(&b, &a));
        assert!(is_subset(&[], &a));
        assert!(!is_subset(&[Item(9)], &b));
    }

    #[test]
    fn empty_database_yields_nothing() {
        let db = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(frequent_closed_itemsets(&db, 1).is_empty());
    }
}
