//! The Apriori algorithm (Agrawal & Srikant, VLDB'94).
//!
//! Level-wise breadth-first mining: frequent `k`-itemsets are joined into
//! `(k+1)`-candidates, pruned by the downward-closure property, and counted
//! against the database. Kept as the most literal reference implementation
//! for cross-validating the faster miners.

use std::collections::HashSet;

use utdb::{Item, UncertainDatabase};

use crate::MinedItemset;

/// Mine all itemsets with support at least `min_sup` (which must be ≥ 1).
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b c", 1.0),
///     ("a b", 1.0),
///     ("a c", 1.0),
/// ]);
/// let fis = fim::frequent_itemsets_apriori(&db, 2);
/// assert!(fis.iter().any(|m| db.render(&m.items) == "{a, b}" && m.support == 2));
/// ```
pub fn frequent_itemsets_apriori(db: &UncertainDatabase, min_sup: usize) -> Vec<MinedItemset> {
    let min_sup = min_sup.max(1);
    let mut results = Vec::new();

    // L1
    let mut level: Vec<Vec<Item>> = Vec::new();
    for id in 0..db.num_items() {
        let item = Item(id as u32);
        let support = db.tidset_of(item).count();
        if support >= min_sup {
            results.push(MinedItemset::new(vec![item], support));
            level.push(vec![item]);
        }
    }

    while !level.is_empty() {
        let candidates = generate_candidates(&level);
        let mut next_level = Vec::new();
        for cand in candidates {
            let support = db.count_of_itemset(&cand);
            if support >= min_sup {
                results.push(MinedItemset::new(cand.clone(), support));
                next_level.push(cand);
            }
        }
        level = next_level;
    }
    results
}

/// Join step + prune step: each pair of frequent `k`-itemsets sharing a
/// `(k−1)`-prefix yields a candidate, kept only if all of its `k`-subsets
/// are frequent.
fn generate_candidates(level: &[Vec<Item>]) -> Vec<Vec<Item>> {
    let frequent: HashSet<&[Item]> = level.iter().map(Vec::as_slice).collect();
    let mut out = Vec::new();
    for (i, a) in level.iter().enumerate() {
        for b in &level[i + 1..] {
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                continue;
            }
            let mut cand = a.clone();
            let last = b[k - 1];
            if last <= *cand.last().expect("non-empty level itemset") {
                continue;
            }
            cand.push(last);
            // Prune: every k-subset must be frequent.
            let mut all_subsets_frequent = true;
            let mut subset = Vec::with_capacity(k);
            for skip in 0..cand.len() {
                subset.clear();
                subset.extend(
                    cand.iter()
                        .enumerate()
                        .filter(|&(idx, _)| idx != skip)
                        .map(|(_, &it)| it),
                );
                if !frequent.contains(subset.as_slice()) {
                    all_subsets_frequent = false;
                    break;
                }
            }
            if all_subsets_frequent {
                out.push(cand);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_canonical;

    fn db() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 1.0),
            ("a b c", 1.0),
            ("a b c", 1.0),
            ("a b c d", 1.0),
        ])
    }

    #[test]
    fn mines_table_ii_as_exact_data() {
        let d = db();
        let mut fis = frequent_itemsets_apriori(&d, 2);
        sort_canonical(&mut fis);
        // All 2^3-1 subsets of {a,b,c} have support 4, all subsets
        // containing d have support 2: 15 frequent itemsets.
        assert_eq!(fis.len(), 15);
        assert!(fis.iter().all(|m| {
            if m.items.len() == 4 || m.items.contains(&d.dictionary().get("d").unwrap()) {
                m.support == 2
            } else {
                m.support == 4
            }
        }));
    }

    #[test]
    fn min_sup_above_db_size_yields_nothing() {
        assert!(frequent_itemsets_apriori(&db(), 5).is_empty());
    }

    #[test]
    fn min_sup_zero_is_treated_as_one() {
        let fis = frequent_itemsets_apriori(&db(), 0);
        assert_eq!(fis.len(), 15);
    }

    #[test]
    fn empty_database_yields_nothing() {
        let empty = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(frequent_itemsets_apriori(&empty, 1).is_empty());
    }

    #[test]
    fn candidate_generation_requires_shared_prefix() {
        // {a,b} and {c,d} share no prefix: no 3-candidate from them.
        let level = vec![vec![Item(0), Item(1)], vec![Item(2), Item(3)]];
        assert!(generate_candidates(&level).is_empty());
    }

    #[test]
    fn candidate_generation_prunes_infrequent_subsets() {
        // {a,b}, {a,c} join to {a,b,c}, but {b,c} is not frequent.
        let level = vec![vec![Item(0), Item(1)], vec![Item(0), Item(2)]];
        assert!(generate_candidates(&level).is_empty());
        // Adding {b,c} makes the candidate survive.
        let level = vec![
            vec![Item(0), Item(1)],
            vec![Item(0), Item(2)],
            vec![Item(1), Item(2)],
        ];
        assert_eq!(
            generate_candidates(&level),
            vec![vec![Item(0), Item(1), Item(2)]]
        );
    }
}
