//! The Eclat algorithm (Zaki, 1997): depth-first mining over the vertical
//! layout, extending prefixes by tid-set intersection.
//!
//! Eclat's vertical representation is also the backbone of the
//! probabilistic miner in `pfcim-core`, so this exact version doubles as a
//! structural reference for it.

use utdb::{Item, TidSet, UncertainDatabase};

use crate::MinedItemset;

/// Mine all itemsets with support at least `min_sup` (≥ 1) depth-first.
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("a", 1.0)]);
/// let fis = fim::frequent_itemsets_eclat(&db, 1);
/// assert_eq!(fis.len(), 3); // {a}, {b}, {a,b}
/// ```
pub fn frequent_itemsets_eclat(db: &UncertainDatabase, min_sup: usize) -> Vec<MinedItemset> {
    let min_sup = min_sup.max(1);
    let mut results = Vec::new();
    // Frequent single items with their tidsets, ascending item order.
    let singles: Vec<(Item, TidSet)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .filter_map(|item| {
            let ts = db.tidset_of(item);
            (ts.count() >= min_sup).then(|| (item, ts.clone()))
        })
        .collect();
    let mut prefix = Vec::new();
    recurse(&singles, &mut prefix, min_sup, &mut results);
    results
}

/// Depth-first extension: `equiv` holds the extension items of the current
/// prefix with their tidsets *conditioned on the prefix*.
fn recurse(
    equiv: &[(Item, TidSet)],
    prefix: &mut Vec<Item>,
    min_sup: usize,
    results: &mut Vec<MinedItemset>,
) {
    for (idx, (item, tids)) in equiv.iter().enumerate() {
        prefix.push(*item);
        results.push(MinedItemset::new(prefix.clone(), tids.count()));
        // Build the conditional equivalence class for the new prefix.
        let mut child: Vec<(Item, TidSet)> = Vec::new();
        for (other, other_tids) in &equiv[idx + 1..] {
            let joint = tids.intersection(other_tids);
            if joint.count() >= min_sup {
                child.push((*other, joint));
            }
        }
        if !child.is_empty() {
            recurse(&child, prefix, min_sup, results);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sort_canonical;
    use crate::testutil::{brute_force_frequent, random_db};

    #[test]
    fn matches_brute_force() {
        let db = random_db(77, 25, 8, 0.5);
        for min_sup in [1, 2, 4, 8, 12] {
            let mut got = frequent_itemsets_eclat(&db, min_sup);
            sort_canonical(&mut got);
            assert_eq!(got, brute_force_frequent(&db, min_sup), "min_sup={min_sup}");
        }
    }

    #[test]
    fn respects_min_sup_boundary() {
        let db = UncertainDatabase::parse_symbolic(&[("a b", 1.0), ("a b", 1.0), ("a", 1.0)]);
        let at_two = frequent_itemsets_eclat(&db, 2);
        assert!(at_two.iter().any(|m| m.items.len() == 2 && m.support == 2));
        let at_three = frequent_itemsets_eclat(&db, 3);
        assert_eq!(at_three.len(), 1); // only {a} with support 3
    }

    #[test]
    fn deep_chains_are_explored() {
        // A single long transaction: every subset of it is frequent at 1.
        let db = UncertainDatabase::parse_symbolic(&[("a b c d e f", 1.0)]);
        let fis = frequent_itemsets_eclat(&db, 1);
        assert_eq!(fis.len(), (1 << 6) - 1);
    }

    #[test]
    fn empty_result_for_high_threshold() {
        let db = UncertainDatabase::parse_symbolic(&[("a", 1.0)]);
        assert!(frequent_itemsets_eclat(&db, 2).is_empty());
    }
}
