//! Exact union probabilities via the inclusion–exclusion principle.
//!
//! `Pr(∪A_i) = Σ_∅≠S⊆[m] (−1)^{|S|+1} Pr(∩_{i∈S} A_i)` — `2^m − 1` terms,
//! usable when the event family is small. In the miner this computes the
//! frequent non-closed probability exactly when an itemset has few
//! co-occurring extension items, avoiding sampling noise entirely.

/// Maximum family size accepted by [`exact_union_probability`]; beyond this
/// the `2^m` term count is impractical and callers should fall back to the
/// Karp–Luby estimator in [`crate::dnf`].
pub const MAX_EXACT_EVENTS: usize = 24;

/// Exact `Pr(A_1 ∪ … ∪ A_m)` given a callback returning the joint
/// probability `Pr(∩_{i∈S} A_i)` for any non-empty index subset `S`
/// (presented as a sorted slice of indices).
///
/// # Panics
///
/// Panics if `m > MAX_EXACT_EVENTS`.
///
/// # Examples
///
/// ```
/// use prob::exact_union_probability;
/// // Two independent events of probability 1/2.
/// let p = exact_union_probability(2, |s| 0.5f64.powi(s.len() as i32));
/// assert!((p - 0.75).abs() < 1e-12);
/// ```
pub fn exact_union_probability<F>(m: usize, mut joint: F) -> f64
where
    F: FnMut(&[usize]) -> f64,
{
    assert!(
        m <= MAX_EXACT_EVENTS,
        "inclusion-exclusion over {m} events exceeds the {MAX_EXACT_EVENTS}-event cap"
    );
    if m == 0 {
        return 0.0;
    }
    let mut subset = Vec::with_capacity(m);
    let mut total = 0.0f64;
    for mask in 1u32..(1u32 << m) {
        subset.clear();
        for i in 0..m {
            if mask >> i & 1 == 1 {
                subset.push(i);
            }
        }
        let term = joint(&subset);
        if subset.len() % 2 == 1 {
            total += term;
        } else {
            total -= term;
        }
    }
    crate::clamp_prob(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt as _, SeedableRng};

    #[test]
    fn empty_family_has_zero_union() {
        assert_eq!(exact_union_probability(0, |_| unreachable!()), 0.0);
    }

    #[test]
    fn single_event_is_identity() {
        let p = exact_union_probability(1, |s| {
            assert_eq!(s, &[0]);
            0.37
        });
        assert!((p - 0.37).abs() < 1e-12);
    }

    #[test]
    fn independent_events_match_complement_product() {
        // Pr(∪) = 1 - Π (1 - p_i) for independent events.
        let probs = [0.3, 0.5, 0.2, 0.7];
        let p = exact_union_probability(probs.len(), |s| s.iter().map(|&i| probs[i]).product());
        let expected = 1.0 - probs.iter().map(|p| 1.0 - p).product::<f64>();
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn matches_direct_world_enumeration() {
        // Random events over a discrete world space; inclusion-exclusion
        // must agree with direct measurement of the union.
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..50 {
            let worlds = 20;
            let m = 5;
            let mut wp: Vec<f64> = (0..worlds).map(|_| rng.random::<f64>()).collect();
            let tot: f64 = wp.iter().sum();
            wp.iter_mut().for_each(|p| *p /= tot);
            let masks: Vec<Vec<bool>> = (0..m)
                .map(|_| (0..worlds).map(|_| rng.random::<f64>() < 0.4).collect())
                .collect();
            let by_ie = exact_union_probability(m, |s| {
                (0..worlds)
                    .filter(|&w| s.iter().all(|&i| masks[i][w]))
                    .map(|w| wp[w])
                    .sum()
            });
            let direct: f64 = (0..worlds)
                .filter(|&w| masks.iter().any(|mk| mk[w]))
                .map(|w| wp[w])
                .sum();
            assert!((by_ie - direct).abs() < 1e-9, "{by_ie} vs {direct}");
        }
    }

    #[test]
    fn result_dominates_pairwise_bounds() {
        use crate::union_bounds::PairwiseUnionBounds;
        let mut rng = SmallRng::seed_from_u64(29);
        for _ in 0..50 {
            let worlds = 16;
            let m = 4;
            let mut wp: Vec<f64> = (0..worlds).map(|_| rng.random::<f64>()).collect();
            let tot: f64 = wp.iter().sum();
            wp.iter_mut().for_each(|p| *p /= tot);
            let masks: Vec<Vec<bool>> = (0..m)
                .map(|_| (0..worlds).map(|_| rng.random::<f64>() < 0.35).collect())
                .collect();
            let joint = |s: &[usize]| -> f64 {
                (0..worlds)
                    .filter(|&w| s.iter().all(|&i| masks[i][w]))
                    .map(|w| wp[w])
                    .sum()
            };
            let exact = exact_union_probability(m, joint);
            let mut b = PairwiseUnionBounds::new((0..m).map(|i| joint(&[i])).collect::<Vec<_>>());
            for i in 0..m {
                for j in i + 1..m {
                    b.set_pair(i, j, joint(&[i, j]));
                }
            }
            assert!(b.lower() <= exact + 1e-9);
            assert!(exact <= b.upper() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_oversized_families() {
        exact_union_probability(MAX_EXACT_EVENTS + 1, |_| 0.0);
    }
}
