//! Gaussian sampling via the Box–Muller transform.
//!
//! The evaluation of the paper assigns each transaction an existential
//! probability drawn from a Gaussian distribution (e.g. `N(0.5, 0.5)` for
//! Mushroom, `N(0.8, 0.1)` for the synthetic dataset) and clamps it into a
//! valid probability range. `rand_distr` is not available in the offline
//! dependency set, so the transform is implemented here.

use rand::{Rng, RngExt};

/// Draw one standard-normal variate using the Box–Muller transform.
///
/// One of the two variates the transform yields is discarded; sampling here
/// is never on a hot path (datasets are generated once per run).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 ∈ (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Draw from `N(mean, variance)` and clamp into `[lo, hi]`.
///
/// The paper's experimental protocol: a Gaussian-distributed existential
/// probability, forced to remain a usable probability. `lo` is typically a
/// small positive value (a tuple with probability exactly 0 never exists
/// and would be dropped from the database instead).
///
/// # Panics
///
/// Panics if `variance < 0` or `lo > hi`.
pub fn clamped_gaussian<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    variance: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(variance >= 0.0, "variance must be non-negative");
    assert!(lo <= hi, "empty clamp interval");
    let x = mean + variance.sqrt() * standard_normal(rng);
    x.clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum_sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn clamped_gaussian_stays_in_range() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let p = clamped_gaussian(&mut rng, 0.5, 0.5, 0.01, 1.0);
            assert!((0.01..=1.0).contains(&p));
        }
    }

    #[test]
    fn zero_variance_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(clamped_gaussian(&mut rng, 0.8, 0.0, 0.0, 1.0), 0.8);
        }
    }

    #[test]
    fn high_variance_actually_clamps() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..10_000 {
            let p = clamped_gaussian(&mut rng, 0.5, 2.0, 0.05, 0.95);
            hit_lo |= p == 0.05;
            hit_hi |= p == 0.95;
        }
        assert!(hit_lo && hit_hi, "wide Gaussian should reach both clamps");
    }

    #[test]
    #[should_panic(expected = "variance")]
    fn rejects_negative_variance() {
        let mut rng = SmallRng::seed_from_u64(1);
        clamped_gaussian(&mut rng, 0.5, -1.0, 0.0, 1.0);
    }
}
