//! Analytic approximations of the Poisson–binomial tail.
//!
//! The exact `O(n·k)` dynamic program dominates the miner's candidate
//! qualification cost. The literature the paper builds on (Wang, Cheung &
//! Cheng's Poisson-approximation miner; the standard normal approximation
//! of Poisson–binomial sums) trades exactness for `O(n)` evaluation.
//! These are provided both as benchmarkable accelerations and as sanity
//! oracles for the exact DP:
//!
//! * [`tail_normal`] — central-limit approximation with continuity
//!   correction;
//! * [`tail_refined_normal`] — the refined normal approximation (RNA) of
//!   Volkova, adding a skewness correction term;
//! * [`tail_poisson`] — Poisson approximation, with the **Le Cam** bound
//!   `‖PB − Poisson(μ)‖_TV ≤ 2 Σ p_i²` quantifying its worst-case error.

/// Moments of a Poisson–binomial distribution needed by the
/// approximations: mean, variance, and third central moment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonBinomialMoments {
    /// `μ = Σ p_i`.
    pub mean: f64,
    /// `σ² = Σ p_i (1 − p_i)`.
    pub variance: f64,
    /// `Σ p_i (1 − p_i)(1 − 2 p_i)` — drives the skewness correction.
    pub third_central: f64,
}

impl PoissonBinomialMoments {
    /// Compute the moments in one pass.
    pub fn of(probs: &[f64]) -> Self {
        let mut mean = 0.0;
        let mut variance = 0.0;
        let mut third = 0.0;
        for &p in probs {
            let q = 1.0 - p;
            mean += p;
            variance += p * q;
            third += p * q * (1.0 - 2.0 * p);
        }
        Self {
            mean,
            variance,
            third_central: third,
        }
    }

    /// Skewness `γ = m₃ / σ³` (zero for symmetric distributions).
    pub fn skewness(&self) -> f64 {
        if self.variance <= 0.0 {
            0.0
        } else {
            self.third_central / self.variance.powf(1.5)
        }
    }
}

/// Standard normal CDF via `erfc` (Abramowitz–Stegun 7.1.26 rational
/// approximation; absolute error < 1.5e-7 — ample for pruning bounds).
pub fn phi(x: f64) -> f64 {
    // Φ(x) = erfc(-x/√2) / 2
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function (rational approximation).
fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Normal approximation with continuity correction:
/// `Pr{S ≥ k} ≈ 1 − Φ((k − 1/2 − μ)/σ)`.
pub fn tail_normal(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let m = PoissonBinomialMoments::of(probs);
    if m.variance <= 0.0 {
        // Deterministic sum.
        return if m.mean >= k as f64 { 1.0 } else { 0.0 };
    }
    let sigma = m.variance.sqrt();
    let x = (k as f64 - 0.5 - m.mean) / sigma;
    crate::clamp_prob(1.0 - phi(x))
}

/// Refined normal approximation (RNA): adds the first Edgeworth
/// (skewness) correction `γ(1 − x²)φ_pdf(x)/6` to [`tail_normal`], which
/// markedly improves accuracy for skewed probability vectors.
pub fn tail_refined_normal(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let m = PoissonBinomialMoments::of(probs);
    if m.variance <= 0.0 {
        return if m.mean >= k as f64 { 1.0 } else { 0.0 };
    }
    let sigma = m.variance.sqrt();
    let x = (k as f64 - 0.5 - m.mean) / sigma;
    let pdf = (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt();
    let correction = m.skewness() * (1.0 - x * x) * pdf / 6.0;
    crate::clamp_prob(1.0 - (phi(x) + correction))
}

/// Poisson approximation `Pr{S ≥ k} ≈ Pr{Poisson(μ) ≥ k}`, best when all
/// `p_i` are small. Returns the approximate tail.
pub fn tail_poisson(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    let mu: f64 = probs.iter().sum();
    if mu == 0.0 {
        return 0.0;
    }
    // Pr{Poisson(mu) <= k-1} summed in log space for stability.
    let mut term = (-mu).exp(); // Pr{0}
    let mut cdf = term;
    for j in 1..k {
        term *= mu / j as f64;
        cdf += term;
    }
    crate::clamp_prob(1.0 - cdf)
}

/// The **Le Cam** total-variation bound between the Poisson–binomial law
/// and `Poisson(μ)`: `2 Σ p_i²`. Any event probability (in particular the
/// tail) computed under the Poisson approximation is within this bound of
/// the truth.
pub fn le_cam_bound(probs: &[f64]) -> f64 {
    2.0 * probs.iter().map(|p| p * p).sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson_binomial::tail_at_least;

    fn uniformish(n: usize, base: f64) -> Vec<f64> {
        (0..n).map(|i| base + 0.3 * (i as f64 / n as f64)).collect()
    }

    #[test]
    fn phi_matches_known_values() {
        assert!((phi(0.0) - 0.5).abs() < 1e-7);
        assert!((phi(1.0) - 0.8413447).abs() < 1e-6);
        assert!((phi(-1.0) - 0.1586553).abs() < 1e-6);
        assert!((phi(2.326_347_9) - 0.99).abs() < 1e-6);
        assert!(phi(8.0) > 1.0 - 1e-14);
    }

    #[test]
    fn moments_match_definitions() {
        let probs = [0.2, 0.5, 0.9];
        let m = PoissonBinomialMoments::of(&probs);
        assert!((m.mean - 1.6).abs() < 1e-12);
        assert!((m.variance - (0.16 + 0.25 + 0.09)).abs() < 1e-12);
        let third: f64 = probs.iter().map(|&p| p * (1.0 - p) * (1.0 - 2.0 * p)).sum();
        assert!((m.third_central - third).abs() < 1e-12);
    }

    #[test]
    fn normal_tail_is_close_for_large_n() {
        let probs = uniformish(400, 0.3);
        for frac in [0.25, 0.35, 0.45, 0.55] {
            let k = (frac * probs.len() as f64) as usize;
            let exact = tail_at_least(&probs, k);
            let approx = tail_normal(&probs, k);
            assert!(
                (exact - approx).abs() < 0.02,
                "k={k}: exact {exact} vs normal {approx}"
            );
        }
    }

    #[test]
    fn refined_normal_beats_plain_normal_on_skewed_input() {
        // Strongly skewed: most p_i small.
        let probs: Vec<f64> = (0..300)
            .map(|i| 0.02 + 0.1 * ((i % 7) as f64 / 7.0))
            .collect();
        let mut err_plain = 0.0f64;
        let mut err_rna = 0.0f64;
        for k in 10..40 {
            let exact = tail_at_least(&probs, k);
            err_plain += (exact - tail_normal(&probs, k)).abs();
            err_rna += (exact - tail_refined_normal(&probs, k)).abs();
        }
        assert!(
            err_rna <= err_plain + 1e-9,
            "RNA total error {err_rna} vs plain {err_plain}"
        );
    }

    #[test]
    fn poisson_tail_within_le_cam_bound() {
        // Small probabilities: Le Cam is tight.
        let probs: Vec<f64> = (0..500).map(|i| 0.002 + 0.004 * ((i % 5) as f64)).collect();
        let bound = le_cam_bound(&probs);
        for k in 0..12 {
            let exact = tail_at_least(&probs, k);
            let approx = tail_poisson(&probs, k);
            assert!(
                (exact - approx).abs() <= bound + 1e-12,
                "k={k}: |{exact} - {approx}| > {bound}"
            );
        }
    }

    #[test]
    fn all_approximations_agree_on_edges() {
        let probs = [0.4, 0.6, 0.2];
        for f in [tail_normal, tail_refined_normal, tail_poisson] {
            assert_eq!(f(&probs, 0), 1.0);
        }
        assert_eq!(tail_normal(&probs, 4), 0.0);
        assert_eq!(tail_refined_normal(&probs, 4), 0.0);
    }

    #[test]
    fn deterministic_vectors() {
        let ones = [1.0; 5];
        assert_eq!(tail_normal(&ones, 5), 1.0);
        assert_eq!(tail_normal(&ones, 3), 1.0);
        assert_eq!(tail_refined_normal(&ones, 5), 1.0);
        let zeros = [0.0; 5];
        assert_eq!(tail_normal(&zeros, 1), 0.0);
        assert_eq!(tail_poisson(&zeros, 1), 0.0);
    }

    #[test]
    fn le_cam_bound_scales_with_squares() {
        assert_eq!(le_cam_bound(&[]), 0.0);
        assert!((le_cam_bound(&[0.1, 0.2]) - 2.0 * (0.01 + 0.04)).abs() < 1e-12);
    }
}
