//! The Karp–Luby–Madras coverage estimator for union (DNF) probabilities.
//!
//! Computing `Pr(A_1 ∪ … ∪ A_m)` exactly is #P-hard in general (it
//! subsumes DNF counting), but the coverage algorithm of Karp, Luby &
//! Madras is a *fully polynomial randomized approximation scheme* (FPRAS):
//! with `N = ⌈4m · ln(2/δ) / ε²⌉` samples it returns an estimate within a
//! `(1 ± ε)` factor of the truth with probability at least `1 − δ`.
//!
//! The paper's `ApproxFCP` procedure (Fig. 2) is this estimator applied to
//! the family of frequent-non-closure events `C_i`; the abstraction here is
//! the generic [`UnionEventSystem`] so the algorithm can be tested against
//! synthetic event families independently of the miner.

use rand::{Rng, RngExt};

/// A family of probability events supporting the three oracles the
/// coverage algorithm needs: exact singleton probabilities, sampling a
/// world *conditioned* on one event, and membership checks of a world in
/// any event.
pub trait UnionEventSystem {
    /// Opaque representation of a sampled world.
    type World;

    /// Number of events in the family.
    fn num_events(&self) -> usize;

    /// Exact `Pr(A_i)`.
    fn event_prob(&self, i: usize) -> f64;

    /// Sample a world with law `Pr(· | A_i)`.
    fn sample_world_given(&self, i: usize, rng: &mut dyn Rng) -> Self::World;

    /// Does `world` satisfy event `j`?
    fn world_satisfies(&self, world: &Self::World, j: usize) -> bool;
}

/// Outcome of a coverage-estimator run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KarpLubyEstimate {
    /// Estimated `Pr(∪ A_i)`.
    pub estimate: f64,
    /// Number of samples drawn.
    pub samples: usize,
    /// Total singleton mass `Z = Σ Pr(A_i)` (the normalizing constant).
    pub total_mass: f64,
}

/// Number of coverage samples required for an `(ε, δ)` relative-error
/// guarantee over `m` events: `⌈4m · ln(2/δ) / ε²⌉`.
///
/// # Panics
///
/// Panics unless `0 < ε` and `0 < δ < 1`.
pub fn required_samples(m: usize, epsilon: f64, delta: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let n = 4.0 * m as f64 * (2.0 / delta).ln() / (epsilon * epsilon);
    n.ceil() as usize
}

/// Estimate `Pr(A_1 ∪ … ∪ A_m)` with the coverage algorithm at the
/// `(ε, δ)` sample size.
pub fn karp_luby_union<S, R>(system: &S, epsilon: f64, delta: f64, rng: &mut R) -> KarpLubyEstimate
where
    S: UnionEventSystem,
    R: Rng,
{
    let n = required_samples(system.num_events(), epsilon, delta);
    karp_luby_union_with_samples(system, n, rng)
}

/// Coverage algorithm with an explicit sample budget.
///
/// Each sample draws an event index `i` with probability `Pr(A_i)/Z`, then
/// a world `ω ~ Pr(· | A_i)`, and scores 1 iff `i` is the *first* event
/// containing `ω`. The expectation of the score is `Pr(∪A)/Z`, because the
/// pairs `(i, ω)` with `ω ∈ A_i` and `i = min{j : ω ∈ A_j}` partition the
/// union.
pub fn karp_luby_union_with_samples<S, R>(
    system: &S,
    samples: usize,
    rng: &mut R,
) -> KarpLubyEstimate
where
    S: UnionEventSystem,
    R: Rng,
{
    let m = system.num_events();
    // Cumulative singleton mass for event selection.
    let mut cumulative = Vec::with_capacity(m);
    let mut z = 0.0f64;
    for i in 0..m {
        let p = system.event_prob(i);
        debug_assert!((0.0..=1.0 + crate::PROB_EPS).contains(&p));
        z += p;
        cumulative.push(z);
    }
    if m == 0 || z <= 0.0 {
        return KarpLubyEstimate {
            estimate: 0.0,
            samples: 0,
            total_mass: 0.0,
        };
    }
    let mut hits = 0usize;
    for _ in 0..samples {
        let u = rng.random::<f64>() * z;
        let i = match cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
        .min(m - 1);
        // Skip zero-probability events the search may land on.
        if system.event_prob(i) == 0.0 {
            continue;
        }
        let world = system.sample_world_given(i, rng);
        debug_assert!(
            system.world_satisfies(&world, i),
            "conditional sample must satisfy its own event"
        );
        let canonical = (0..i).all(|j| !system.world_satisfies(&world, j));
        hits += canonical as usize;
    }
    let estimate = crate::clamp_prob(z * hits as f64 / samples.max(1) as f64).min(z);
    KarpLubyEstimate {
        estimate,
        samples,
        total_mass: z,
    }
}

/// Outcome of the adaptive (stopping-rule) estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveEstimate {
    /// Estimated `Pr(∪ A_i)`.
    pub estimate: f64,
    /// Samples actually drawn.
    pub samples: usize,
    /// Total singleton mass `Z`.
    pub total_mass: f64,
    /// False when the sample cap was hit before the stopping rule fired
    /// (the estimate is then the plain mean over the drawn samples and
    /// the `(ε, δ)` guarantee does not apply).
    pub converged: bool,
}

/// Adaptive coverage estimation via the **stopping-rule algorithm** of
/// Dagum, Karp, Luby & Ross ("An optimal algorithm for Monte Carlo
/// estimation"): draw coverage samples until the number of successes
/// reaches `Υ = 1 + 4(e−2)(1+ε)·ln(2/δ)/ε²`, then estimate
/// `Z · Υ / N`. The expected sample count is `O(Υ · Z / Pr(∪A))` — it
/// *adapts* to the unknown value instead of paying the fixed
/// `4m·ln(2/δ)/ε²` worst case of [`karp_luby_union_with_samples`], which
/// is a large saving exactly when the union is not small relative to `Z`
/// (the common case for the miner's non-closure families).
///
/// `max_samples` caps the loop for unions that are tiny relative to `Z`;
/// when hit, the plain sample mean is returned with `converged = false`.
pub fn karp_luby_union_adaptive<S, R>(
    system: &S,
    epsilon: f64,
    delta: f64,
    max_samples: usize,
    rng: &mut R,
) -> AdaptiveEstimate
where
    S: UnionEventSystem,
    R: Rng,
{
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!((0.0..1.0).contains(&delta) && delta > 0.0, "delta in (0,1)");
    let m = system.num_events();
    let mut cumulative = Vec::with_capacity(m);
    let mut z = 0.0f64;
    for i in 0..m {
        let p = system.event_prob(i);
        z += p;
        cumulative.push(z);
    }
    if m == 0 || z <= 0.0 {
        return AdaptiveEstimate {
            estimate: 0.0,
            samples: 0,
            total_mass: 0.0,
            converged: true,
        };
    }
    let upsilon = 1.0
        + 4.0 * (std::f64::consts::E - 2.0) * (1.0 + epsilon) * (2.0 / delta).ln()
            / (epsilon * epsilon);
    let mut hits = 0usize;
    let mut drawn = 0usize;
    while (hits as f64) < upsilon && drawn < max_samples {
        drawn += 1;
        let u = rng.random::<f64>() * z;
        let i = match cumulative.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(idx) => idx + 1,
            Err(idx) => idx,
        }
        .min(m - 1);
        if system.event_prob(i) == 0.0 {
            continue;
        }
        let world = system.sample_world_given(i, rng);
        let canonical = (0..i).all(|j| !system.world_satisfies(&world, j));
        hits += canonical as usize;
    }
    let converged = (hits as f64) >= upsilon;
    let ratio = if converged {
        upsilon / drawn as f64
    } else {
        hits as f64 / drawn.max(1) as f64
    };
    AdaptiveEstimate {
        estimate: crate::clamp_prob(z * ratio).min(z),
        samples: drawn,
        total_mass: z,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Test system: worlds are bit-vectors of independent Bernoulli
    /// variables; event i = "bit i is set".
    struct IndependentBits {
        probs: Vec<f64>,
    }

    impl UnionEventSystem for IndependentBits {
        type World = Vec<bool>;

        fn num_events(&self) -> usize {
            self.probs.len()
        }

        fn event_prob(&self, i: usize) -> f64 {
            self.probs[i]
        }

        fn sample_world_given(&self, i: usize, rng: &mut dyn Rng) -> Vec<bool> {
            self.probs
                .iter()
                .enumerate()
                .map(|(j, &p)| j == i || rng.random::<f64>() < p)
                .collect()
        }

        fn world_satisfies(&self, world: &Vec<bool>, j: usize) -> bool {
            world[j]
        }
    }

    /// Test system with perfectly correlated events: one latent Bernoulli
    /// bit, every event is that same bit. Union = p regardless of m.
    struct FullyCorrelated {
        p: f64,
        m: usize,
    }

    impl UnionEventSystem for FullyCorrelated {
        type World = bool;

        fn num_events(&self) -> usize {
            self.m
        }

        fn event_prob(&self, _i: usize) -> f64 {
            self.p
        }

        fn sample_world_given(&self, _i: usize, _rng: &mut dyn Rng) -> bool {
            true
        }

        fn world_satisfies(&self, world: &bool, _j: usize) -> bool {
            *world
        }
    }

    #[test]
    fn independent_events_estimate_matches_closed_form() {
        let sys = IndependentBits {
            probs: vec![0.3, 0.4, 0.2, 0.1],
        };
        let exact = 1.0 - 0.7 * 0.6 * 0.8 * 0.9;
        let mut rng = SmallRng::seed_from_u64(101);
        let est = karp_luby_union(&sys, 0.05, 0.05, &mut rng);
        assert!(
            (est.estimate - exact).abs() <= 0.05 * exact + 0.01,
            "estimate {} vs exact {exact}",
            est.estimate
        );
    }

    #[test]
    fn correlated_events_do_not_overcount() {
        // The naive union bound would give m*p; the coverage estimator must
        // return ~p.
        let sys = FullyCorrelated { p: 0.4, m: 10 };
        let mut rng = SmallRng::seed_from_u64(7);
        let est = karp_luby_union(&sys, 0.05, 0.05, &mut rng);
        assert!((est.estimate - 0.4).abs() < 0.03, "{}", est.estimate);
        assert!((est.total_mass - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_family_yields_zero() {
        let sys = IndependentBits { probs: vec![] };
        let mut rng = SmallRng::seed_from_u64(1);
        let est = karp_luby_union(&sys, 0.1, 0.1, &mut rng);
        assert_eq!(est.estimate, 0.0);
        assert_eq!(est.total_mass, 0.0);
    }

    #[test]
    fn zero_probability_events_are_harmless() {
        let sys = IndependentBits {
            probs: vec![0.0, 0.5, 0.0],
        };
        let mut rng = SmallRng::seed_from_u64(3);
        let est = karp_luby_union(&sys, 0.05, 0.05, &mut rng);
        assert!((est.estimate - 0.5).abs() < 0.03, "{}", est.estimate);
    }

    #[test]
    fn certain_event_dominates() {
        let sys = IndependentBits {
            probs: vec![1.0, 0.2, 0.3],
        };
        let mut rng = SmallRng::seed_from_u64(4);
        let est = karp_luby_union(&sys, 0.05, 0.05, &mut rng);
        assert!((est.estimate - 1.0).abs() < 0.02, "{}", est.estimate);
    }

    #[test]
    fn adaptive_matches_closed_form_and_converges() {
        let sys = IndependentBits {
            probs: vec![0.3, 0.4, 0.2, 0.1],
        };
        let exact = 1.0 - 0.7 * 0.6 * 0.8 * 0.9;
        let mut rng = SmallRng::seed_from_u64(55);
        let est = karp_luby_union_adaptive(&sys, 0.05, 0.05, usize::MAX, &mut rng);
        assert!(est.converged);
        assert!(
            (est.estimate - exact).abs() <= 0.05 * exact + 0.01,
            "{} vs {exact}",
            est.estimate
        );
    }

    #[test]
    fn adaptive_needs_fewer_samples_when_union_is_large() {
        // One dominant event plus many negligible ones: Z ≈ Pr(∪), so
        // the stopping rule fires after ~Υ samples regardless of m — far
        // below the fixed-N worst case of 4m·ln(2/δ)/ε².
        let mut probs = vec![0.9];
        probs.extend(std::iter::repeat_n(1e-3, 11));
        let sys = IndependentBits { probs };
        let mut rng = SmallRng::seed_from_u64(66);
        let adaptive = karp_luby_union_adaptive(&sys, 0.1, 0.1, usize::MAX, &mut rng);
        let fixed_n = required_samples(12, 0.1, 0.1);
        assert!(adaptive.converged);
        assert!(
            adaptive.samples * 2 < fixed_n,
            "adaptive {} vs fixed {fixed_n}",
            adaptive.samples
        );
    }

    #[test]
    fn adaptive_cap_is_respected() {
        // A tiny union forces the cap; the fallback estimate is the plain
        // mean and converged is false.
        let sys = IndependentBits {
            probs: vec![1e-9, 1e-9],
        };
        let mut rng = SmallRng::seed_from_u64(77);
        let est = karp_luby_union_adaptive(&sys, 0.1, 0.1, 500, &mut rng);
        assert!(!est.converged || est.samples <= 500);
        assert!(est.samples <= 500);
        assert!(est.estimate <= est.total_mass);
    }

    #[test]
    fn adaptive_empty_family() {
        let sys = IndependentBits { probs: vec![] };
        let mut rng = SmallRng::seed_from_u64(1);
        let est = karp_luby_union_adaptive(&sys, 0.1, 0.1, 100, &mut rng);
        assert_eq!(est.estimate, 0.0);
        assert!(est.converged);
    }

    #[test]
    fn sample_size_formula() {
        // 4 * 10 * ln(20) / 0.01 = 11982.9...
        assert_eq!(required_samples(10, 0.1, 0.1), 11983);
        assert_eq!(required_samples(0, 0.1, 0.1), 0);
        // Tighter epsilon quadratically increases samples.
        assert!(required_samples(10, 0.05, 0.1) > 4 * required_samples(10, 0.1, 0.1) - 4);
    }

    #[test]
    fn estimate_never_exceeds_total_mass_or_one() {
        let sys = IndependentBits {
            probs: vec![0.9, 0.9, 0.9],
        };
        let mut rng = SmallRng::seed_from_u64(5);
        let est = karp_luby_union_with_samples(&sys, 2_000, &mut rng);
        assert!(est.estimate <= 1.0);
        assert!(est.estimate <= est.total_mass);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_nonpositive_epsilon() {
        required_samples(3, 0.0, 0.1);
    }
}
