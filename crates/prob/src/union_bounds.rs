//! Bounds on `Pr(A_1 ∪ … ∪ A_m)` from singleton and pairwise joint
//! probabilities.
//!
//! Lemma 4.4 of the paper sandwiches the frequent closed probability
//! `Pr_FC(X) = Pr_F(X) − Pr(∪ C_i)` using:
//!
//! * the **de Caen** lower bound
//!   `Pr(∪A_i) ≥ Σ_i Pr(A_i)² / Σ_j Pr(A_i ∩ A_j)` (the denominator sums
//!   over all `j`, including `j = i`), and
//! * the **Kwerel** upper bound
//!   `Pr(∪A_i) ≤ min{ Σ_i Pr(A_i) − (2/m) Σ_{i<j} Pr(A_i ∩ A_j), 1 }`.
//!
//! Both need only `O(m²)` joint probabilities instead of the `2^m` terms of
//! full inclusion–exclusion. This module additionally tightens with the
//! classical Bonferroni bounds (`S1 − S2 ≤ Pr(∪) ≤ S1`) and the trivial
//! `max_i Pr(A_i) ≤ Pr(∪)`, all of which are always valid.

/// Singleton and pairwise probabilities of a family of events, with the
/// derived union bounds.
///
/// # Examples
///
/// ```
/// use prob::PairwiseUnionBounds;
/// // Two independent events of probability 1/2: union = 3/4.
/// let mut b = PairwiseUnionBounds::new(vec![0.5, 0.5]);
/// b.set_pair(0, 1, 0.25);
/// assert!(b.lower() <= 0.75 && 0.75 <= b.upper());
/// ```
#[derive(Debug, Clone)]
pub struct PairwiseUnionBounds {
    singles: Vec<f64>,
    /// Upper-triangular pairwise joints, row-major: entry for `(i, j)` with
    /// `i < j` lives at `pair_index(i, j)`.
    pairs: Vec<f64>,
    /// Total probability mass of events dropped from the family (see
    /// [`Self::with_dropped_mass`]); added to the upper bound to keep it
    /// sound for the *full* union.
    dropped_mass: f64,
}

impl PairwiseUnionBounds {
    /// Create from singleton probabilities; pairwise joints start at zero
    /// (i.e. assumed disjoint) and should be filled via [`Self::set_pair`].
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(singles: Vec<f64>) -> Self {
        for &p in &singles {
            assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        }
        let m = singles.len();
        Self {
            singles,
            pairs: vec![0.0; m * m.saturating_sub(1) / 2],
            dropped_mass: 0.0,
        }
    }

    /// Record that events with total singleton probability `mass` were
    /// dropped from the family for efficiency. The union of the full family
    /// is at most the union of the kept events plus `mass`, so `mass` is
    /// added to [`Self::upper`]; [`Self::lower`] needs no correction (the
    /// union over a sub-family is a valid lower bound for the full union).
    pub fn with_dropped_mass(mut self, mass: f64) -> Self {
        assert!(mass >= 0.0, "dropped mass must be non-negative");
        self.dropped_mass = mass;
        self
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.singles.len()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.singles.is_empty()
    }

    fn pair_index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j && j < self.singles.len());
        let m = self.singles.len();
        // Row i starts after rows 0..i, row r holding (m - 1 - r) entries.
        i * (2 * m - i - 1) / 2 + (j - i - 1)
    }

    /// Set `Pr(A_i ∩ A_j)` for `i ≠ j`.
    ///
    /// # Panics
    ///
    /// Panics if `i == j`, an index is out of range, or the joint exceeds
    /// either marginal (up to numerical slack).
    pub fn set_pair(&mut self, i: usize, j: usize, p: f64) {
        assert!(i != j, "pairwise joint requires distinct events");
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        assert!(
            p <= self.singles[i].min(self.singles[j]) + crate::PROB_EPS,
            "joint {p} exceeds a marginal"
        );
        let idx = self.pair_index(i, j);
        self.pairs[idx] = crate::clamp_prob(p);
    }

    /// `Pr(A_i ∩ A_j)`.
    pub fn pair(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return self.singles[i];
        }
        let (i, j) = if i < j { (i, j) } else { (j, i) };
        self.pairs[self.pair_index(i, j)]
    }

    /// `Pr(A_i)`.
    pub fn single(&self, i: usize) -> f64 {
        self.singles[i]
    }

    /// First Bonferroni sum `S1 = Σ Pr(A_i)`.
    pub fn s1(&self) -> f64 {
        self.singles.iter().sum()
    }

    /// Second Bonferroni sum `S2 = Σ_{i<j} Pr(A_i ∩ A_j)`.
    pub fn s2(&self) -> f64 {
        self.pairs.iter().sum()
    }

    /// de Caen's lower bound on the union probability.
    pub fn de_caen_lower(&self) -> f64 {
        let mut total = 0.0;
        for (i, &pi) in self.singles.iter().enumerate() {
            if pi <= 0.0 {
                continue;
            }
            let mut denom = 0.0;
            for j in 0..self.singles.len() {
                denom += self.pair(i, j);
            }
            if denom > 0.0 {
                total += pi * pi / denom;
            }
        }
        crate::clamp_prob(total)
    }

    /// Kwerel's upper bound `S1 − (2/m)·S2` on the union probability.
    pub fn kwerel_upper(&self) -> f64 {
        let m = self.singles.len();
        if m == 0 {
            return 0.0;
        }
        crate::clamp_prob(self.s1() - 2.0 * self.s2() / m as f64)
    }

    /// Best available lower bound on `Pr(∪ A_i)` over the *full* family:
    /// the maximum of de Caen, Bonferroni `S1 − S2`, and `max_i Pr(A_i)`.
    pub fn lower(&self) -> f64 {
        let max_single = self.singles.iter().cloned().fold(0.0, f64::max);
        let bonferroni = crate::clamp_prob(self.s1() - self.s2());
        self.de_caen_lower().max(bonferroni).max(max_single)
    }

    /// Best available upper bound on `Pr(∪ A_i)` over the *full* family:
    /// the minimum of Kwerel and union-bound `S1`, plus any dropped mass,
    /// clamped to 1.
    pub fn upper(&self) -> f64 {
        if self.singles.is_empty() {
            return crate::clamp_prob(self.dropped_mass);
        }
        let kept = self.kwerel_upper().min(self.s1());
        crate::clamp_prob(kept + self.dropped_mass)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{RngExt as _, SeedableRng};

    /// Random family of events over a small discrete world space, with the
    /// exact union probability to check the bounds against.
    fn random_family(rng: &mut SmallRng, m: usize, worlds: usize) -> (PairwiseUnionBounds, f64) {
        // world probabilities
        let mut wp: Vec<f64> = (0..worlds).map(|_| rng.random::<f64>()).collect();
        let total: f64 = wp.iter().sum();
        for p in &mut wp {
            *p /= total;
        }
        // event membership masks
        let masks: Vec<Vec<bool>> = (0..m)
            .map(|_| (0..worlds).map(|_| rng.random::<f64>() < 0.3).collect())
            .collect();
        let prob_of = |pred: &dyn Fn(usize) -> bool| -> f64 {
            (0..worlds).filter(|&w| pred(w)).map(|w| wp[w]).sum()
        };
        let singles: Vec<f64> = masks.iter().map(|mk| prob_of(&|w| mk[w])).collect();
        let mut b = PairwiseUnionBounds::new(singles);
        for i in 0..m {
            for j in i + 1..m {
                b.set_pair(i, j, prob_of(&|w| masks[i][w] && masks[j][w]));
            }
        }
        let union = prob_of(&|w| masks.iter().any(|mk| mk[w]));
        (b, union)
    }

    #[test]
    fn bounds_sandwich_exact_union() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..200 {
            let m = 1 + (trial % 6);
            let (b, union) = random_family(&mut rng, m, 16);
            assert!(
                b.lower() <= union + 1e-9,
                "trial {trial}: lower {} > union {union}",
                b.lower()
            );
            assert!(
                union <= b.upper() + 1e-9,
                "trial {trial}: union {union} > upper {}",
                b.upper()
            );
        }
    }

    #[test]
    fn de_caen_below_kwerel() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let (b, _) = random_family(&mut rng, 4, 12);
            assert!(b.de_caen_lower() <= b.upper() + 1e-12);
        }
    }

    #[test]
    fn disjoint_events_are_exact() {
        // Three disjoint events: all bounds collapse to S1.
        let mut b = PairwiseUnionBounds::new(vec![0.2, 0.3, 0.1]);
        for i in 0..3 {
            for j in i + 1..3 {
                b.set_pair(i, j, 0.0);
            }
        }
        assert!((b.lower() - 0.6).abs() < 1e-12);
        assert!((b.upper() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn identical_events_lower_bound_is_tight() {
        // Two copies of the same event of probability 0.4.
        let mut b = PairwiseUnionBounds::new(vec![0.4, 0.4]);
        b.set_pair(0, 1, 0.4);
        assert!((b.lower() - 0.4).abs() < 1e-12);
        assert!(b.upper() >= 0.4);
    }

    #[test]
    fn empty_family() {
        let b = PairwiseUnionBounds::new(vec![]);
        assert_eq!(b.lower(), 0.0);
        assert_eq!(b.upper(), 0.0);
        assert!(b.is_empty());
    }

    #[test]
    fn dropped_mass_inflates_upper_only() {
        let b = PairwiseUnionBounds::new(vec![0.2]).with_dropped_mass(0.05);
        assert!((b.upper() - 0.25).abs() < 1e-12);
        assert!((b.lower() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dropped_mass_soundness_against_full_family() {
        // Drop one event from a family and verify upper() still dominates
        // the exact union of the *full* family.
        let mut rng = SmallRng::seed_from_u64(99);
        for _ in 0..100 {
            let (full, union) = random_family(&mut rng, 5, 16);
            let kept: Vec<f64> = (0..4).map(|i| full.single(i)).collect();
            let mut sub = PairwiseUnionBounds::new(kept).with_dropped_mass(full.single(4));
            for i in 0..4 {
                for j in i + 1..4 {
                    sub.set_pair(i, j, full.pair(i, j));
                }
            }
            assert!(union <= sub.upper() + 1e-9);
            assert!(sub.lower() <= union + 1e-9);
        }
    }

    #[test]
    fn pair_index_layout_is_bijective() {
        let m = 7;
        let b = PairwiseUnionBounds::new(vec![0.1; m]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..m {
            for j in i + 1..m {
                assert!(seen.insert(b.pair_index(i, j)));
            }
        }
        assert_eq!(seen.len(), m * (m - 1) / 2);
        assert_eq!(*seen.iter().max().unwrap(), m * (m - 1) / 2 - 1);
    }

    #[test]
    #[should_panic(expected = "exceeds a marginal")]
    fn rejects_joint_above_marginal() {
        let mut b = PairwiseUnionBounds::new(vec![0.2, 0.3]);
        b.set_pair(0, 1, 0.25);
    }
}
