//! The Poisson–binomial distribution: the law of the number of successes in
//! independent, non-identically distributed Bernoulli trials.
//!
//! Under the tuple-uncertainty model, the support of an itemset `X` is
//! exactly Poisson–binomially distributed over the existence probabilities
//! of the transactions containing `X`. The *frequent probability*
//! `Pr_F(X) = Pr{ sup(X) ≥ min_sup }` is a tail of this distribution, and
//! the classic dynamic program of Bernecker et al. / Sun et al. computes it
//! in `O(n · min_sup)` time.

/// The exact distribution of a sum of independent Bernoulli variables.
///
/// Stores the full probability mass function, which costs `O(n²)` to build.
/// For the tail alone use [`tail_at_least`], which caps the DP at the
/// threshold and runs in `O(n · k)`.
///
/// # Examples
///
/// ```
/// use prob::SupportDistribution;
/// // Two fair coins: Pr{sum = 1} = 1/2, Pr{sum >= 1} = 3/4.
/// let d = SupportDistribution::new(&[0.5, 0.5]);
/// assert!((d.pmf(1) - 0.5).abs() < 1e-12);
/// assert!((d.tail(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SupportDistribution {
    pmf: Vec<f64>,
}

impl SupportDistribution {
    /// Build the full PMF from per-trial success probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(probs: &[f64]) -> Self {
        for &p in probs {
            assert!(
                (0.0..=1.0).contains(&p),
                "Bernoulli probability {p} outside [0, 1]"
            );
        }
        let mut pmf = vec![0.0f64; probs.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Process counts descending so each trial is used exactly once.
            for j in (0..=i).rev() {
                pmf[j + 1] += pmf[j] * p;
                pmf[j] *= 1.0 - p;
            }
        }
        Self { pmf }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `Pr{ S = j }`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `Pr{ S ≥ j }`; one for `j = 0`, zero for `j > n`.
    pub fn tail(&self, j: usize) -> f64 {
        if j == 0 {
            return 1.0;
        }
        crate::clamp_prob(self.pmf.iter().skip(j).sum())
    }

    /// `Pr{ S ≤ j }`.
    pub fn cdf(&self, j: usize) -> f64 {
        crate::clamp_prob(self.pmf.iter().take(j + 1).sum())
    }

    /// The mean `Σ p_i` recovered from the PMF.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    /// Full PMF as a slice, indexed by success count.
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Incorporate one more Bernoulli trial in `O(n)` — incremental
    /// support-distribution maintenance as an itemset's tid-set grows.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn push(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        let n = self.pmf.len();
        self.pmf.push(0.0);
        for j in (0..n).rev() {
            self.pmf[j + 1] += self.pmf[j] * p;
            self.pmf[j] *= 1.0 - p;
        }
    }
}

/// `Pr{ S ≥ k }` for `S` the sum of independent Bernoulli trials with the
/// given success probabilities, via the threshold-capped dynamic program.
///
/// Runs in `O(n · min(k, n))` time and `O(min(k, n))` space. This is the
/// polynomial-time frequent-probability routine the paper builds on
/// (Definition 3.4); state `k` of the DP is absorbing ("already ≥ k").
///
/// # Examples
///
/// ```
/// use prob::poisson_binomial::tail_at_least;
/// // Paper running example, itemset {a,b,c,d} ⊆ T1, T4 with probs .9, .9:
/// // Pr{sup ≥ 2} = 0.81.
/// assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
/// ```
pub fn tail_at_least(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let mut buf = vec![0.0f64; k + 1];
    tail_at_least_with(probs, k, &mut buf)
}

/// As [`tail_at_least`], but reusing a caller-provided scratch buffer of
/// length at least `k + 1` to avoid per-call allocation in hot loops.
pub fn tail_at_least_with(probs: &[f64], k: usize, scratch: &mut [f64]) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let f = &mut scratch[..=k];
    f.fill(0.0);
    f[0] = 1.0;
    // Highest non-absorbing state occupied before the current trial; caps
    // the inner loop while fewer than `k` trials have been processed.
    let mut hi = 0usize;
    for &p in probs {
        let q = 1.0 - p;
        if hi >= k - 1 {
            // Absorbing transition into "support already ≥ k".
            f[k] += f[k - 1] * p;
        }
        let top = (hi + 1).min(k - 1);
        for j in (1..=top).rev() {
            f[j] = f[j] * q + f[j - 1] * p;
        }
        f[0] *= q;
        if hi < k {
            hi += 1;
        }
    }
    crate::clamp_prob(f[k])
}

/// Expected value `Σ p_i` of the Poisson–binomial sum — the *expected
/// support* of the itemset in the expected-support model of Chui et al.
pub fn expected_value(probs: &[f64]) -> f64 {
    probs.iter().sum()
}

/// Entries this far below zero are treated as rounding noise and clamped;
/// anything lower fails a [`TailDp::try_remove`] downdate.
const DOWNDATE_NEG_TOL: f64 = 1e-9;

/// Why a [`TailDp::try_remove`] downdate was refused.
///
/// Each variant names the guard that fired, in the order the guards are
/// checked; the magnitude-carrying variants record *how far* past the
/// guard the request was, so callers can histogram near-misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RemovalRefusal {
    /// The row has zero trials absorbed; there is nothing to remove.
    Empty,
    /// `q = 1 − p` is below machine epsilon: the deconvolution would
    /// divide by (effectively) zero.
    Degenerate,
    /// The *measured* error bound of the downdated row exceeds the
    /// caller's tolerance, even after the log-domain fallback — a
    /// per-element accounting of rounding at the magnitudes actually
    /// encountered, not an a-priori `(p/q)^(k−1)` worst case.
    ErrTol {
        /// The projected absolute error of the downdated tail (the
        /// per-element bounds summed); compare against the `tol` the
        /// caller passed to [`TailDp::try_remove`]. When the fallback
        /// bails out early — the partial sum alone already exceeds the
        /// tolerance — this is a lower bound on the full total (still
        /// strictly above `tol`, which is all a refusal asserts).
        measured: f64,
    },
    /// A recovered head entry fell outside `[0, 1]` beyond rounding
    /// tolerance plus its tracked error bound, or the recovered head
    /// mass exceeded one.
    RowValidation {
        /// How far outside the valid range the worst entry (or the head
        /// sum) landed; always positive.
        violation: f64,
    },
}

impl RemovalRefusal {
    /// Stable machine-readable name of the refusal class.
    pub fn reason(&self) -> &'static str {
        match self {
            RemovalRefusal::Empty => "empty",
            RemovalRefusal::Degenerate => "degenerate",
            RemovalRefusal::ErrTol { .. } => "err_tol",
            RemovalRefusal::RowValidation { .. } => "row_validation",
        }
    }

    /// The refusal's magnitude, when the class carries one: the measured
    /// error bound for [`RemovalRefusal::ErrTol`], range excess for
    /// [`RemovalRefusal::RowValidation`].
    pub fn magnitude(&self) -> Option<f64> {
        match self {
            RemovalRefusal::ErrTol { measured } => Some(*measured),
            RemovalRefusal::RowValidation { violation } => Some(*violation),
            RemovalRefusal::Empty | RemovalRefusal::Degenerate => None,
        }
    }
}

/// An incrementally maintainable threshold DP for
/// `Pr{ S ≥ k }`: the *truncated head* `Pr{ S = j }` for `j < k` of a
/// Poisson–binomial sum, with the tail recovered as `1 − Σ head`.
///
/// Unlike the absorbing-state DP of [`tail_at_least`], this
/// representation is *invertible*: a Bernoulli trial can be divided back
/// out ([`TailDp::try_remove`]) because no mass was collapsed into an
/// absorbing "already ≥ k" state. That is what lets a depth-first miner
/// derive a child node's frequentness DP from its parent's in
/// `O(d · k)` for `d` dropped transactions instead of `O(n · k)` from
/// scratch.
///
/// # Numerical stability
///
/// Removal runs the forward deconvolution `f[j] = (g[j] − f[j−1]·p) / q`
/// with `q = 1 − p`, whose rounding error is amplified by up to
/// `(p/q)^(k−1)` across the row *in the worst case*. Rather than refuse
/// on that a-priori bound, the row tracks a per-element error bound
/// (maintained through [`TailDp::push`] and every accepted removal) at
/// the magnitudes actually encountered. The removal is computed with
/// compensated (Neumaier) accumulation into a staging buffer; when the
/// projected error still exceeds the caller's `tol` and `p > q`, the
/// risky elements are recomputed by log-domain deconvolution (the
/// explicit alternating series, max-rescaled and Kahan-summed), which
/// survives amplification factors far beyond `f64` range and measures
/// the true term magnitudes. Only if the measured bound *still* exceeds
/// `tol` is the removal refused. On a refused removal the row is
/// untouched (commit-on-success); the caller may keep using it or
/// rebuild.
///
/// # Examples
///
/// ```
/// use prob::poisson_binomial::TailDp;
/// let mut dp = TailDp::new(2);
/// for p in [0.9, 0.6, 0.7, 0.9] {
///     dp.push(p);
/// }
/// assert!((dp.tail() - 0.9726).abs() < 1e-12);
/// // Divide the 0.6 trial back out: Pr{sup ≥ 2} of {0.9, 0.7, 0.9}.
/// assert!(dp.try_remove(0.6, 1e-9));
/// let direct = prob::poisson_binomial::tail_at_least(&[0.9, 0.7, 0.9], 2);
/// assert!((dp.tail() - direct).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct TailDp {
    /// `head[j] = Pr{ S = j }` for `j < k`.
    head: Vec<f64>,
    /// Per-element upper bound on `|head[j] − exact|`. Maintained
    /// explicitly only once a removal has touched the row
    /// (`err_tracked`); pure push chains carry the closed-form relative
    /// bound `2·(trials+1)·ε·head[j]` implicitly instead, so the hot
    /// build path pays nothing for error accounting.
    err: Vec<f64>,
    /// Whether `err` is explicitly maintained. `false` means the row is
    /// a pure push chain and `err` is all zeros; the implicit bound is
    /// materialized by the first removal attempt.
    err_tracked: bool,
    k: usize,
    trials: usize,
    removals: u32,
    /// Staging buffers for the commit-on-success downdate; contents are
    /// meaningless between calls and excluded from `Clone`/`PartialEq`.
    scratch: Vec<f64>,
    scratch_err: Vec<f64>,
    /// Per-removal cache of `ln(head[i]) − ln(q)` (NaN for zero entries),
    /// shared by every risky element the log-domain fallback recomputes.
    scratch_ln: Vec<f64>,
}

impl Clone for TailDp {
    fn clone(&self) -> Self {
        Self {
            head: self.head.clone(),
            err: self.err.clone(),
            err_tracked: self.err_tracked,
            k: self.k,
            trials: self.trials,
            removals: self.removals,
            // Staging state is per-call scratch; clones start cold.
            scratch: Vec::new(),
            scratch_err: Vec::new(),
            scratch_ln: Vec::new(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.head.clone_from(&source.head);
        self.err.clone_from(&source.err);
        self.err_tracked = source.err_tracked;
        self.k = source.k;
        self.trials = source.trials;
        self.removals = source.removals;
    }
}

impl PartialEq for TailDp {
    /// Semantic equality: the distribution row and its bookkeeping; error
    /// bounds and staging buffers are excluded.
    fn eq(&self, other: &Self) -> bool {
        self.k == other.k
            && self.trials == other.trials
            && self.removals == other.removals
            && self.head == other.head
    }
}

impl TailDp {
    /// An empty row (zero trials) for threshold `k`.
    pub fn new(k: usize) -> Self {
        let mut head = vec![0.0; k];
        if let Some(first) = head.first_mut() {
            *first = 1.0;
        }
        Self {
            head,
            err: vec![0.0; k],
            err_tracked: false,
            k,
            trials: 0,
            removals: 0,
            scratch: Vec::new(),
            scratch_err: Vec::new(),
            scratch_ln: Vec::new(),
        }
    }

    /// Build the row from per-trial probabilities.
    pub fn from_probs<I: IntoIterator<Item = f64>>(k: usize, probs: I) -> Self {
        let mut dp = Self::new(k);
        for p in probs {
            dp.push(p);
        }
        dp
    }

    /// Reset to zero trials and re-absorb `probs` — the full-recompute
    /// fallback, reusing the allocation.
    pub fn rebuild<I: IntoIterator<Item = f64>>(&mut self, probs: I) {
        self.head.fill(0.0);
        if let Some(first) = self.head.first_mut() {
            *first = 1.0;
        }
        self.err.fill(0.0);
        self.err_tracked = false;
        self.trials = 0;
        self.removals = 0;
        for p in probs {
            self.push(p);
        }
    }

    /// The threshold `k` this row was built for.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// Number of Bernoulli trials currently absorbed.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Downdates applied since the last rebuild — callers bound this to
    /// keep accumulated rounding drift negligible.
    pub fn removals(&self) -> u32 {
        self.removals
    }

    /// The truncated head `Pr{ S = j }` for `j < k`.
    pub fn head(&self) -> &[f64] {
        &self.head
    }

    /// Upper bound on the absolute error of [`TailDp::tail`] accumulated
    /// by pushes and accepted downdates — the measured quantity that
    /// [`TailDp::try_remove`]'s `tol` is compared against.
    pub fn error_bound(&self) -> f64 {
        if self.err_tracked {
            self.err.iter().sum()
        } else {
            self.implicit_err_scale() * self.head.iter().map(|h| h.abs()).sum::<f64>()
        }
    }

    /// Per-element error bounds on `|head[j] − exact|`, aligned with
    /// [`TailDp::head`]. Materializes the closed-form push-chain bound
    /// if no removal has touched the row yet.
    pub fn element_errors(&mut self) -> &[f64] {
        self.materialize_err();
        &self.err
    }

    /// Absorb one more Bernoulli trial in `O(min(trials, k))`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn push(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        if self.k > 0 {
            let q = 1.0 - p;
            // Occupancy before this trial is min(trials, k-1); one trial
            // can raise it by one.
            let top = (self.trials + 1).min(self.k - 1);
            if self.err_tracked {
                // A removal has touched the row: maintain the explicit
                // bounds. The convex combination mixes the inherited
                // bounds the same way, plus ~2 ulps of rounding at the
                // result's own magnitude (so exactly-zero entries stay
                // exactly zero).
                for j in (1..=top).rev() {
                    let h = self.head[j] * q + self.head[j - 1] * p;
                    self.err[j] = self.err[j] * q + self.err[j - 1] * p + 2.0 * f64::EPSILON * h;
                    self.head[j] = h;
                }
                self.head[0] *= q;
                self.err[0] = self.err[0] * q + f64::EPSILON * self.head[0];
            } else {
                // Pure push chain: the error is bounded in closed form by
                // `2·(trials+1)·ε·head[j]` (each push adds ≤ 2 ulps at the
                // element's own magnitude and mixes bounds convexly), so
                // the hot build path skips explicit accounting entirely —
                // [`TailDp::implicit_err_scale`] recovers the bound when a
                // removal first needs it.
                for j in (1..=top).rev() {
                    self.head[j] = self.head[j] * q + self.head[j - 1] * p;
                }
                self.head[0] *= q;
            }
        }
        self.trials += 1;
    }

    /// Per-element relative error factor of a pure push chain: each of
    /// the `trials` convolution steps contributes at most 2 ulps at the
    /// element's own magnitude, mixed convexly (the `+1` absorbs the
    /// O(ε²) cross terms conservatively). Only meaningful while
    /// `err_tracked` is `false`.
    fn implicit_err_scale(&self) -> f64 {
        2.0 * (self.trials as f64 + 1.0) * f64::EPSILON
    }

    /// Switch the row from the implicit closed-form bound to explicit
    /// per-element tracking (idempotent; called by the first removal).
    fn materialize_err(&mut self) {
        if self.err_tracked {
            return;
        }
        let scale = self.implicit_err_scale();
        for (e, h) in self.err.iter_mut().zip(&self.head) {
            *e = scale * h.abs();
        }
        self.err_tracked = true;
    }

    /// Divide one Bernoulli trial back out of the row in `O(k)` (plus an
    /// `O(k²)` log-domain pass for elements the plain sweep cannot
    /// certify within `tol`).
    ///
    /// Returns `false` — leaving the row *untouched* — when the measured
    /// error bound of the downdated row would exceed `tol`, when
    /// `q = 1 − p` is degenerate, or when the recovered row fails
    /// validation (an entry outside `[0, 1]` beyond rounding tolerance).
    /// The trial must be one that was previously absorbed; removing
    /// anything else yields a row for "some" trial multiset only if
    /// validation happens to pass.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn try_remove(&mut self, p: f64, tol: f64) -> bool {
        self.try_remove_explained(p, tol).is_ok()
    }

    /// As [`TailDp::try_remove`], but a refusal reports *which* guard
    /// fired (and by how much) as a [`RemovalRefusal`]. On `Err` the row
    /// is untouched — the downdate is staged in scratch buffers and only
    /// committed on success.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn try_remove_explained(&mut self, p: f64, tol: f64) -> Result<(), RemovalRefusal> {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        if self.trials == 0 {
            return Err(RemovalRefusal::Empty);
        }
        if self.k == 0 {
            self.trials -= 1;
            self.removals += 1;
            return Ok(());
        }
        let q = 1.0 - p;
        if q < f64::EPSILON {
            return Err(RemovalRefusal::Degenerate);
        }
        // From here on the row needs per-element bounds: convert the
        // implicit push-chain bound into the explicit vector (a no-op on
        // rows a removal has already touched; semantically neutral even
        // if this attempt ends up refused).
        self.materialize_err();
        let inv_q = 1.0 / q;
        let eps = f64::EPSILON;

        // Stage the candidate row in the scratch buffers; `head`/`err`
        // stay authoritative until the whole downdate is accepted.
        self.scratch.resize(self.k, 0.0);
        self.scratch_err.resize(self.k, 0.0);

        // Plain pass — compensated forward deconvolution. `g = push(f, p)`
        // inverts to `f[j] = (g[j] − f[j−1]·p) / q`, ascending. A Neumaier
        // two-sum keeps the residual of the cancellation-prone subtraction
        // and carries it (scaled) into the next step, while `scratch_err`
        // accumulates an upper bound on each element's absolute error from
        // the operand magnitudes actually encountered.
        let mut prev = 0.0f64; // f[j−1]
        let mut carry = 0.0f64; // compensation on prev
        let mut prev_err = 0.0f64;
        for j in 0..self.k {
            let g = self.head[j];
            let t = p * prev;
            let tc = p * carry;
            // Two-sum: s + e == g − t exactly.
            let s = g - t;
            let e = if g.abs() >= t.abs() {
                (g - s) - t
            } else {
                (-t - s) + g
            };
            let c2 = e - tc;
            let num = s + c2;
            let r2 = if s.abs() >= c2.abs() {
                (s - num) + c2
            } else {
                (c2 - num) + s
            };
            let f = num * inv_q;
            carry = r2 * inv_q;
            // Inherited error amplified by the recurrence, plus local
            // rounding at the actual magnitudes (conservative: the
            // compensation above typically does better).
            let err_j =
                (self.err[j] + p * prev_err) * inv_q + eps * (t.abs() * inv_q + 2.0 * f.abs());
            self.scratch[j] = f;
            self.scratch_err[j] = err_j;
            prev = f;
            prev_err = err_j;
        }

        let ratio = p * inv_q;
        let mut total_err: f64 = self.scratch_err.iter().sum();
        if !total_err.is_finite() {
            // Overflow/NaN from extreme amplification must read as "error
            // too large", never as "fits".
            total_err = f64::MAX;
        }
        if total_err > tol && ratio > 1.0 {
            // Log-domain fallback for the risky tail. The plain sweep's
            // bound compounds through its own intermediates; the explicit
            // alternating series
            //   f[j] = Σ_{i≤j} (−1)^{j−i} · r^{j−i} · g[i] / q
            // computes each element directly from the (clean) head, in
            // log space so amplification factors beyond f64 range neither
            // overflow nor hide the true term magnitudes. Elements the
            // plain pass already certified within their share of `tol`
            // keep their values ("stable head"); only the risky ones are
            // recomputed.
            let budget = tol / self.k as f64;
            let ln_r = ratio.ln();
            let ln_q = q.ln();
            // Log-head cache shared by every risky element this removal
            // recomputes: `ln(head[i]) − ln(q)` for positive entries, NaN
            // for zeros (which contribute nothing to the series). `lo` is
            // the first nonzero entry, bounding every inner sweep.
            self.scratch_ln.resize(self.k, f64::NAN);
            let mut lo = self.k;
            for i in 0..self.k {
                let g = self.head[i];
                self.scratch_ln[i] = if g > 0.0 {
                    if lo == self.k {
                        lo = i;
                    }
                    g.ln() - ln_q
                } else {
                    f64::NAN
                };
            }
            // `committed` is the partial sum of *final* per-element bounds
            // in ascending `j` (kept-stable elements keep the plain pass's
            // bound, risky ones their recomputed bound). Every bound is
            // nonnegative, so the moment it exceeds `tol` no completion of
            // the remaining elements can rescue the removal — refuse with
            // the partial sum as the (lower-bound) measurement instead of
            // paying the O(k) series for every remaining risky element.
            let mut committed = 0.0f64;
            for j in 0..self.k {
                if self.scratch_err[j] > budget {
                    // Each g[i] feeds f[j] with weight r^(j−i)/q, so the
                    // row's tracked input errors amplify with the same
                    // weights. Sweep `i` descending with an incrementally
                    // maintained weight (no `powi` per term); the partial
                    // sum is monotone, so crossing `tol` mid-loop already
                    // decides refusal, and zero entries are skipped so an
                    // overflowed weight never manufactures a NaN.
                    let mut inherited = 0.0f64;
                    let mut weight = inv_q;
                    for i in (0..=j).rev() {
                        let e = self.err[i];
                        if e > 0.0 {
                            inherited += e * weight;
                            if inherited > tol {
                                break;
                            }
                        }
                        weight *= ratio;
                    }
                    if inherited > tol {
                        return Err(RemovalRefusal::ErrTol {
                            measured: committed + inherited,
                        });
                    }
                    // `lo..=j` is empty when every entry up to `j` is zero.
                    let mut m = f64::NEG_INFINITY;
                    for i in lo..=j {
                        let l = (j - i) as f64 * ln_r + self.scratch_ln[i];
                        // NaN (zero head entry) compares false and skips.
                        if l > m {
                            m = l;
                        }
                    }
                    let (f, local) = if m == f64::NEG_INFINITY {
                        // Every contributing head entry is exactly zero, so
                        // the recovered element is exactly zero too.
                        (0.0, 0.0)
                    } else if m > 700.0 {
                        // The largest term exceeds ~1e304 while the result is
                        // a probability: cancellation beyond measurement.
                        (0.0, f64::MAX)
                    } else {
                        // Max-rescaled, Kahan-summed evaluation; the measured
                        // bound charges each term its log-space rounding at
                        // the term's actual magnitude.
                        let scale = m.exp();
                        let mut sum = 0.0f64;
                        let mut comp = 0.0f64;
                        let mut weighted = 0.0f64;
                        for i in lo..=j {
                            let lg = self.scratch_ln[i];
                            if lg.is_nan() {
                                continue;
                            }
                            let l = (j - i) as f64 * ln_r + lg;
                            let mag = (l - m).exp();
                            let term = if (j - i) % 2 == 0 { mag } else { -mag };
                            let t2 = sum + term;
                            comp += if sum.abs() >= term.abs() {
                                (sum - t2) + term
                            } else {
                                (term - t2) + sum
                            };
                            sum = t2;
                            weighted += mag * (l.abs() + 4.0);
                        }
                        ((sum + comp) * scale, eps * weighted * scale)
                    };
                    self.scratch[j] = f;
                    self.scratch_err[j] = inherited + local;
                }
                committed += self.scratch_err[j];
                if committed > tol {
                    return Err(RemovalRefusal::ErrTol {
                        measured: committed,
                    });
                }
            }
            // The loop summed every final element bound, so the committed
            // partial sum *is* the total (a NaN anywhere poisons it and
            // must read as "error too large", never as "fits").
            total_err = committed;
            if !total_err.is_finite() {
                total_err = f64::MAX;
            }
        }

        if total_err > tol {
            return Err(RemovalRefusal::ErrTol {
                measured: total_err,
            });
        }

        // Validate and clamp the staged row, then commit it atomically.
        let mut sum = 0.0f64;
        for j in 0..self.k {
            let f = self.scratch[j];
            let slack = DOWNDATE_NEG_TOL + self.scratch_err[j];
            if !(-slack..=1.0 + slack).contains(&f) {
                return Err(RemovalRefusal::RowValidation {
                    violation: (-f).max(f - 1.0).max(0.0),
                });
            }
            let f = f.clamp(0.0, 1.0);
            self.scratch[j] = f;
            sum += f;
        }
        if sum > 1.0 + DOWNDATE_NEG_TOL + total_err {
            return Err(RemovalRefusal::RowValidation {
                violation: sum - 1.0,
            });
        }
        std::mem::swap(&mut self.head, &mut self.scratch);
        std::mem::swap(&mut self.err, &mut self.scratch_err);
        self.trials -= 1;
        self.removals += 1;
        Ok(())
    }

    /// `Pr{ S ≥ k }` for the currently absorbed trials.
    pub fn tail(&self) -> f64 {
        if self.k == 0 {
            return 1.0;
        }
        if self.trials < self.k {
            return 0.0;
        }
        crate::clamp_prob(1.0 - self.head.iter().sum::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force tail by enumerating all 2^n outcomes.
    fn brute_tail(probs: &[f64], k: usize) -> f64 {
        let n = probs.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut successes = 0usize;
            for (i, &pi) in probs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p *= pi;
                    successes += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            if successes >= k {
                total += p;
            }
        }
        total
    }

    #[test]
    fn pmf_matches_binomial_for_identical_probs() {
        let d = SupportDistribution::new(&[0.5; 4]);
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (j, &e) in expected.iter().enumerate() {
            assert!((d.pmf(j) - e).abs() < 1e-12, "pmf({j})");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = SupportDistribution::new(&[0.9, 0.6, 0.7, 0.9, 0.4, 0.4]);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_equals_sum_of_probs() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        assert!((d.mean() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn tail_agrees_with_pmf_sums() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        for k in 0..=5 {
            assert!(
                (d.tail(k) - tail_at_least(&probs, k)).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn tail_matches_brute_force() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.15, 0.33, 0.5];
        for k in 0..=8 {
            let fast = tail_at_least(&probs, k);
            let brute = brute_tail(&probs, k);
            assert!((fast - brute).abs() < 1e-10, "k={k}: {fast} vs {brute}");
        }
    }

    #[test]
    fn paper_running_example_abcd() {
        // {abcd} is contained in T1 (0.9) and T4 (0.9); Pr{sup >= 2} = 0.81.
        assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn paper_running_example_abc() {
        // {abc} is contained in T1..T4 with probs .9 .6 .7 .9;
        // Pr{sup >= 2} = 1 - Pr{0} - Pr{1} = 0.9726 (hand computation in
        // the paper's Example 1.2 working).
        let t = tail_at_least(&[0.9, 0.6, 0.7, 0.9], 2);
        assert!((t - 0.9726).abs() < 1e-12, "{t}");
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(tail_at_least(&[], 0), 1.0);
        assert_eq!(tail_at_least(&[], 1), 0.0);
        assert_eq!(tail_at_least(&[0.4], 2), 0.0);
        assert_eq!(tail_at_least(&[0.0, 0.0], 1), 0.0);
        assert_eq!(tail_at_least(&[1.0, 1.0], 2), 1.0);
    }

    #[test]
    fn tail_is_monotone_in_k() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99];
        let mut prev = 1.0;
        for k in 0..=6 {
            let t = tail_at_least(&probs, k);
            assert!(t <= prev + 1e-12, "tail must not increase with k");
            prev = t;
        }
    }

    #[test]
    fn scratch_variant_matches() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99, 0.42];
        let mut scratch = vec![0.0; 8];
        for k in 1..=6 {
            let a = tail_at_least(&probs, k);
            let b = tail_at_least_with(&probs, k, &mut scratch);
            assert!((a - b).abs() < 1e-15, "k={k}");
        }
    }

    #[test]
    fn push_matches_batch_construction() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.2];
        let mut incremental = SupportDistribution::new(&[]);
        for &p in &probs {
            incremental.push(p);
        }
        let batch = SupportDistribution::new(&probs);
        assert_eq!(incremental.trials(), batch.trials());
        for (a, b) in incremental.as_slice().iter().zip(batch.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn push_keeps_pmf_normalized() {
        let mut d = SupportDistribution::new(&[0.5]);
        d.push(0.25);
        d.push(1.0);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // The certain trial shifts all mass up by one.
        assert_eq!(d.pmf(0), 0.0);
    }

    #[test]
    fn tail_dp_matches_capped_dp_as_trials_accrue() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.15, 0.33, 0.5];
        for k in 0..=5 {
            let mut dp = TailDp::new(k);
            for (i, &p) in probs.iter().enumerate() {
                dp.push(p);
                let direct = tail_at_least(&probs[..=i], k);
                assert!(
                    (dp.tail() - direct).abs() < 1e-12,
                    "k={k} n={}: {} vs {direct}",
                    i + 1,
                    dp.tail()
                );
            }
            assert_eq!(dp.trials(), probs.len());
        }
    }

    #[test]
    fn tail_dp_remove_inverts_push() {
        let probs = [0.4, 0.25, 0.5, 0.1, 0.45];
        for k in 1..=4 {
            let mut dp = TailDp::from_probs(k, probs.iter().copied());
            // Remove in a different order than insertion.
            assert!(dp.try_remove(0.5, 1e-9));
            assert!(dp.try_remove(0.4, 1e-9));
            let direct = tail_at_least(&[0.25, 0.1, 0.45], k);
            assert!(
                (dp.tail() - direct).abs() < 1e-10,
                "k={k}: {} vs {direct}",
                dp.tail()
            );
            assert_eq!(dp.trials(), 3);
            assert_eq!(dp.removals(), 2);
        }
    }

    #[test]
    fn tail_dp_measured_tolerance_gates_removals() {
        // q below machine epsilon is degenerate no matter the tolerance.
        let mut dp = TailDp::from_probs(2, [1.0, 0.5, 0.5]);
        assert!(!dp.try_remove(1.0, 1.0));
        // The old a-priori cutoff refused this downdate outright
        // ((p/q)^(k−1) = 9^19 amplification); the measured bound sees the
        // head mass decay outpaces the amplification and accepts it.
        let probs = vec![0.9; 30];
        let mut wide = TailDp::from_probs(20, probs.iter().copied());
        assert!(wide.try_remove(0.9, 1e-9), "measured error fits 1e-9");
        let direct = tail_at_least(&[0.9; 29], 20);
        assert!(
            (wide.tail() - direct).abs() < 1e-9,
            "{} vs {direct}",
            wide.tail()
        );
        // Zero tolerance refuses anything with a nonzero error bound.
        let mut strict = TailDp::from_probs(20, probs.iter().copied());
        assert!(!strict.try_remove(0.9, 0.0));
        let mut narrow = TailDp::from_probs(2, probs.iter().copied());
        assert!(narrow.try_remove(0.9, 1e-9));
    }

    #[test]
    fn tail_dp_refusal_leaves_row_untouched() {
        // Commit-on-success: a refused removal must not perturb the row.
        let mut dp = TailDp::from_probs(20, vec![0.9; 30]);
        let before_head = dp.head().to_vec();
        let before_tail = dp.tail();
        assert!(!dp.try_remove(0.9, 0.0));
        assert_eq!(dp.head(), &before_head[..]);
        assert_eq!(dp.tail().to_bits(), before_tail.to_bits());
        assert_eq!(dp.trials(), 30);
        assert_eq!(dp.removals(), 0);
        // The row still works afterwards.
        assert!(dp.try_remove(0.9, 1e-9));
        assert_eq!(dp.trials(), 29);
    }

    #[test]
    fn tail_dp_zero_head_rows_downdate_exactly() {
        // High-probability rows underflow the truncated head to exact
        // zeros; the downdate is then exact and accepted even at tol = 0.
        // (This is the regime the old amplification guard refused
        // wholesale despite the arithmetic being error-free.)
        let mut dp = TailDp::from_probs(10, std::iter::repeat_n(0.999, 400));
        assert_eq!(dp.tail(), 1.0);
        assert_eq!(dp.error_bound(), 0.0);
        assert!(dp.try_remove(0.999, 0.0), "zero-head downdate is exact");
        assert_eq!(dp.trials(), 399);
        assert_eq!(dp.tail(), 1.0);
    }

    #[test]
    fn tail_dp_refusals_are_explained() {
        // Empty row.
        let mut dp = TailDp::new(2);
        assert_eq!(
            dp.try_remove_explained(0.5, 1e-9),
            Err(RemovalRefusal::Empty)
        );
        // Degenerate q.
        let mut dp = TailDp::from_probs(2, [1.0, 0.5, 0.5]);
        assert_eq!(
            dp.try_remove_explained(1.0, 1e-9),
            Err(RemovalRefusal::Degenerate)
        );
        // Error-tolerance guard: at tol = 0 any nonzero measured bound
        // refuses, and the bound itself is reported (small here — the
        // default 1e-9 tolerance accepts this same removal).
        let mut wide = TailDp::from_probs(20, vec![0.9; 30]);
        match wide.try_remove_explained(0.9, 0.0) {
            Err(RemovalRefusal::ErrTol { measured }) => {
                assert!(measured > 0.0, "{measured}");
                assert!(measured < 1e-9, "{measured}");
            }
            other => panic!("expected err-tol refusal, got {other:?}"),
        }
        // Removing a trial that was never absorbed trips row validation.
        let mut dp = TailDp::from_probs(3, [0.1, 0.1, 0.1, 0.1]);
        match dp.try_remove_explained(0.45, 1e-9) {
            Err(RemovalRefusal::RowValidation { violation }) => assert!(violation > 0.0),
            other => panic!("expected row-validation refusal, got {other:?}"),
        }
        // The names and magnitudes survive the accessors.
        assert_eq!(RemovalRefusal::Empty.reason(), "empty");
        assert_eq!(RemovalRefusal::Degenerate.reason(), "degenerate");
        assert_eq!(
            RemovalRefusal::ErrTol { measured: 2e-8 }.reason(),
            "err_tol"
        );
        assert_eq!(
            RemovalRefusal::ErrTol { measured: 2e-8 }.magnitude(),
            Some(2e-8)
        );
        assert_eq!(
            RemovalRefusal::RowValidation { violation: 0.5 }.magnitude(),
            Some(0.5)
        );
        assert_eq!(RemovalRefusal::Empty.magnitude(), None);
    }

    #[test]
    fn tail_dp_empty_and_zero_threshold() {
        let mut dp = TailDp::new(0);
        assert_eq!(dp.tail(), 1.0);
        dp.push(0.3);
        assert_eq!(dp.tail(), 1.0);
        assert!(dp.try_remove(0.3, 1e-9));
        assert!(!dp.try_remove(0.3, 1e-9), "no trials left");

        let dp = TailDp::new(3);
        assert_eq!(dp.tail(), 0.0, "fewer trials than threshold");
    }

    #[test]
    fn tail_dp_rebuild_resets_removal_count() {
        let mut dp = TailDp::from_probs(2, [0.3, 0.4]);
        assert!(dp.try_remove(0.3, 1e-9));
        dp.rebuild([0.3, 0.4, 0.5]);
        assert_eq!(dp.removals(), 0);
        assert_eq!(dp.trials(), 3);
        let direct = tail_at_least(&[0.3, 0.4, 0.5], 2);
        assert!((dp.tail() - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_invalid_probability() {
        SupportDistribution::new(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_invalid_probability() {
        SupportDistribution::new(&[0.5]).push(-0.1);
    }
}

/// The incremental-downdate contract the miner relies on: for arbitrary
/// probability vectors and removal subsets, either [`TailDp::try_remove`]
/// succeeds and the downdated row's tail matches a full recompute over
/// the survivors within the tolerance, or it refuses — leaving the row
/// untouched — and a rebuild restores the same answer. Probability mixes
/// cover quantized-uniform, Gaussian-like, p→1.0 clusters and alternating
/// tiny/huge entries, with thresholds up to `k = 64`.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// (probabilities, threshold k, indices to remove). A regime
    /// discriminant selects one of four probability mixes; values stay
    /// quantized so failures print reproducibly.
    fn dp_case() -> impl Strategy<Value = (Vec<f64>, usize, Vec<usize>)> {
        (
            0u32..4,
            proptest::collection::vec(0u32..=1000, 1..40),
            0usize..65,
            proptest::collection::vec(0usize..64, 0..12),
        )
            .prop_map(|(regime, raw, k, picks)| {
                let probs: Vec<f64> = raw
                    .iter()
                    .enumerate()
                    .map(|(i, &u)| {
                        let x = f64::from(u) / 1000.0;
                        match regime {
                            // Quantized uniform over [0, 1].
                            0 => x,
                            // Gaussian-like hump around 0.5 (Irwin–Hall:
                            // mean of four co-prime-quantized uniforms).
                            1 => {
                                let y = f64::from(u % 701) / 700.0
                                    + f64::from(u % 311) / 310.0
                                    + f64::from(u % 97) / 96.0
                                    + x;
                                (y / 4.0).clamp(0.0, 1.0)
                            }
                            // p → 1.0 cluster (includes exactly 1.0).
                            2 => 0.95 + x / 20.0,
                            // Alternating tiny / huge.
                            _ => {
                                if i % 2 == 0 {
                                    x / 1000.0
                                } else {
                                    0.999 + x / 1000.0
                                }
                            }
                        }
                    })
                    .collect();
                let mut drop: Vec<usize> = picks.iter().map(|&i| i % probs.len()).collect();
                drop.sort_unstable();
                drop.dedup();
                (probs, k, drop)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn downdate_matches_full_recompute(case in dp_case()) {
            let (probs, k, drop) = case;
            let parent = TailDp::from_probs(k, probs.iter().copied());
            let survivors: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &p)| p)
                .collect();
            let full = tail_at_least(&survivors, k);

            // The miner's default error tolerance (dp_error_tol = 1e-9).
            let tol = 1e-9;
            let mut dp = parent.clone();
            if drop.iter().all(|&i| dp.try_remove(probs[i], tol)) {
                prop_assert!(
                    (dp.tail() - full).abs() <= 1e-9 * full.abs().max(1.0),
                    "downdate {} vs recompute {} (k={}, dropped {} of {})",
                    dp.tail(), full, k, drop.len(), probs.len()
                );
                prop_assert_eq!(dp.trials(), survivors.len());
                prop_assert_eq!(dp.removals(), drop.len() as u32);
                // An accepted chain keeps its own bound within tolerance.
                prop_assert!(dp.error_bound() <= tol * 1.0000001);
            } else {
                // Refusal path: the fallback rebuild must reproduce the
                // exact answer (the clone shields the parent row).
                let mut rebuilt = parent.clone();
                rebuilt.rebuild(survivors.iter().copied());
                prop_assert!((rebuilt.tail() - full).abs() < 1e-12);
                prop_assert_eq!(rebuilt.removals(), 0);
            }
            // The parent row is untouched either way.
            prop_assert_eq!(parent.tail().to_bits(),
                TailDp::from_probs(k, probs.iter().copied()).tail().to_bits());
        }

        #[test]
        fn remove_then_readd_round_trips(case in dp_case()) {
            let (probs, k, drop) = case;
            let parent = TailDp::from_probs(k, probs.iter().copied());
            let mut dp = parent.clone();
            if !drop.iter().all(|&i| dp.try_remove(probs[i], 1e-9)) {
                return Ok(());
            }
            for &i in &drop {
                dp.push(probs[i]);
            }
            prop_assert_eq!(dp.trials(), probs.len());
            prop_assert!(
                (dp.tail() - parent.tail()).abs() <= 1e-9 * parent.tail().abs().max(1.0),
                "readd {} vs parent {} (k={}, {} removed)",
                dp.tail(), parent.tail(), k, drop.len()
            );
        }

        #[test]
        fn zero_tolerance_accepts_only_exact_downdates(case in dp_case()) {
            let (probs, k, drop) = case;
            if drop.is_empty() {
                return Ok(());
            }
            let survivors: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &p)| p)
                .collect();
            let mut dp = TailDp::from_probs(k, probs.iter().copied());
            if drop.iter().all(|&i| dp.try_remove(probs[i], 0.0)) {
                // tol = 0 admits only downdates whose tracked error is
                // exactly zero — the result must match a rebuild to
                // machine precision.
                let full = tail_at_least(&survivors, k);
                prop_assert!(
                    (dp.tail() - full).abs() < 1e-12,
                    "{} vs {full} (k={k})",
                    dp.tail()
                );
            }
        }
    }
}
