//! The Poisson–binomial distribution: the law of the number of successes in
//! independent, non-identically distributed Bernoulli trials.
//!
//! Under the tuple-uncertainty model, the support of an itemset `X` is
//! exactly Poisson–binomially distributed over the existence probabilities
//! of the transactions containing `X`. The *frequent probability*
//! `Pr_F(X) = Pr{ sup(X) ≥ min_sup }` is a tail of this distribution, and
//! the classic dynamic program of Bernecker et al. / Sun et al. computes it
//! in `O(n · min_sup)` time.

/// The exact distribution of a sum of independent Bernoulli variables.
///
/// Stores the full probability mass function, which costs `O(n²)` to build.
/// For the tail alone use [`tail_at_least`], which caps the DP at the
/// threshold and runs in `O(n · k)`.
///
/// # Examples
///
/// ```
/// use prob::SupportDistribution;
/// // Two fair coins: Pr{sum = 1} = 1/2, Pr{sum >= 1} = 3/4.
/// let d = SupportDistribution::new(&[0.5, 0.5]);
/// assert!((d.pmf(1) - 0.5).abs() < 1e-12);
/// assert!((d.tail(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SupportDistribution {
    pmf: Vec<f64>,
}

impl SupportDistribution {
    /// Build the full PMF from per-trial success probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(probs: &[f64]) -> Self {
        for &p in probs {
            assert!(
                (0.0..=1.0).contains(&p),
                "Bernoulli probability {p} outside [0, 1]"
            );
        }
        let mut pmf = vec![0.0f64; probs.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Process counts descending so each trial is used exactly once.
            for j in (0..=i).rev() {
                pmf[j + 1] += pmf[j] * p;
                pmf[j] *= 1.0 - p;
            }
        }
        Self { pmf }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `Pr{ S = j }`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `Pr{ S ≥ j }`; one for `j = 0`, zero for `j > n`.
    pub fn tail(&self, j: usize) -> f64 {
        if j == 0 {
            return 1.0;
        }
        crate::clamp_prob(self.pmf.iter().skip(j).sum())
    }

    /// `Pr{ S ≤ j }`.
    pub fn cdf(&self, j: usize) -> f64 {
        crate::clamp_prob(self.pmf.iter().take(j + 1).sum())
    }

    /// The mean `Σ p_i` recovered from the PMF.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    /// Full PMF as a slice, indexed by success count.
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Incorporate one more Bernoulli trial in `O(n)` — incremental
    /// support-distribution maintenance as an itemset's tid-set grows.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn push(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        let n = self.pmf.len();
        self.pmf.push(0.0);
        for j in (0..n).rev() {
            self.pmf[j + 1] += self.pmf[j] * p;
            self.pmf[j] *= 1.0 - p;
        }
    }
}

/// `Pr{ S ≥ k }` for `S` the sum of independent Bernoulli trials with the
/// given success probabilities, via the threshold-capped dynamic program.
///
/// Runs in `O(n · min(k, n))` time and `O(min(k, n))` space. This is the
/// polynomial-time frequent-probability routine the paper builds on
/// (Definition 3.4); state `k` of the DP is absorbing ("already ≥ k").
///
/// # Examples
///
/// ```
/// use prob::poisson_binomial::tail_at_least;
/// // Paper running example, itemset {a,b,c,d} ⊆ T1, T4 with probs .9, .9:
/// // Pr{sup ≥ 2} = 0.81.
/// assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
/// ```
pub fn tail_at_least(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let mut buf = vec![0.0f64; k + 1];
    tail_at_least_with(probs, k, &mut buf)
}

/// As [`tail_at_least`], but reusing a caller-provided scratch buffer of
/// length at least `k + 1` to avoid per-call allocation in hot loops.
pub fn tail_at_least_with(probs: &[f64], k: usize, scratch: &mut [f64]) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let f = &mut scratch[..=k];
    f.fill(0.0);
    f[0] = 1.0;
    // Highest non-absorbing state occupied before the current trial; caps
    // the inner loop while fewer than `k` trials have been processed.
    let mut hi = 0usize;
    for &p in probs {
        let q = 1.0 - p;
        if hi >= k - 1 {
            // Absorbing transition into "support already ≥ k".
            f[k] += f[k - 1] * p;
        }
        let top = (hi + 1).min(k - 1);
        for j in (1..=top).rev() {
            f[j] = f[j] * q + f[j - 1] * p;
        }
        f[0] *= q;
        if hi < k {
            hi += 1;
        }
    }
    crate::clamp_prob(f[k])
}

/// Expected value `Σ p_i` of the Poisson–binomial sum — the *expected
/// support* of the itemset in the expected-support model of Chui et al.
pub fn expected_value(probs: &[f64]) -> f64 {
    probs.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force tail by enumerating all 2^n outcomes.
    fn brute_tail(probs: &[f64], k: usize) -> f64 {
        let n = probs.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut successes = 0usize;
            for (i, &pi) in probs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p *= pi;
                    successes += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            if successes >= k {
                total += p;
            }
        }
        total
    }

    #[test]
    fn pmf_matches_binomial_for_identical_probs() {
        let d = SupportDistribution::new(&[0.5; 4]);
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (j, &e) in expected.iter().enumerate() {
            assert!((d.pmf(j) - e).abs() < 1e-12, "pmf({j})");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = SupportDistribution::new(&[0.9, 0.6, 0.7, 0.9, 0.4, 0.4]);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_equals_sum_of_probs() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        assert!((d.mean() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn tail_agrees_with_pmf_sums() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        for k in 0..=5 {
            assert!(
                (d.tail(k) - tail_at_least(&probs, k)).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn tail_matches_brute_force() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.15, 0.33, 0.5];
        for k in 0..=8 {
            let fast = tail_at_least(&probs, k);
            let brute = brute_tail(&probs, k);
            assert!((fast - brute).abs() < 1e-10, "k={k}: {fast} vs {brute}");
        }
    }

    #[test]
    fn paper_running_example_abcd() {
        // {abcd} is contained in T1 (0.9) and T4 (0.9); Pr{sup >= 2} = 0.81.
        assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn paper_running_example_abc() {
        // {abc} is contained in T1..T4 with probs .9 .6 .7 .9;
        // Pr{sup >= 2} = 1 - Pr{0} - Pr{1} = 0.9726 (hand computation in
        // the paper's Example 1.2 working).
        let t = tail_at_least(&[0.9, 0.6, 0.7, 0.9], 2);
        assert!((t - 0.9726).abs() < 1e-12, "{t}");
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(tail_at_least(&[], 0), 1.0);
        assert_eq!(tail_at_least(&[], 1), 0.0);
        assert_eq!(tail_at_least(&[0.4], 2), 0.0);
        assert_eq!(tail_at_least(&[0.0, 0.0], 1), 0.0);
        assert_eq!(tail_at_least(&[1.0, 1.0], 2), 1.0);
    }

    #[test]
    fn tail_is_monotone_in_k() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99];
        let mut prev = 1.0;
        for k in 0..=6 {
            let t = tail_at_least(&probs, k);
            assert!(t <= prev + 1e-12, "tail must not increase with k");
            prev = t;
        }
    }

    #[test]
    fn scratch_variant_matches() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99, 0.42];
        let mut scratch = vec![0.0; 8];
        for k in 1..=6 {
            let a = tail_at_least(&probs, k);
            let b = tail_at_least_with(&probs, k, &mut scratch);
            assert!((a - b).abs() < 1e-15, "k={k}");
        }
    }

    #[test]
    fn push_matches_batch_construction() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.2];
        let mut incremental = SupportDistribution::new(&[]);
        for &p in &probs {
            incremental.push(p);
        }
        let batch = SupportDistribution::new(&probs);
        assert_eq!(incremental.trials(), batch.trials());
        for (a, b) in incremental.as_slice().iter().zip(batch.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn push_keeps_pmf_normalized() {
        let mut d = SupportDistribution::new(&[0.5]);
        d.push(0.25);
        d.push(1.0);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // The certain trial shifts all mass up by one.
        assert_eq!(d.pmf(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_invalid_probability() {
        SupportDistribution::new(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_invalid_probability() {
        SupportDistribution::new(&[0.5]).push(-0.1);
    }
}
