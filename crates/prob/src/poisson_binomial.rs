//! The Poisson–binomial distribution: the law of the number of successes in
//! independent, non-identically distributed Bernoulli trials.
//!
//! Under the tuple-uncertainty model, the support of an itemset `X` is
//! exactly Poisson–binomially distributed over the existence probabilities
//! of the transactions containing `X`. The *frequent probability*
//! `Pr_F(X) = Pr{ sup(X) ≥ min_sup }` is a tail of this distribution, and
//! the classic dynamic program of Bernecker et al. / Sun et al. computes it
//! in `O(n · min_sup)` time.

/// The exact distribution of a sum of independent Bernoulli variables.
///
/// Stores the full probability mass function, which costs `O(n²)` to build.
/// For the tail alone use [`tail_at_least`], which caps the DP at the
/// threshold and runs in `O(n · k)`.
///
/// # Examples
///
/// ```
/// use prob::SupportDistribution;
/// // Two fair coins: Pr{sum = 1} = 1/2, Pr{sum >= 1} = 3/4.
/// let d = SupportDistribution::new(&[0.5, 0.5]);
/// assert!((d.pmf(1) - 0.5).abs() < 1e-12);
/// assert!((d.tail(1) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SupportDistribution {
    pmf: Vec<f64>,
}

impl SupportDistribution {
    /// Build the full PMF from per-trial success probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability lies outside `[0, 1]`.
    pub fn new(probs: &[f64]) -> Self {
        for &p in probs {
            assert!(
                (0.0..=1.0).contains(&p),
                "Bernoulli probability {p} outside [0, 1]"
            );
        }
        let mut pmf = vec![0.0f64; probs.len() + 1];
        pmf[0] = 1.0;
        for (i, &p) in probs.iter().enumerate() {
            // Process counts descending so each trial is used exactly once.
            for j in (0..=i).rev() {
                pmf[j + 1] += pmf[j] * p;
                pmf[j] *= 1.0 - p;
            }
        }
        Self { pmf }
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `Pr{ S = j }`; zero for `j > n`.
    pub fn pmf(&self, j: usize) -> f64 {
        self.pmf.get(j).copied().unwrap_or(0.0)
    }

    /// `Pr{ S ≥ j }`; one for `j = 0`, zero for `j > n`.
    pub fn tail(&self, j: usize) -> f64 {
        if j == 0 {
            return 1.0;
        }
        crate::clamp_prob(self.pmf.iter().skip(j).sum())
    }

    /// `Pr{ S ≤ j }`.
    pub fn cdf(&self, j: usize) -> f64 {
        crate::clamp_prob(self.pmf.iter().take(j + 1).sum())
    }

    /// The mean `Σ p_i` recovered from the PMF.
    pub fn mean(&self) -> f64 {
        self.pmf
            .iter()
            .enumerate()
            .map(|(j, &p)| j as f64 * p)
            .sum()
    }

    /// Full PMF as a slice, indexed by success count.
    pub fn as_slice(&self) -> &[f64] {
        &self.pmf
    }

    /// Incorporate one more Bernoulli trial in `O(n)` — incremental
    /// support-distribution maintenance as an itemset's tid-set grows.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn push(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        let n = self.pmf.len();
        self.pmf.push(0.0);
        for j in (0..n).rev() {
            self.pmf[j + 1] += self.pmf[j] * p;
            self.pmf[j] *= 1.0 - p;
        }
    }
}

/// `Pr{ S ≥ k }` for `S` the sum of independent Bernoulli trials with the
/// given success probabilities, via the threshold-capped dynamic program.
///
/// Runs in `O(n · min(k, n))` time and `O(min(k, n))` space. This is the
/// polynomial-time frequent-probability routine the paper builds on
/// (Definition 3.4); state `k` of the DP is absorbing ("already ≥ k").
///
/// # Examples
///
/// ```
/// use prob::poisson_binomial::tail_at_least;
/// // Paper running example, itemset {a,b,c,d} ⊆ T1, T4 with probs .9, .9:
/// // Pr{sup ≥ 2} = 0.81.
/// assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
/// ```
pub fn tail_at_least(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let mut buf = vec![0.0f64; k + 1];
    tail_at_least_with(probs, k, &mut buf)
}

/// As [`tail_at_least`], but reusing a caller-provided scratch buffer of
/// length at least `k + 1` to avoid per-call allocation in hot loops.
pub fn tail_at_least_with(probs: &[f64], k: usize, scratch: &mut [f64]) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    let f = &mut scratch[..=k];
    f.fill(0.0);
    f[0] = 1.0;
    // Highest non-absorbing state occupied before the current trial; caps
    // the inner loop while fewer than `k` trials have been processed.
    let mut hi = 0usize;
    for &p in probs {
        let q = 1.0 - p;
        if hi >= k - 1 {
            // Absorbing transition into "support already ≥ k".
            f[k] += f[k - 1] * p;
        }
        let top = (hi + 1).min(k - 1);
        for j in (1..=top).rev() {
            f[j] = f[j] * q + f[j - 1] * p;
        }
        f[0] *= q;
        if hi < k {
            hi += 1;
        }
    }
    crate::clamp_prob(f[k])
}

/// Expected value `Σ p_i` of the Poisson–binomial sum — the *expected
/// support* of the itemset in the expected-support model of Chui et al.
pub fn expected_value(probs: &[f64]) -> f64 {
    probs.iter().sum()
}

/// Entries this far below zero are treated as rounding noise and clamped;
/// anything lower fails a [`TailDp::try_remove`] downdate.
const DOWNDATE_NEG_TOL: f64 = 1e-9;

/// Why a [`TailDp::try_remove`] downdate was refused.
///
/// Each variant names the guard that fired, in the order the guards are
/// checked; the magnitude-carrying variants record *how far* past the
/// guard the request was, so callers can histogram near-misses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RemovalRefusal {
    /// The row has zero trials absorbed; there is nothing to remove.
    Empty,
    /// `q = 1 − p` is below machine epsilon: the deconvolution would
    /// divide by (effectively) zero.
    Degenerate,
    /// The estimated rounding-error amplification `max(1, p/q)^(k−1)`
    /// exceeds the caller's limit.
    AmpLimit {
        /// `log10` of the estimated amplification factor — how many
        /// decimal digits of precision the downdate would burn.
        magnitude: f64,
    },
    /// A recovered head entry fell outside `[0, 1]` beyond rounding
    /// tolerance, or the recovered head mass exceeded one.
    RowValidation {
        /// How far outside the valid range the worst entry (or the head
        /// sum) landed; always positive.
        violation: f64,
    },
}

impl RemovalRefusal {
    /// Stable machine-readable name of the refusal class.
    pub fn reason(&self) -> &'static str {
        match self {
            RemovalRefusal::Empty => "empty",
            RemovalRefusal::Degenerate => "degenerate",
            RemovalRefusal::AmpLimit { .. } => "amp_limit",
            RemovalRefusal::RowValidation { .. } => "row_validation",
        }
    }

    /// The refusal's magnitude, when the class carries one: decimal
    /// digits of amplification for [`RemovalRefusal::AmpLimit`], range
    /// excess for [`RemovalRefusal::RowValidation`].
    pub fn magnitude(&self) -> Option<f64> {
        match self {
            RemovalRefusal::AmpLimit { magnitude } => Some(*magnitude),
            RemovalRefusal::RowValidation { violation } => Some(*violation),
            RemovalRefusal::Empty | RemovalRefusal::Degenerate => None,
        }
    }
}

/// An incrementally maintainable threshold DP for
/// `Pr{ S ≥ k }`: the *truncated head* `Pr{ S = j }` for `j < k` of a
/// Poisson–binomial sum, with the tail recovered as `1 − Σ head`.
///
/// Unlike the absorbing-state DP of [`tail_at_least`], this
/// representation is *invertible*: a Bernoulli trial can be divided back
/// out ([`TailDp::try_remove`]) because no mass was collapsed into an
/// absorbing "already ≥ k" state. That is what lets a depth-first miner
/// derive a child node's frequentness DP from its parent's in
/// `O(d · k)` for `d` dropped transactions instead of `O(n · k)` from
/// scratch.
///
/// # Numerical stability
///
/// Removal runs the forward recurrence `f[j] = (g[j] − f[j−1]·p) / q`
/// with `q = 1 − p`, whose rounding error is amplified by roughly
/// `max(1, p/q)^(k−1)` across the row. [`TailDp::try_remove`] refuses
/// the division (returning `false`, leaving the caller to recompute)
/// when that estimate exceeds the caller's `amp_limit`, when `q` is
/// degenerate, or when the resulting row fails validation. On a refused
/// or failed removal the row contents are unspecified — downdate a clone
/// and keep the parent row authoritative.
///
/// # Examples
///
/// ```
/// use prob::poisson_binomial::TailDp;
/// let mut dp = TailDp::new(2);
/// for p in [0.9, 0.6, 0.7, 0.9] {
///     dp.push(p);
/// }
/// assert!((dp.tail() - 0.9726).abs() < 1e-12);
/// // Divide the 0.6 trial back out: Pr{sup ≥ 2} of {0.9, 0.7, 0.9}.
/// assert!(dp.try_remove(0.6, 1e4));
/// let direct = prob::poisson_binomial::tail_at_least(&[0.9, 0.7, 0.9], 2);
/// assert!((dp.tail() - direct).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TailDp {
    /// `head[j] = Pr{ S = j }` for `j < k`.
    head: Vec<f64>,
    k: usize,
    trials: usize,
    removals: u32,
}

impl TailDp {
    /// An empty row (zero trials) for threshold `k`.
    pub fn new(k: usize) -> Self {
        let mut head = vec![0.0; k];
        if let Some(first) = head.first_mut() {
            *first = 1.0;
        }
        Self {
            head,
            k,
            trials: 0,
            removals: 0,
        }
    }

    /// Build the row from per-trial probabilities.
    pub fn from_probs<I: IntoIterator<Item = f64>>(k: usize, probs: I) -> Self {
        let mut dp = Self::new(k);
        for p in probs {
            dp.push(p);
        }
        dp
    }

    /// Reset to zero trials and re-absorb `probs` — the full-recompute
    /// fallback, reusing the allocation.
    pub fn rebuild<I: IntoIterator<Item = f64>>(&mut self, probs: I) {
        self.head.fill(0.0);
        if let Some(first) = self.head.first_mut() {
            *first = 1.0;
        }
        self.trials = 0;
        self.removals = 0;
        for p in probs {
            self.push(p);
        }
    }

    /// The threshold `k` this row was built for.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// Number of Bernoulli trials currently absorbed.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// Downdates applied since the last rebuild — callers bound this to
    /// keep accumulated rounding drift negligible.
    pub fn removals(&self) -> u32 {
        self.removals
    }

    /// The truncated head `Pr{ S = j }` for `j < k`.
    pub fn head(&self) -> &[f64] {
        &self.head
    }

    /// Absorb one more Bernoulli trial in `O(min(trials, k))`.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn push(&mut self, p: f64) {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        if self.k > 0 {
            let q = 1.0 - p;
            // Occupancy before this trial is min(trials, k-1); one trial
            // can raise it by one.
            let top = (self.trials + 1).min(self.k - 1);
            for j in (1..=top).rev() {
                self.head[j] = self.head[j] * q + self.head[j - 1] * p;
            }
            self.head[0] *= q;
        }
        self.trials += 1;
    }

    /// Divide one Bernoulli trial back out of the row in `O(k)`.
    ///
    /// Returns `false` — leaving the row in an unspecified state, see the
    /// type docs — when the estimated error amplification
    /// `max(1, p/q)^(k−1)` exceeds `amp_limit`, when `q = 1 − p` is
    /// degenerate, or when the recovered row fails validation (an entry
    /// outside `[0, 1]` beyond rounding tolerance). The trial must be one
    /// that was previously absorbed; removing anything else yields a row
    /// for "some" trial multiset only if validation happens to pass.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn try_remove(&mut self, p: f64, amp_limit: f64) -> bool {
        self.try_remove_explained(p, amp_limit).is_ok()
    }

    /// As [`TailDp::try_remove`], but a refusal reports *which* guard
    /// fired (and by how much) as a [`RemovalRefusal`]. The row-state
    /// contract is identical: on `Err` the row contents are unspecified —
    /// downdate a clone and keep the parent row authoritative.
    ///
    /// # Panics
    ///
    /// Panics if `p` lies outside `[0, 1]`.
    pub fn try_remove_explained(&mut self, p: f64, amp_limit: f64) -> Result<(), RemovalRefusal> {
        assert!(
            (0.0..=1.0).contains(&p),
            "Bernoulli probability {p} outside [0, 1]"
        );
        if self.trials == 0 {
            return Err(RemovalRefusal::Empty);
        }
        if self.k == 0 {
            self.trials -= 1;
            self.removals += 1;
            return Ok(());
        }
        let q = 1.0 - p;
        if q < f64::EPSILON {
            return Err(RemovalRefusal::Degenerate);
        }
        let ratio = p / q;
        if ratio > 1.0 && (self.k as f64 - 1.0) * ratio.ln() > amp_limit.ln() {
            return Err(RemovalRefusal::AmpLimit {
                // log10(amplification) = (k−1)·log10(p/q).
                magnitude: (self.k as f64 - 1.0) * ratio.log10(),
            });
        }
        // Forward deconvolution: g = push(f, p) inverts to
        // f[j] = (g[j] − f[j−1]·p) / q, computed ascending in place (the
        // old g[j] is still unread when f[j] is written).
        let mut prev = 0.0f64;
        let mut sum = 0.0f64;
        for j in 0..self.k {
            let mut f = (self.head[j] - prev * p) / q;
            if !(-DOWNDATE_NEG_TOL..=1.0 + DOWNDATE_NEG_TOL).contains(&f) {
                return Err(RemovalRefusal::RowValidation {
                    violation: if f < 0.0 { -f } else { f - 1.0 },
                });
            }
            f = f.clamp(0.0, 1.0);
            self.head[j] = f;
            prev = f;
            sum += f;
        }
        if sum > 1.0 + DOWNDATE_NEG_TOL {
            return Err(RemovalRefusal::RowValidation {
                violation: sum - 1.0,
            });
        }
        self.trials -= 1;
        self.removals += 1;
        Ok(())
    }

    /// `Pr{ S ≥ k }` for the currently absorbed trials.
    pub fn tail(&self) -> f64 {
        if self.k == 0 {
            return 1.0;
        }
        if self.trials < self.k {
            return 0.0;
        }
        crate::clamp_prob(1.0 - self.head.iter().sum::<f64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force tail by enumerating all 2^n outcomes.
    fn brute_tail(probs: &[f64], k: usize) -> f64 {
        let n = probs.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let mut p = 1.0;
            let mut successes = 0usize;
            for (i, &pi) in probs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    p *= pi;
                    successes += 1;
                } else {
                    p *= 1.0 - pi;
                }
            }
            if successes >= k {
                total += p;
            }
        }
        total
    }

    #[test]
    fn pmf_matches_binomial_for_identical_probs() {
        let d = SupportDistribution::new(&[0.5; 4]);
        let expected = [1.0, 4.0, 6.0, 4.0, 1.0].map(|c| c / 16.0);
        for (j, &e) in expected.iter().enumerate() {
            assert!((d.pmf(j) - e).abs() < 1e-12, "pmf({j})");
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let d = SupportDistribution::new(&[0.9, 0.6, 0.7, 0.9, 0.4, 0.4]);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_equals_sum_of_probs() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        assert!((d.mean() - 3.1).abs() < 1e-12);
    }

    #[test]
    fn tail_agrees_with_pmf_sums() {
        let probs = [0.9, 0.6, 0.7, 0.9];
        let d = SupportDistribution::new(&probs);
        for k in 0..=5 {
            assert!(
                (d.tail(k) - tail_at_least(&probs, k)).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn tail_matches_brute_force() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.15, 0.33, 0.5];
        for k in 0..=8 {
            let fast = tail_at_least(&probs, k);
            let brute = brute_tail(&probs, k);
            assert!((fast - brute).abs() < 1e-10, "k={k}: {fast} vs {brute}");
        }
    }

    #[test]
    fn paper_running_example_abcd() {
        // {abcd} is contained in T1 (0.9) and T4 (0.9); Pr{sup >= 2} = 0.81.
        assert!((tail_at_least(&[0.9, 0.9], 2) - 0.81).abs() < 1e-12);
    }

    #[test]
    fn paper_running_example_abc() {
        // {abc} is contained in T1..T4 with probs .9 .6 .7 .9;
        // Pr{sup >= 2} = 1 - Pr{0} - Pr{1} = 0.9726 (hand computation in
        // the paper's Example 1.2 working).
        let t = tail_at_least(&[0.9, 0.6, 0.7, 0.9], 2);
        assert!((t - 0.9726).abs() < 1e-12, "{t}");
    }

    #[test]
    fn tail_edge_cases() {
        assert_eq!(tail_at_least(&[], 0), 1.0);
        assert_eq!(tail_at_least(&[], 1), 0.0);
        assert_eq!(tail_at_least(&[0.4], 2), 0.0);
        assert_eq!(tail_at_least(&[0.0, 0.0], 1), 0.0);
        assert_eq!(tail_at_least(&[1.0, 1.0], 2), 1.0);
    }

    #[test]
    fn tail_is_monotone_in_k() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99];
        let mut prev = 1.0;
        for k in 0..=6 {
            let t = tail_at_least(&probs, k);
            assert!(t <= prev + 1e-12, "tail must not increase with k");
            prev = t;
        }
    }

    #[test]
    fn scratch_variant_matches() {
        let probs = [0.2, 0.8, 0.55, 0.31, 0.99, 0.42];
        let mut scratch = vec![0.0; 8];
        for k in 1..=6 {
            let a = tail_at_least(&probs, k);
            let b = tail_at_least_with(&probs, k, &mut scratch);
            assert!((a - b).abs() < 1e-15, "k={k}");
        }
    }

    #[test]
    fn push_matches_batch_construction() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.2];
        let mut incremental = SupportDistribution::new(&[]);
        for &p in &probs {
            incremental.push(p);
        }
        let batch = SupportDistribution::new(&probs);
        assert_eq!(incremental.trials(), batch.trials());
        for (a, b) in incremental.as_slice().iter().zip(batch.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn push_keeps_pmf_normalized() {
        let mut d = SupportDistribution::new(&[0.5]);
        d.push(0.25);
        d.push(1.0);
        let sum: f64 = d.as_slice().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // The certain trial shifts all mass up by one.
        assert_eq!(d.pmf(0), 0.0);
    }

    #[test]
    fn tail_dp_matches_capped_dp_as_trials_accrue() {
        let probs = [0.9, 0.6, 0.7, 0.9, 0.15, 0.33, 0.5];
        for k in 0..=5 {
            let mut dp = TailDp::new(k);
            for (i, &p) in probs.iter().enumerate() {
                dp.push(p);
                let direct = tail_at_least(&probs[..=i], k);
                assert!(
                    (dp.tail() - direct).abs() < 1e-12,
                    "k={k} n={}: {} vs {direct}",
                    i + 1,
                    dp.tail()
                );
            }
            assert_eq!(dp.trials(), probs.len());
        }
    }

    #[test]
    fn tail_dp_remove_inverts_push() {
        let probs = [0.4, 0.25, 0.5, 0.1, 0.45];
        for k in 1..=4 {
            let mut dp = TailDp::from_probs(k, probs.iter().copied());
            // Remove in a different order than insertion.
            assert!(dp.try_remove(0.5, 1e4));
            assert!(dp.try_remove(0.4, 1e4));
            let direct = tail_at_least(&[0.25, 0.1, 0.45], k);
            assert!(
                (dp.tail() - direct).abs() < 1e-10,
                "k={k}: {} vs {direct}",
                dp.tail()
            );
            assert_eq!(dp.trials(), 3);
            assert_eq!(dp.removals(), 2);
        }
    }

    #[test]
    fn tail_dp_refuses_unstable_removals() {
        // q below machine epsilon is degenerate.
        let mut dp = TailDp::from_probs(2, [1.0, 0.5, 0.5]);
        assert!(!dp.try_remove(1.0, 1e12));
        // Amplification (p/q)^(k-1) beyond the limit is refused for high
        // thresholds but fine for k = 2.
        let probs = vec![0.9; 30];
        let mut wide = TailDp::from_probs(20, probs.iter().copied());
        assert!(!wide.try_remove(0.9, 100.0), "9^19 >> 100");
        let mut narrow = TailDp::from_probs(2, probs.iter().copied());
        assert!(narrow.try_remove(0.9, 100.0), "9^1 <= 100");
    }

    #[test]
    fn tail_dp_refusals_are_explained() {
        // Empty row.
        let mut dp = TailDp::new(2);
        assert_eq!(
            dp.try_remove_explained(0.5, 1e4),
            Err(RemovalRefusal::Empty)
        );
        // Degenerate q.
        let mut dp = TailDp::from_probs(2, [1.0, 0.5, 0.5]);
        assert_eq!(
            dp.try_remove_explained(1.0, 1e12),
            Err(RemovalRefusal::Degenerate)
        );
        // Amplification guard, with the log10 overshoot attached:
        // (k−1)·log10(p/q) = 19·log10(9) ≈ 18.1 decimal digits.
        let probs = vec![0.9; 30];
        let mut wide = TailDp::from_probs(20, probs.iter().copied());
        match wide.try_remove_explained(0.9, 100.0) {
            Err(RemovalRefusal::AmpLimit { magnitude }) => {
                assert!(
                    (magnitude - 19.0 * 9.0f64.log10()).abs() < 1e-9,
                    "{magnitude}"
                );
            }
            other => panic!("expected amp-limit refusal, got {other:?}"),
        }
        // Removing a trial that was never absorbed trips row validation.
        let mut dp = TailDp::from_probs(3, [0.1, 0.1, 0.1, 0.1]);
        match dp.try_remove_explained(0.45, 1e9) {
            Err(RemovalRefusal::RowValidation { violation }) => assert!(violation > 0.0),
            other => panic!("expected row-validation refusal, got {other:?}"),
        }
        // The names and magnitudes survive the accessors.
        assert_eq!(RemovalRefusal::Empty.reason(), "empty");
        assert_eq!(RemovalRefusal::Degenerate.reason(), "degenerate");
        assert_eq!(
            RemovalRefusal::AmpLimit { magnitude: 2.0 }.reason(),
            "amp_limit"
        );
        assert_eq!(
            RemovalRefusal::RowValidation { violation: 0.5 }.magnitude(),
            Some(0.5)
        );
        assert_eq!(RemovalRefusal::Empty.magnitude(), None);
    }

    #[test]
    fn tail_dp_empty_and_zero_threshold() {
        let mut dp = TailDp::new(0);
        assert_eq!(dp.tail(), 1.0);
        dp.push(0.3);
        assert_eq!(dp.tail(), 1.0);
        assert!(dp.try_remove(0.3, 1e4));
        assert!(!dp.try_remove(0.3, 1e4), "no trials left");

        let dp = TailDp::new(3);
        assert_eq!(dp.tail(), 0.0, "fewer trials than threshold");
    }

    #[test]
    fn tail_dp_rebuild_resets_removal_count() {
        let mut dp = TailDp::from_probs(2, [0.3, 0.4]);
        assert!(dp.try_remove(0.3, 1e4));
        dp.rebuild([0.3, 0.4, 0.5]);
        assert_eq!(dp.removals(), 0);
        assert_eq!(dp.trials(), 3);
        let direct = tail_at_least(&[0.3, 0.4, 0.5], 2);
        assert!((dp.tail() - direct).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_invalid_probability() {
        SupportDistribution::new(&[1.5]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn push_rejects_invalid_probability() {
        SupportDistribution::new(&[0.5]).push(-0.1);
    }
}

/// The incremental-downdate contract the miner relies on: for arbitrary
/// probability vectors and removal subsets, either [`TailDp::try_remove`]
/// succeeds and the downdated row's tail matches a full recompute over
/// the survivors within `1e-9`, or it refuses and a rebuild restores the
/// same answer. Removals are driven on a clone, exactly as
/// `qualify_child` does, so a refusal never corrupts live state.
#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// (probabilities, threshold k, indices to remove): probabilities are
    /// quantized to keep the generator's shrink space small while still
    /// covering near-0 / near-1 entries that stress the deconvolution.
    fn dp_case() -> impl Strategy<Value = (Vec<f64>, usize, Vec<usize>)> {
        (
            proptest::collection::vec(0u32..=1000, 1..24),
            0usize..6,
            proptest::collection::vec(0usize..24, 0..12),
        )
            .prop_map(|(raw, k, picks)| {
                let probs: Vec<f64> = raw.iter().map(|&q| f64::from(q) / 1000.0).collect();
                let mut drop: Vec<usize> = picks.iter().map(|&i| i % probs.len()).collect();
                drop.sort_unstable();
                drop.dedup();
                (probs, k, drop)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn downdate_matches_full_recompute(case in dp_case()) {
            let (probs, k, drop) = case;
            let parent = TailDp::from_probs(k, probs.iter().copied());
            let survivors: Vec<f64> = probs
                .iter()
                .enumerate()
                .filter(|(i, _)| !drop.contains(i))
                .map(|(_, &p)| p)
                .collect();
            let full = tail_at_least(&survivors, k);

            // The miner's default stability floor (dp_stability = 1e-2).
            let amp_limit = 100.0;
            let mut dp = parent.clone();
            if drop.iter().all(|&i| dp.try_remove(probs[i], amp_limit)) {
                prop_assert!(
                    (dp.tail() - full).abs() < 1e-9,
                    "downdate {} vs recompute {} (k={}, dropped {} of {})",
                    dp.tail(), full, k, drop.len(), probs.len()
                );
                prop_assert_eq!(dp.trials(), survivors.len());
                prop_assert_eq!(dp.removals(), drop.len() as u32);
            } else {
                // Refusal path: the fallback rebuild must reproduce the
                // exact answer (the clone shields the parent row).
                let mut rebuilt = parent.clone();
                rebuilt.rebuild(survivors.iter().copied());
                prop_assert!((rebuilt.tail() - full).abs() < 1e-12);
                prop_assert_eq!(rebuilt.removals(), 0);
            }
            // The parent row is untouched either way.
            prop_assert_eq!(parent.tail().to_bits(),
                TailDp::from_probs(k, probs.iter().copied()).tail().to_bits());
        }

        #[test]
        fn tight_amp_limit_forces_refusal_not_corruption(case in dp_case()) {
            let (probs, k, drop) = case;
            if k < 2 || drop.is_empty() {
                return Ok(());
            }
            // amp_limit = 1 refuses every removal whose amplification
            // factor exceeds 1, i.e. any p > q; pick one such entry.
            let Some(&i) = drop.iter().find(|&&i| probs[i] > 0.5 && probs[i] < 1.0) else {
                return Ok(());
            };
            let mut dp = TailDp::from_probs(k, probs.iter().copied());
            prop_assert!(!dp.try_remove(probs[i], 1.0));
        }
    }
}
