//! Chernoff–Hoeffding tail bounds.
//!
//! Lemma 4.1 of the paper prunes probabilistically infrequent itemsets
//! without running the exact `O(n · min_sup)` dynamic program: if even an
//! upper *bound* on `Pr{ sup(X) ≥ min_sup }` falls at or below the
//! threshold `pfct`, then `X` (and, by anti-monotonicity of the frequent
//! probability, every superset of `X`) cannot be a probabilistic frequent
//! closed itemset, because `Pr_FC(X) ≤ Pr_F(X)`.

/// Hoeffding upper bound on `Pr{ S ≥ s }` for `S` a sum of `n` independent
/// random variables in `[0, 1]` with mean `expected`.
///
/// Returns `1.0` when `s ≤ expected` (the bound is vacuous there).
///
/// # Examples
///
/// ```
/// use prob::hoeffding_tail_upper;
/// // 100 fair coins, Pr{S >= 80} <= exp(-2 * 30^2 / 100) ≈ 1.5e-8.
/// let b = hoeffding_tail_upper(50.0, 100, 80.0);
/// assert!(b < 1e-7);
/// // Vacuous below the mean.
/// assert_eq!(hoeffding_tail_upper(50.0, 100, 40.0), 1.0);
/// ```
pub fn hoeffding_tail_upper(expected: f64, n: usize, s: f64) -> f64 {
    let t = s - expected;
    if t <= 0.0 || n == 0 {
        return 1.0;
    }
    (-2.0 * t * t / n as f64).exp()
}

/// Chernoff–Hoeffding infrequency test (Lemma 4.1).
///
/// Returns `true` when the Hoeffding bound *proves*
/// `Pr{ sup(X) ≥ min_sup } ≤ pfct`, i.e. the itemset with the given
/// expected support over `n` candidate transactions is certainly not a
/// probabilistic frequent (closed) itemset at threshold `pfct` and can be
/// pruned together with all of its supersets.
///
/// `n` should be the number of transactions that *can* contain the itemset
/// (the bound gets tighter the smaller `n` is, and any valid `n ≥` that
/// count is sound).
pub fn hoeffding_infrequent(expected_support: f64, n: usize, min_sup: usize, pfct: f64) -> bool {
    if min_sup == 0 {
        // Every itemset trivially has sup >= 0 with probability 1.
        return false;
    }
    if min_sup > n {
        // Support can never reach min_sup.
        return true;
    }
    hoeffding_tail_upper(expected_support, n, min_sup as f64) <= pfct
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson_binomial::tail_at_least;

    #[test]
    fn bound_dominates_exact_tail() {
        // The Hoeffding bound must upper-bound the exact Poisson-binomial
        // tail for every threshold.
        let probs: Vec<f64> = (0..40).map(|i| 0.1 + 0.02 * i as f64).collect();
        let mu: f64 = probs.iter().sum();
        for k in 0..=probs.len() {
            let exact = tail_at_least(&probs, k);
            let bound = hoeffding_tail_upper(mu, probs.len(), k as f64);
            assert!(
                exact <= bound + 1e-12,
                "k={k}: exact {exact} > bound {bound}"
            );
        }
    }

    #[test]
    fn pruning_is_sound() {
        // Whenever the test says "prune", the exact frequent probability
        // must really be <= pfct.
        let probs = [0.3, 0.2, 0.25, 0.4, 0.1, 0.35, 0.15, 0.3];
        let mu: f64 = probs.iter().sum();
        for min_sup in 1..=8 {
            for pfct10 in 1..10 {
                let pfct = pfct10 as f64 / 10.0;
                if hoeffding_infrequent(mu, probs.len(), min_sup, pfct) {
                    let exact = tail_at_least(&probs, min_sup);
                    assert!(
                        exact <= pfct + 1e-12,
                        "unsound prune: min_sup={min_sup} pfct={pfct} exact={exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn prunes_clearly_infrequent_itemsets() {
        // Expected support 1 over 1000 transactions, min_sup 200: the tail
        // is astronomically small and must be pruned at pfct = 0.8.
        assert!(hoeffding_infrequent(1.0, 1000, 200, 0.8));
    }

    #[test]
    fn keeps_clearly_frequent_itemsets() {
        // Expected support 900 of 1000, min_sup 500: bound is vacuous.
        assert!(!hoeffding_infrequent(900.0, 1000, 500, 0.8));
    }

    #[test]
    fn min_sup_beyond_n_always_prunes() {
        assert!(hoeffding_infrequent(3.0, 3, 4, 0.0));
    }

    #[test]
    fn min_sup_zero_never_prunes() {
        assert!(!hoeffding_infrequent(0.0, 10, 0, 0.99));
    }
}
