//! Sampling Bernoulli vectors conditioned on a minimum number of successes.
//!
//! The Karp–Luby estimator for the frequent non-closed probability must
//! draw possible worlds *conditioned on* an event of the form "all tuples
//! of a set are absent AND at least `min_sup` of the tuples of another set
//! are present". Absence is trivial; presence-with-a-floor is a Poisson–
//! binomial sum conditioned on `S ≥ k`, sampled here exactly.
//!
//! Two strategies, chosen automatically:
//!
//! * **Rejection**: draw unconditioned vectors until one has `≥ k`
//!   successes. Exact, `O(n)` memory, expected `1 / Pr{S ≥ k}` attempts —
//!   used when the conditioning event is likely.
//! * **Suffix-DP**: precompute `R[i][j] = Pr{ ≥ j successes among trials
//!   i..n }` and walk the trials, drawing each with its exact conditional
//!   probability `p_i · R[i+1][j−1] / R[i][j]`. `O(n·k)` memory, `O(n)` per
//!   sample — used when the event is rare and rejection would thrash.

use rand::{Rng, RngExt};

use crate::poisson_binomial::tail_at_least;

/// Rejection is preferred while the acceptance probability is at least this.
const REJECTION_THRESHOLD: f64 = 0.2;

enum Strategy {
    Rejection,
    /// Flattened `(n+1) × (k+1)` suffix table `R[i][j]`.
    SuffixDp(Vec<f64>),
}

/// Exact sampler for independent Bernoulli trials conditioned on at least
/// `k` successes.
///
/// # Examples
///
/// ```
/// use prob::ConditionalBernoulliSampler;
/// use rand::{rngs::SmallRng, SeedableRng};
/// let s = ConditionalBernoulliSampler::new(vec![0.3, 0.5, 0.2], 2);
/// let mut rng = SmallRng::seed_from_u64(1);
/// let mut world = Vec::new();
/// s.sample_into(&mut rng, &mut world);
/// assert!(world.iter().filter(|&&b| b).count() >= 2);
/// ```
pub struct ConditionalBernoulliSampler {
    probs: Vec<f64>,
    k: usize,
    tail: f64,
    strategy: Strategy,
}

impl ConditionalBernoulliSampler {
    /// Build a sampler for the given success probabilities and floor `k`.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]` or the conditioning
    /// event `S ≥ k` has probability zero.
    pub fn new(probs: Vec<f64>, k: usize) -> Self {
        for &p in &probs {
            assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        }
        let tail = tail_at_least(&probs, k);
        assert!(
            tail > 0.0,
            "conditioning event `at least {k} of {}` has probability zero",
            probs.len()
        );
        let strategy = if k == 0 || tail >= REJECTION_THRESHOLD {
            Strategy::Rejection
        } else {
            Strategy::SuffixDp(build_suffix_table(&probs, k))
        };
        Self {
            probs,
            k,
            tail,
            strategy,
        }
    }

    /// `Pr{ S ≥ k }` — the probability of the conditioning event.
    pub fn conditioning_probability(&self) -> f64 {
        self.tail
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// True when there are no trials (then necessarily `k == 0`).
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Draw one vector into `out` (cleared first), distributed exactly as
    /// the unconditioned product law restricted to `{ S ≥ k }`.
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<bool>) {
        out.clear();
        match &self.strategy {
            Strategy::Rejection => loop {
                out.clear();
                let mut successes = 0usize;
                for &p in &self.probs {
                    let b = rng.random::<f64>() < p;
                    successes += b as usize;
                    out.push(b);
                }
                if successes >= self.k {
                    return;
                }
            },
            Strategy::SuffixDp(table) => {
                let k = self.k;
                let stride = k + 1;
                let mut need = k;
                for (i, &p) in self.probs.iter().enumerate() {
                    let b = if need == 0 {
                        rng.random::<f64>() < p
                    } else {
                        // Pr(trial i succeeds | ≥ need successes in i..n)
                        let num = p * table[(i + 1) * stride + (need - 1)];
                        let den = table[i * stride + need];
                        debug_assert!(den > 0.0, "entered an impossible DP state");
                        rng.random::<f64>() < num / den
                    };
                    if b && need > 0 {
                        need -= 1;
                    }
                    out.push(b);
                }
                debug_assert_eq!(need, 0, "sampler failed to meet the floor");
            }
        }
    }
}

/// `R[i][j] = Pr{ at least j successes among trials i..n }`, flattened
/// row-major with stride `k + 1`.
fn build_suffix_table(probs: &[f64], k: usize) -> Vec<f64> {
    let n = probs.len();
    let stride = k + 1;
    let mut table = vec![0.0f64; (n + 1) * stride];
    table[n * stride] = 1.0; // R[n][0] = 1
    for i in (0..n).rev() {
        let p = probs[i];
        table[i * stride] = 1.0; // R[i][0] = 1
        for j in 1..=k {
            let succeed = table[(i + 1) * stride + (j - 1)];
            let fail = table[(i + 1) * stride + j];
            table[i * stride + j] = p * succeed + (1.0 - p) * fail;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn empirical_law(probs: &[f64], k: usize, samples: usize, seed: u64) -> HashMap<u32, f64> {
        let sampler = ConditionalBernoulliSampler::new(probs.to_vec(), k);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut counts: HashMap<u32, usize> = HashMap::new();
        let mut world = Vec::new();
        for _ in 0..samples {
            sampler.sample_into(&mut rng, &mut world);
            let mask = world
                .iter()
                .enumerate()
                .fold(0u32, |m, (i, &b)| m | ((b as u32) << i));
            *counts.entry(mask).or_default() += 1;
        }
        counts
            .into_iter()
            .map(|(mask, c)| (mask, c as f64 / samples as f64))
            .collect()
    }

    fn exact_conditional_law(probs: &[f64], k: usize) -> HashMap<u32, f64> {
        let n = probs.len();
        let mut law = HashMap::new();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let successes = mask.count_ones() as usize;
            if successes < k {
                continue;
            }
            let mut p = 1.0;
            for (i, &pi) in probs.iter().enumerate() {
                p *= if mask >> i & 1 == 1 { pi } else { 1.0 - pi };
            }
            law.insert(mask, p);
            total += p;
        }
        law.values_mut().for_each(|p| *p /= total);
        law
    }

    fn assert_laws_close(probs: &[f64], k: usize, seed: u64) {
        let exact = exact_conditional_law(probs, k);
        let emp = empirical_law(probs, k, 120_000, seed);
        for (mask, &pe) in &exact {
            let po = emp.get(mask).copied().unwrap_or(0.0);
            assert!(
                (pe - po).abs() < 0.02,
                "mask {mask:b}: exact {pe} vs empirical {po}"
            );
        }
        // No mass outside the conditioning event.
        for mask in emp.keys() {
            assert!(
                mask.count_ones() as usize >= k,
                "sampled world violates the floor"
            );
        }
    }

    #[test]
    fn rejection_mode_matches_exact_law() {
        // High tail => rejection strategy.
        assert_laws_close(&[0.6, 0.7, 0.5], 1, 17);
    }

    #[test]
    fn suffix_dp_mode_matches_exact_law() {
        // Low tail => suffix-DP strategy.
        let probs = [0.1, 0.15, 0.2, 0.1];
        let sampler = ConditionalBernoulliSampler::new(probs.to_vec(), 3);
        assert!(matches!(sampler.strategy, Strategy::SuffixDp(_)));
        assert_laws_close(&probs, 3, 23);
    }

    #[test]
    fn floor_zero_is_unconditioned() {
        assert_laws_close(&[0.3, 0.8], 0, 31);
    }

    #[test]
    fn all_trials_forced_when_k_equals_n() {
        let sampler = ConditionalBernoulliSampler::new(vec![0.2, 0.3, 0.4], 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut world = Vec::new();
        for _ in 0..100 {
            sampler.sample_into(&mut rng, &mut world);
            assert!(world.iter().all(|&b| b));
        }
    }

    #[test]
    fn conditioning_probability_matches_tail() {
        let probs = [0.25, 0.5, 0.75];
        let sampler = ConditionalBernoulliSampler::new(probs.to_vec(), 2);
        assert!((sampler.conditioning_probability() - tail_at_least(&probs, 2)).abs() < 1e-15);
    }

    #[test]
    fn deterministic_trials_are_respected() {
        // p = 1 trials are always present, p = 0 never.
        let sampler = ConditionalBernoulliSampler::new(vec![1.0, 0.0, 0.5], 1);
        let mut rng = SmallRng::seed_from_u64(9);
        let mut world = Vec::new();
        for _ in 0..200 {
            sampler.sample_into(&mut rng, &mut world);
            assert!(world[0]);
            assert!(!world[1]);
        }
    }

    #[test]
    fn suffix_table_head_is_the_tail_probability() {
        let probs = [0.1, 0.2, 0.3, 0.4];
        let k = 2;
        let table = build_suffix_table(&probs, k);
        assert!((table[k] - tail_at_least(&probs, k)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability zero")]
    fn rejects_impossible_conditioning() {
        ConditionalBernoulliSampler::new(vec![0.5, 0.5], 3);
    }
}
