//! Probability toolkit underpinning probabilistic frequent (closed) itemset
//! mining.
//!
//! This crate is a self-contained substrate with no knowledge of itemsets or
//! transactions. It provides:
//!
//! * [`poisson_binomial`] — the distribution of a sum of independent,
//!   non-identical Bernoulli variables (the distribution of an itemset's
//!   support under tuple-uncertainty), with an `O(n·k)` tail DP.
//! * [`cond_sample`] — sampling Bernoulli vectors *conditioned* on at least
//!   `k` successes, needed by the Karp–Luby sampler.
//! * [`hoeffding`] — Chernoff–Hoeffding tail bounds (Lemma 4.1 of the paper).
//! * [`union_bounds`] — de Caen / Kwerel–Hunter style bounds on the
//!   probability of a union from singleton and pairwise probabilities
//!   (Lemma 4.4 of the paper).
//! * [`inclusion_exclusion`] — exact union probability by
//!   inclusion–exclusion over subset joints.
//! * [`dnf`] — the Karp–Luby–Madras coverage FPRAS for union probabilities
//!   (the engine behind `ApproxFCP`, Fig. 2 of the paper).
//! * [`gauss`] — Box–Muller standard-normal sampling (used to assign
//!   Gaussian existential probabilities to datasets).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod approximations;
pub mod cond_sample;
pub mod dnf;
pub mod gauss;
pub mod hoeffding;
pub mod inclusion_exclusion;
pub mod poisson_binomial;
pub mod union_bounds;

pub use approximations::{
    le_cam_bound, tail_normal, tail_poisson, tail_refined_normal, PoissonBinomialMoments,
};
pub use cond_sample::ConditionalBernoulliSampler;
pub use dnf::{
    karp_luby_union, karp_luby_union_adaptive, karp_luby_union_with_samples, AdaptiveEstimate,
    KarpLubyEstimate, UnionEventSystem,
};
pub use gauss::{clamped_gaussian, standard_normal};
pub use hoeffding::{hoeffding_infrequent, hoeffding_tail_upper};
pub use inclusion_exclusion::exact_union_probability;
pub use poisson_binomial::{RemovalRefusal, SupportDistribution, TailDp};
pub use union_bounds::PairwiseUnionBounds;

/// Numerical tolerance used across the crate when comparing probabilities.
///
/// Dynamic programs over thousands of `f64` multiplications accumulate
/// rounding on the order of `n · ulp`; comparisons against thresholds use
/// this slack so that prunings never become unsound due to rounding.
pub const PROB_EPS: f64 = 1e-9;

/// Clamp a floating-point value into the closed interval `[0, 1]`.
///
/// Dynamic programs can produce values like `1.0 + 1e-16`; clamping keeps
/// every quantity a valid probability.
#[inline]
pub fn clamp_prob(p: f64) -> f64 {
    p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_prob_clamps_both_ends() {
        assert_eq!(clamp_prob(-0.25), 0.0);
        assert_eq!(clamp_prob(1.25), 1.0);
        assert_eq!(clamp_prob(0.5), 0.5);
    }

    #[test]
    fn clamp_prob_is_identity_on_unit_interval() {
        for i in 0..=100 {
            let p = i as f64 / 100.0;
            assert_eq!(clamp_prob(p), p);
        }
    }
}
