//! UF-growth (Leung, Mateo & Brajczuk, PAKDD'08) adapted to the
//! tuple-uncertainty model: pattern growth over a *weighted* FP-tree.
//!
//! In the original attribute-uncertainty setting UF-growth merges tree
//! nodes only when item and probability coincide; under tuple-uncertainty
//! a transaction exists as a whole with probability `p_T`, so the
//! expected support of `X` is `Σ_{T ⊇ X} p_T` and the structure
//! simplifies to an FP-tree with fractional counts — each transaction is
//! inserted with weight `p_T`. The result set is exactly that of
//! [`crate::expected::expected_frequent_itemsets`] (U-Apriori); the two
//! are cross-validated in the tests, mirroring how the original papers
//! validated UF-growth against U-Apriori.

use std::collections::HashMap;

use utdb::{Item, UncertainDatabase};

use crate::expected::ExpectedItemset;

/// A node of the weighted FP-tree.
#[derive(Debug)]
struct Node {
    item: Item,
    weight: f64,
    parent: Option<usize>,
    children: HashMap<Item, usize>,
}

/// A weighted (expected-support) FP-tree.
#[derive(Debug)]
struct WeightedTree {
    nodes: Vec<Node>,
    header: HashMap<Item, Vec<usize>>,
    item_weights: HashMap<Item, f64>,
}

impl WeightedTree {
    fn new() -> Self {
        Self {
            nodes: vec![Node {
                item: Item(u32::MAX),
                weight: 0.0,
                parent: None,
                children: HashMap::new(),
            }],
            header: HashMap::new(),
            item_weights: HashMap::new(),
        }
    }

    fn insert(&mut self, path: &[Item], weight: f64) {
        let mut current = 0usize;
        for &item in path {
            current = match self.nodes[current].children.get(&item) {
                Some(&child) => {
                    self.nodes[child].weight += weight;
                    child
                }
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(Node {
                        item,
                        weight,
                        parent: Some(current),
                        children: HashMap::new(),
                    });
                    self.nodes[current].children.insert(item, id);
                    self.header.entry(item).or_default().push(id);
                    id
                }
            };
            *self.item_weights.entry(item).or_default() += weight;
        }
    }

    fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Weighted conditional pattern base of `item`.
    fn conditional_base(&self, item: Item) -> Vec<(Vec<Item>, f64)> {
        let Some(chain) = self.header.get(&item) else {
            return Vec::new();
        };
        let mut base = Vec::with_capacity(chain.len());
        for &node_id in chain {
            let weight = self.nodes[node_id].weight;
            let mut path = Vec::new();
            let mut cursor = self.nodes[node_id].parent;
            while let Some(id) = cursor {
                if id == 0 {
                    break;
                }
                path.push(self.nodes[id].item);
                cursor = self.nodes[id].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, weight));
            }
        }
        base
    }
}

/// Mine all itemsets with expected support at least `min_esup` via
/// pattern growth over the weighted FP-tree.
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[("a b", 0.8), ("a", 0.5)]);
/// let out = pfim::expected_frequent_itemsets_ufgrowth(&db, 1.0);
/// assert_eq!(out.len(), 1); // only {a} with E[sup] = 1.3
/// ```
///
/// # Panics
///
/// Panics if `min_esup` is not positive.
pub fn expected_frequent_itemsets_ufgrowth(
    db: &UncertainDatabase,
    min_esup: f64,
) -> Vec<ExpectedItemset> {
    assert!(min_esup > 0.0, "min_esup must be positive");

    // Item order: descending expected support, ties by id.
    let mut frequent: Vec<(Item, f64)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .map(|item| (item, db.expected_support(&[item])))
        .filter(|&(_, w)| w >= min_esup)
        .collect();
    frequent.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("expected supports are finite")
            .then(a.0.cmp(&b.0))
    });
    let rank: HashMap<Item, usize> = frequent
        .iter()
        .enumerate()
        .map(|(r, &(item, _))| (item, r))
        .collect();

    let mut tree = WeightedTree::new();
    let mut path: Vec<Item> = Vec::new();
    for t in db.transactions() {
        path.clear();
        path.extend(t.items().iter().copied().filter(|i| rank.contains_key(i)));
        path.sort_by_key(|i| rank[i]);
        if !path.is_empty() {
            tree.insert(&path, t.probability());
        }
    }

    let mut results = Vec::new();
    let mut suffix = Vec::new();
    grow(&tree, min_esup, &mut suffix, &mut results);
    for m in &mut results {
        m.items.sort_unstable();
    }
    results
}

fn grow(
    tree: &WeightedTree,
    min_esup: f64,
    suffix: &mut Vec<Item>,
    results: &mut Vec<ExpectedItemset>,
) {
    // Floating-point accumulation slack: a conditional weight sum may land
    // a few ulps under the threshold even when the direct sum clears it.
    const SLACK: f64 = 1e-9;
    let mut items: Vec<(Item, f64)> = tree
        .item_weights
        .iter()
        .map(|(&i, &w)| (i, w))
        .filter(|&(_, w)| w >= min_esup - SLACK)
        .collect();
    items.sort_by_key(|&(item, _)| item);

    for (item, weight) in items {
        suffix.push(item);
        results.push(ExpectedItemset {
            items: suffix.clone(),
            expected_support: weight,
        });
        let base = tree.conditional_base(item);
        let mut cond_weights: HashMap<Item, f64> = HashMap::new();
        for (path, w) in &base {
            for &i in path {
                *cond_weights.entry(i).or_default() += w;
            }
        }
        let mut cond = WeightedTree::new();
        let mut filtered: Vec<Item> = Vec::new();
        for (path, w) in &base {
            filtered.clear();
            filtered.extend(
                path.iter()
                    .copied()
                    .filter(|i| cond_weights[i] >= min_esup - SLACK),
            );
            if !filtered.is_empty() {
                cond.insert(&filtered, *w);
            }
        }
        if !cond.is_empty() {
            grow(&cond, min_esup, suffix, results);
        }
        suffix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expected::expected_frequent_itemsets;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn canonical(mut v: Vec<ExpectedItemset>) -> Vec<(Vec<utdb::Item>, f64)> {
        v.sort_by(|a, b| a.items.cmp(&b.items));
        v.into_iter()
            .map(|m| (m.items, m.expected_support))
            .collect()
    }

    #[test]
    fn matches_uapriori_on_the_running_example() {
        let db = table2();
        for min_esup in [0.5, 1.8, 2.0, 3.0] {
            let a = canonical(expected_frequent_itemsets(&db, min_esup));
            let b = canonical(expected_frequent_itemsets_ufgrowth(&db, min_esup));
            assert_eq!(a.len(), b.len(), "min_esup={min_esup}");
            for ((ia, sa), (ib, sb)) in a.iter().zip(&b) {
                assert_eq!(ia, ib);
                assert!((sa - sb).abs() < 1e-9, "{ia:?}: {sa} vs {sb}");
            }
        }
    }

    #[test]
    fn matches_uapriori_on_random_uncertain_data() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        use utdb::{ItemDictionary, UncertainTransaction};
        for seed in 0..10 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut rows = Vec::new();
            while rows.len() < 25 {
                let items: Vec<Item> = (0..8u32)
                    .filter(|_| rng.random::<f64>() < 0.45)
                    .map(Item)
                    .collect();
                if items.is_empty() {
                    continue;
                }
                rows.push(UncertainTransaction::new(
                    items,
                    0.1 + 0.9 * rng.random::<f64>(),
                ));
            }
            let db = UncertainDatabase::new(rows, ItemDictionary::new());
            for min_esup in [1.0, 2.5, 5.0] {
                let a = canonical(expected_frequent_itemsets(&db, min_esup));
                let b = canonical(expected_frequent_itemsets_ufgrowth(&db, min_esup));
                assert_eq!(
                    a.iter().map(|(i, _)| i).collect::<Vec<_>>(),
                    b.iter().map(|(i, _)| i).collect::<Vec<_>>(),
                    "seed={seed} min_esup={min_esup}"
                );
            }
        }
    }

    #[test]
    fn weighted_tree_merges_prefixes() {
        let mut t = WeightedTree::new();
        t.insert(&[Item(0), Item(1)], 0.5);
        t.insert(&[Item(0), Item(1)], 0.25);
        t.insert(&[Item(0)], 0.5);
        assert_eq!(t.nodes.len(), 3); // root + 2
        assert!((t.item_weights[&Item(0)] - 1.25).abs() < 1e-12);
        assert!((t.item_weights[&Item(1)] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_database() {
        let db = UncertainDatabase::new(vec![], utdb::ItemDictionary::new());
        assert!(expected_frequent_itemsets_ufgrowth(&db, 1.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_threshold() {
        expected_frequent_itemsets_ufgrowth(&table2(), 0.0);
    }
}
