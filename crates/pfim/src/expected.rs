//! The expected-support model and the U-Apriori miner (Chui, Kao & Hung,
//! PAKDD'07).
//!
//! Here an itemset's significance is its *expected support*
//! `Σ_{T ⊇ X} Pr(T)` — a single number instead of a distribution. The
//! expected support is anti-monotone, so plain Apriori applies with the
//! count replaced by the probability sum. Included as the second baseline
//! family from the related-work section.

use utdb::{Item, TidSet, UncertainDatabase};

/// An itemset mined under the expected-support model.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpectedItemset {
    /// The itemset, sorted ascending.
    pub items: Vec<Item>,
    /// Its expected support `Σ_{T ⊇ X} Pr(T)`.
    pub expected_support: f64,
}

/// Mine all itemsets whose expected support is at least `min_esup`
/// (U-Apriori, realized depth-first over the vertical layout — the result
/// set is identical to the level-wise original).
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[("a b", 0.8), ("a", 0.5)]);
/// let out = pfim::expected_frequent_itemsets(&db, 1.0);
/// // E[sup({a})] = 1.3, E[sup({b})] = 0.8, E[sup({a,b})] = 0.8.
/// assert_eq!(out.len(), 1);
/// assert!((out[0].expected_support - 1.3).abs() < 1e-12);
/// ```
pub fn expected_frequent_itemsets(db: &UncertainDatabase, min_esup: f64) -> Vec<ExpectedItemset> {
    assert!(min_esup > 0.0, "min_esup must be positive");
    let singles: Vec<(Item, TidSet)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .filter_map(|item| {
            let ts = db.tidset_of(item);
            (esup(db, ts) >= min_esup).then(|| (item, ts.clone()))
        })
        .collect();
    let mut results = Vec::new();
    let mut prefix = Vec::new();
    recurse(db, &singles, &mut prefix, min_esup, &mut results);
    results
}

fn esup(db: &UncertainDatabase, tids: &TidSet) -> f64 {
    tids.iter().map(|tid| db.probability(tid)).sum()
}

fn recurse(
    db: &UncertainDatabase,
    equiv: &[(Item, TidSet)],
    prefix: &mut Vec<Item>,
    min_esup: f64,
    results: &mut Vec<ExpectedItemset>,
) {
    for (idx, (item, tids)) in equiv.iter().enumerate() {
        prefix.push(*item);
        results.push(ExpectedItemset {
            items: prefix.clone(),
            expected_support: esup(db, tids),
        });
        let mut child = Vec::new();
        for (other, other_tids) in &equiv[idx + 1..] {
            let joint = tids.intersection(other_tids);
            if esup(db, &joint) >= min_esup {
                child.push((*other, joint));
            }
        }
        if !child.is_empty() {
            recurse(db, &child, prefix, min_esup, results);
        }
        prefix.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    #[test]
    fn expected_support_values() {
        let db = table2();
        let out = expected_frequent_itemsets(&db, 1.8);
        // E[sup] = 3.1 for every subset of {a,b,c}; 1.8 for sets with d.
        assert_eq!(out.len(), 15);
        for m in &out {
            let expected =
                if m.items.len() == 4 || m.items.contains(&db.dictionary().get("d").unwrap()) {
                    1.8
                } else {
                    3.1
                };
            assert!(
                (m.expected_support - expected).abs() < 1e-12,
                "{:?}",
                m.items
            );
        }
    }

    #[test]
    fn threshold_filters() {
        let db = table2();
        let out = expected_frequent_itemsets(&db, 2.0);
        // Only the 7 subsets of {a,b,c} survive.
        assert_eq!(out.len(), 7);
    }

    #[test]
    fn expected_support_is_anti_monotone_in_results() {
        let db = table2();
        let out = expected_frequent_itemsets(&db, 0.5);
        for m in &out {
            for drop in 0..m.items.len() {
                let mut sub = m.items.clone();
                sub.remove(drop);
                if sub.is_empty() {
                    continue;
                }
                assert!(db.expected_support(&sub) >= m.expected_support - 1e-12);
            }
        }
    }

    #[test]
    fn matches_database_expected_support() {
        let db = table2();
        for m in expected_frequent_itemsets(&db, 0.5) {
            assert!((db.expected_support(&m.items) - m.expected_support).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_threshold() {
        expected_frequent_itemsets(&table2(), 0.0);
    }
}
