//! Mining the complete set of *probabilistic frequent itemsets* (PFIs)
//! under the probabilistic frequent model — the result set of the TODIS
//! algorithm (Sun, Cheng, Cheung & Cheng, KDD'10) that feeds the paper's
//! "Naive" baseline and the PFI counts of Fig. 10.
//!
//! An itemset `X` is a PFI when `Pr_F(X) = Pr{ sup(X) ≥ min_sup } > pft`
//! (Definition 3.5). `Pr_F` is anti-monotone under itemset extension
//! (`T(X∪e) ⊆ T(X)` implies `sup(X∪e) ≤ sup(X)` in every world), so
//! depth-first search with tid-set intersection enumerates exactly the
//! PFIs. A Chernoff–Hoeffding pre-test skips the exact DP when the bound
//! already refutes frequency.
//!
//! The module also implements the *probabilistic support* of the related
//! work \[34\] discussed in §II.B: the largest support level `s` such that
//! `Pr{ sup(X) ≥ s } ≥ pft` — used by the Table IV semantics comparison.

use prob::hoeffding::hoeffding_infrequent;
use utdb::{Item, TidSet, UncertainDatabase};

use crate::freq_prob::FreqProbScratch;

/// A probabilistic frequent itemset.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbabilisticItemset {
    /// The itemset, sorted ascending.
    pub items: Vec<Item>,
    /// `Pr{ sup(X) ≥ min_sup }`.
    pub frequent_probability: f64,
    /// Number of transactions possibly containing the itemset.
    pub count: usize,
}

/// Mine all probabilistic frequent itemsets.
///
/// # Examples
///
/// The running example yields 15 PFIs at `min_sup = 2`, `pft = 0.8`
/// (Example 1.1): every non-empty subset of `{a,b,c,d}`.
///
/// ```
/// use utdb::UncertainDatabase;
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b c d", 0.9),
///     ("a b c", 0.6),
///     ("a b c", 0.7),
///     ("a b c d", 0.9),
/// ]);
/// let pfis = pfim::probabilistic_frequent_itemsets(&db, 2, 0.8);
/// assert_eq!(pfis.len(), 15);
/// ```
pub fn probabilistic_frequent_itemsets(
    db: &UncertainDatabase,
    min_sup: usize,
    pft: f64,
) -> Vec<ProbabilisticItemset> {
    assert!((0.0..1.0).contains(&pft), "pft must lie in [0, 1)");
    let min_sup = min_sup.max(1);
    let mut scratch = FreqProbScratch::new();
    let mut results = Vec::new();

    let singles: Vec<(Item, TidSet)> = (0..db.num_items())
        .map(|id| Item(id as u32))
        .filter_map(|item| {
            let tids = db.tidset_of(item);
            qualify(db, tids, min_sup, pft, &mut scratch).map(|_| (item, tids.clone()))
        })
        .collect();

    let mut prefix = Vec::new();
    recurse(
        db,
        &singles,
        &mut prefix,
        min_sup,
        pft,
        &mut scratch,
        &mut results,
    );
    results
}

/// Returns `Some(Pr_F)` when the tid-set's frequent probability clears
/// `pft`, applying the Chernoff–Hoeffding refutation first.
fn qualify(
    db: &UncertainDatabase,
    tids: &TidSet,
    min_sup: usize,
    pft: f64,
    scratch: &mut FreqProbScratch,
) -> Option<f64> {
    let count = tids.count();
    if count < min_sup {
        return None;
    }
    let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
    if hoeffding_infrequent(esup, count, min_sup, pft) {
        return None;
    }
    let p = scratch.tail(db, tids, min_sup);
    (p > pft).then_some(p)
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    db: &UncertainDatabase,
    equiv: &[(Item, TidSet)],
    prefix: &mut Vec<Item>,
    min_sup: usize,
    pft: f64,
    scratch: &mut FreqProbScratch,
    results: &mut Vec<ProbabilisticItemset>,
) {
    for (idx, (item, tids)) in equiv.iter().enumerate() {
        prefix.push(*item);
        // Every itemset in `equiv` has already qualified.
        results.push(ProbabilisticItemset {
            items: prefix.clone(),
            frequent_probability: scratch.tail(db, tids, min_sup),
            count: tids.count(),
        });
        let mut child = Vec::new();
        for (other, other_tids) in &equiv[idx + 1..] {
            let joint = tids.intersection(other_tids);
            if qualify(db, &joint, min_sup, pft, scratch).is_some() {
                child.push((*other, joint));
            }
        }
        if !child.is_empty() {
            recurse(db, &child, prefix, min_sup, pft, scratch, results);
        }
        prefix.pop();
    }
}

/// The *probabilistic support* of an itemset under threshold `pft` (the
/// definition of the related work \[34\]): the largest `s` with
/// `Pr{ sup(X) ≥ s } ≥ pft`, or 0 when even `s = 1` fails.
pub fn probabilistic_support(db: &UncertainDatabase, itemset: &[Item], pft: f64) -> usize {
    let tids = db.tidset_of_itemset(itemset);
    let probs: Vec<f64> = tids.iter().map(|tid| db.probability(tid)).collect();
    let dist = prob::SupportDistribution::new(&probs);
    // tail(s) is non-increasing in s: scan down from the count.
    for s in (1..=probs.len()).rev() {
        if dist.tail(s) >= pft {
            return s;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use utdb::PossibleWorlds;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn table4() -> UncertainDatabase {
        // Table IV: Table II plus T5 = {a,b}:0.4 and T6 = {a}:0.4.
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    /// Brute-force PFI set over all non-empty subsets of the item space.
    fn brute_pfis(db: &UncertainDatabase, min_sup: usize, pft: f64) -> Vec<Vec<Item>> {
        let m = db.num_items();
        let mut out = Vec::new();
        for mask in 1u32..(1 << m) {
            let items: Vec<Item> = (0..m as u32)
                .filter(|i| mask >> i & 1 == 1)
                .map(Item)
                .collect();
            let p: f64 = PossibleWorlds::new(db)
                .filter(|&(wmask, _)| {
                    PossibleWorlds::support_in_world(db, wmask, &items) >= min_sup
                })
                .map(|(_, p)| p)
                .sum();
            if p > pft {
                out.push(items);
            }
        }
        out.sort();
        out
    }

    #[test]
    fn running_example_has_15_pfis() {
        let db = table2();
        let pfis = probabilistic_frequent_itemsets(&db, 2, 0.8);
        assert_eq!(pfis.len(), 15);
        // Paper: 7 itemsets (subsets of {a,b,c}) share probability 0.9726
        // and the 8 containing d share 0.81.
        let near = |x: f64, y: f64| (x - y).abs() < 1e-10;
        let hi = pfis
            .iter()
            .filter(|p| near(p.frequent_probability, 0.9726))
            .count();
        let lo = pfis
            .iter()
            .filter(|p| near(p.frequent_probability, 0.81))
            .count();
        assert_eq!((hi, lo), (7, 8));
    }

    #[test]
    fn matches_brute_force() {
        for (min_sup, pft) in [(1, 0.5), (2, 0.8), (2, 0.95), (3, 0.3), (4, 0.5)] {
            let db = table2();
            let mut got: Vec<Vec<Item>> = probabilistic_frequent_itemsets(&db, min_sup, pft)
                .into_iter()
                .map(|p| p.items)
                .collect();
            got.sort();
            assert_eq!(got, brute_pfis(&db, min_sup, pft), "ms={min_sup} pft={pft}");
        }
    }

    #[test]
    fn matches_brute_force_on_table4() {
        let db = table4();
        for pft in [0.8, 0.9] {
            let mut got: Vec<Vec<Item>> = probabilistic_frequent_itemsets(&db, 2, pft)
                .into_iter()
                .map(|p| p.items)
                .collect();
            got.sort();
            assert_eq!(got, brute_pfis(&db, 2, pft), "pft={pft}");
        }
    }

    #[test]
    fn higher_pft_shrinks_result() {
        let db = table2();
        let lo = probabilistic_frequent_itemsets(&db, 2, 0.5).len();
        let hi = probabilistic_frequent_itemsets(&db, 2, 0.9).len();
        assert!(hi <= lo);
    }

    #[test]
    fn probabilistic_support_of_table4_singletons() {
        // §II.B: Pr_F({a}) = 0.99 at min_sup 2 in Table IV, so the
        // probabilistic support of {a} at pft 0.9 is at least 2.
        let db = table4();
        let a = vec![db.dictionary().get("a").unwrap()];
        let ps = probabilistic_support(&db, &a, 0.9);
        assert!(ps >= 2, "{ps}");
        // And tail at the reported level must clear the threshold.
        let probs: Vec<f64> = db
            .tidset_of_itemset(&a)
            .iter()
            .map(|t| db.probability(t))
            .collect();
        let dist = prob::SupportDistribution::new(&probs);
        assert!(dist.tail(ps) >= 0.9);
        assert!(ps == probs.len() || dist.tail(ps + 1) < 0.9);
    }

    #[test]
    fn probabilistic_support_zero_when_nothing_clears() {
        let db = UncertainDatabase::parse_symbolic(&[("a", 0.1)]);
        let a = vec![db.dictionary().get("a").unwrap()];
        assert_eq!(probabilistic_support(&db, &a, 0.9), 0);
    }

    #[test]
    fn frequent_probabilities_in_results_are_correct() {
        let db = table4();
        for p in probabilistic_frequent_itemsets(&db, 2, 0.5) {
            let direct = crate::frequent_probability(&db, &p.items, 2);
            assert!((p.frequent_probability - direct).abs() < 1e-12);
            assert!(p.frequent_probability > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "pft")]
    fn rejects_pft_of_one() {
        probabilistic_frequent_itemsets(&table2(), 2, 1.0);
    }
}
