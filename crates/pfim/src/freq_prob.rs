//! The frequent probability `Pr_F(X) = Pr{ sup(X) ≥ min_sup }`
//! (Definition 3.4) via the polynomial dynamic program.
//!
//! Under tuple-uncertainty, `sup(X)` is a Poisson–binomial sum over the
//! existential probabilities of the transactions containing `X`; the
//! threshold-capped DP of `pfcim-prob` evaluates its tail in
//! `O(|T(X)| · min_sup)`.

use prob::poisson_binomial::tail_at_least_with;
use utdb::{Item, TidSet, UncertainDatabase};

/// Reusable scratch buffers for repeated frequent-probability queries —
/// the miner calls this in a hot loop and must not allocate per call.
#[derive(Debug, Default)]
pub struct FreqProbScratch {
    probs: Vec<f64>,
    dp: Vec<f64>,
}

impl FreqProbScratch {
    /// Fresh scratch space.
    pub fn new() -> Self {
        Self::default()
    }

    /// `Pr{ sup ≥ min_sup }` for the transactions in `tids`.
    pub fn tail(&mut self, db: &UncertainDatabase, tids: &TidSet, min_sup: usize) -> f64 {
        if min_sup == 0 {
            return 1.0;
        }
        self.probs.clear();
        self.probs
            .extend(tids.iter().map(|tid| db.probability(tid)));
        if min_sup > self.probs.len() {
            return 0.0;
        }
        if self.dp.len() < min_sup + 1 {
            self.dp.resize(min_sup + 1, 0.0);
        }
        tail_at_least_with(&self.probs, min_sup, &mut self.dp)
    }
}

/// Frequent probability of an itemset (allocating convenience wrapper).
///
/// # Examples
///
/// ```
/// use utdb::UncertainDatabase;
/// // Paper running example: Pr_F({a,b,c,d}) at min_sup 2 is 0.81.
/// let db = UncertainDatabase::parse_symbolic(&[
///     ("a b c d", 0.9),
///     ("a b c", 0.6),
///     ("a b c", 0.7),
///     ("a b c d", 0.9),
/// ]);
/// let abcd: Vec<_> = ["a", "b", "c", "d"]
///     .iter()
///     .map(|s| db.dictionary().get(s).unwrap())
///     .collect();
/// let p = pfim::frequent_probability(&db, &abcd, 2);
/// assert!((p - 0.81).abs() < 1e-12);
/// ```
pub fn frequent_probability(db: &UncertainDatabase, itemset: &[Item], min_sup: usize) -> f64 {
    let tids = db.tidset_of_itemset(itemset);
    frequent_probability_of_tids(db, &tids, min_sup)
}

/// Frequent probability given the itemset's tid-set directly.
pub fn frequent_probability_of_tids(db: &UncertainDatabase, tids: &TidSet, min_sup: usize) -> f64 {
    FreqProbScratch::new().tail(db, tids, min_sup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use utdb::PossibleWorlds;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn items(db: &UncertainDatabase, s: &str) -> Vec<Item> {
        s.split_whitespace()
            .map(|x| db.dictionary().get(x).unwrap())
            .collect()
    }

    /// Oracle: sum world probabilities where support reaches min_sup.
    fn brute_freq_prob(db: &UncertainDatabase, itemset: &[Item], min_sup: usize) -> f64 {
        PossibleWorlds::new(db)
            .filter(|&(mask, _)| PossibleWorlds::support_in_world(db, mask, itemset) >= min_sup)
            .map(|(_, p)| p)
            .sum()
    }

    #[test]
    fn matches_possible_world_oracle_on_table_ii() {
        let db = table2();
        for itemset in ["a", "a b", "a b c", "d", "a b c d"] {
            let x = items(&db, itemset);
            for min_sup in 0..=5 {
                let dp = frequent_probability(&db, &x, min_sup);
                let oracle = brute_freq_prob(&db, &x, min_sup);
                assert!(
                    (dp - oracle).abs() < 1e-10,
                    "X={itemset} min_sup={min_sup}: {dp} vs {oracle}"
                );
            }
        }
    }

    #[test]
    fn paper_values() {
        let db = table2();
        assert!((frequent_probability(&db, &items(&db, "a b c d"), 2) - 0.81).abs() < 1e-12);
        assert!((frequent_probability(&db, &items(&db, "a b c"), 2) - 0.9726).abs() < 1e-12);
    }

    #[test]
    fn anti_monotone_in_itemset() {
        // Pr_F(X ∪ {e}) <= Pr_F(X) pointwise.
        let db = table2();
        let abc = frequent_probability(&db, &items(&db, "a b c"), 2);
        let abcd = frequent_probability(&db, &items(&db, "a b c d"), 2);
        assert!(abcd <= abc + 1e-12);
    }

    #[test]
    fn monotone_decreasing_in_min_sup() {
        let db = table2();
        let x = items(&db, "a b c");
        let mut prev = 1.0;
        for ms in 0..=5 {
            let p = frequent_probability(&db, &x, ms);
            assert!(p <= prev + 1e-12);
            prev = p;
        }
    }

    #[test]
    fn scratch_reuse_is_consistent() {
        let db = table2();
        let mut scratch = FreqProbScratch::new();
        let x = items(&db, "a b c");
        let tids = db.tidset_of_itemset(&x);
        let first = scratch.tail(&db, &tids, 2);
        // Re-run with different min_sup sizes in between to exercise the
        // buffer resizing, then come back.
        let _ = scratch.tail(&db, &tids, 4);
        let _ = scratch.tail(&db, &tids, 1);
        let again = scratch.tail(&db, &tids, 2);
        assert_eq!(first, again);
    }

    #[test]
    fn nonexistent_itemset_has_zero_probability() {
        let db = table2();
        let d = items(&db, "d");
        assert_eq!(frequent_probability(&db, &d, 3), 0.0);
    }
}
