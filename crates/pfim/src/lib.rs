//! Probabilistic frequent itemset mining — the prior work the paper
//! builds on and compares against.
//!
//! Two uncertainty models from the literature are implemented:
//!
//! * **Probabilistic frequent model** (Bernecker et al. KDD'09; Sun et al.
//!   "TODIS" KDD'10): an itemset is *probabilistically frequent* when
//!   `Pr{ sup(X) ≥ min_sup } > pft`. [`freq_prob`] computes the frequent
//!   probability by the `O(n · min_sup)` dynamic program; [`todis`] mines
//!   the complete result set (the input to the paper's "Naive" baseline
//!   and the PFI counts of Fig. 10), and also exposes the *probabilistic
//!   support* notion used by the related-work comparison in §II.B.
//! * **Expected support model** (Chui et al. PAKDD'07): an itemset is
//!   frequent when its expected support reaches a threshold. [`expected`]
//!   implements the U-Apriori miner.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod expected;
pub mod freq_prob;
pub mod todis;
pub mod uf_growth;

pub use expected::{expected_frequent_itemsets, ExpectedItemset};
pub use freq_prob::{frequent_probability, frequent_probability_of_tids, FreqProbScratch};
pub use todis::{probabilistic_frequent_itemsets, probabilistic_support, ProbabilisticItemset};
pub use uf_growth::expected_frequent_itemsets_ufgrowth;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use utdb::{Item, ItemDictionary, PossibleWorlds, UncertainDatabase, UncertainTransaction};

    fn arb_udb() -> impl Strategy<Value = UncertainDatabase> {
        let tx = (1u32..64, 0.05f64..1.0);
        proptest::collection::vec(tx, 1..10).prop_map(|rows| {
            let transactions: Vec<UncertainTransaction> = rows
                .into_iter()
                .map(|(mask, p)| {
                    let items: Vec<Item> =
                        (0..6).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                    UncertainTransaction::new(items, p)
                })
                .collect();
            UncertainDatabase::new(transactions, ItemDictionary::new())
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The DP frequent probability equals the possible-world measure.
        #[test]
        fn freq_prob_matches_world_oracle(db in arb_udb(), min_sup in 0usize..4) {
            let m = db.num_items() as u32;
            for mask in 1u32..(1 << m.min(6)) {
                let x: Vec<Item> =
                    (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                let dp = frequent_probability(&db, &x, min_sup);
                let oracle: f64 = PossibleWorlds::new(&db)
                    .filter(|&(w, _)| {
                        PossibleWorlds::support_in_world(&db, w, &x) >= min_sup
                    })
                    .map(|(_, p)| p)
                    .sum();
                prop_assert!((dp - oracle).abs() < 1e-9, "X={x:?}: {dp} vs {oracle}");
            }
        }

        /// Frequent probability is anti-monotone under itemset extension.
        #[test]
        fn freq_prob_is_anti_monotone(db in arb_udb(), min_sup in 1usize..3) {
            let m = db.num_items() as u32;
            for mask in 1u32..(1 << m.min(6)) {
                let x: Vec<Item> =
                    (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                let px = frequent_probability(&db, &x, min_sup);
                for e in 0..m {
                    if mask >> e & 1 == 1 {
                        continue;
                    }
                    let mut xe = x.clone();
                    xe.push(Item(e));
                    xe.sort_unstable();
                    let pxe = frequent_probability(&db, &xe, min_sup);
                    prop_assert!(pxe <= px + 1e-12);
                }
            }
        }

        /// The PFI miner returns exactly the itemsets clearing the
        /// threshold, each with its correct probability.
        #[test]
        fn pfi_miner_is_exact(db in arb_udb(), pft in 0.05f64..0.95) {
            let min_sup = 2;
            let got = probabilistic_frequent_itemsets(&db, min_sup, pft);
            for p in &got {
                prop_assert!(p.frequent_probability > pft);
                let direct = frequent_probability(&db, &p.items, min_sup);
                prop_assert!((p.frequent_probability - direct).abs() < 1e-12);
            }
            // Completeness over singletons and pairs.
            let m = db.num_items() as u32;
            let got_sets: Vec<&[Item]> =
                got.iter().map(|p| p.items.as_slice()).collect();
            for mask in 1u32..(1 << m.min(6)) {
                if mask.count_ones() > 2 {
                    continue;
                }
                let x: Vec<Item> =
                    (0..m).filter(|i| mask >> i & 1 == 1).map(Item).collect();
                let should = frequent_probability(&db, &x, min_sup) > pft;
                prop_assert_eq!(got_sets.contains(&x.as_slice()), should, "X={:?}", x);
            }
        }

        /// Probabilistic support is the largest level whose tail clears
        /// the threshold.
        #[test]
        fn probabilistic_support_is_maximal(db in arb_udb(), pft in 0.1f64..0.9) {
            let m = db.num_items() as u32;
            for id in 0..m {
                let x = vec![Item(id)];
                if db.count_of_itemset(&x) == 0 {
                    continue;
                }
                let ps = probabilistic_support(&db, &x, pft);
                if ps > 0 {
                    prop_assert!(frequent_probability(&db, &x, ps) >= pft);
                }
                prop_assert!(frequent_probability(&db, &x, ps + 1) < pft);
            }
        }

        /// Expected support model: U-Apriori results carry exact expected
        /// supports above the threshold.
        #[test]
        fn expected_support_model_is_exact(db in arb_udb(), min_esup in 0.1f64..2.0) {
            for m in expected_frequent_itemsets(&db, min_esup) {
                prop_assert!(m.expected_support >= min_esup);
                prop_assert!(
                    (m.expected_support - db.expected_support(&m.items)).abs() < 1e-12
                );
            }
        }
    }
}
