//! Minimal, dependency-free micro-benchmark harness for the pfcim
//! workspace.
//!
//! An in-tree stand-in for the `criterion` crate providing the subset of
//! its API the workspace's benches use, so the build stays hermetic (no
//! registry access). Statistics are deliberately simple: each benchmark
//! runs a timed warm-up, then as many iterations as fit the configured
//! measurement window (capped by `sample_size`), and reports the mean,
//! minimum and maximum wall-clock time per iteration.
//!
//! Invoking a bench binary with `--list` prints the benchmark names
//! without running them (mirroring the flag test harnesses pass).

#![deny(missing_docs)]
#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement back-ends (wall-clock only in this shim).

    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

/// Identifier of one benchmark within a group: a function name plus an
/// optional parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id with no parameter component.
    pub fn from_name(name: impl Into<String>) -> Self {
        Self { name: name.into() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self::from_name(name)
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self::from_name(name)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    iters: u64,
    warm_up: Duration,
    measurement: Duration,
    list_only: bool,
}

impl Bencher {
    /// Run `f` repeatedly, recording one timing sample per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.list_only {
            return;
        }
        // Warm-up: run until the warm-up window elapses (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(f());
            if warm_start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: one sample per iteration, stopping when either the
        // sample budget or the measurement window is exhausted.
        let measure_start = Instant::now();
        self.samples.clear();
        while (self.samples.len() as u64) < self.iters.max(1)
            && (self.samples.is_empty() || measure_start.elapsed() < self.measurement)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a, M = measurement::WallTime> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed iterations per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up window before measurement (default 100 ms).
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Measurement window (default 2 s).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.name, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        self.run(&id.name, |b| f(b, input));
        self
    }

    fn run(&mut self, bench_name: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, bench_name);
        if self.criterion.list_only {
            println!("{full}: benchmark");
            return;
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters: self.sample_size as u64,
            warm_up: self.warm_up,
            measurement: self.measurement,
            list_only: false,
        };
        f(&mut bencher);
        report(&full, &bencher.samples);
    }

    /// Finish the group (a no-op hook kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{name:<50} mean {:>12?}  min {:>12?}  max {:>12?}  ({} samples)",
        mean,
        min,
        max,
        samples.len()
    );
}

/// Benchmark driver: hands out [`BenchmarkGroup`]s.
#[derive(Debug, Default)]
pub struct Criterion {
    list_only: bool,
}

impl Criterion {
    /// Apply the recognised command-line flags (`--list`); unknown flags
    /// (as passed by `cargo bench -- <filter>`) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        self.list_only = std::env::args().any(|a| a == "--list");
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 20,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_secs(2),
            _measurement: std::marker::PhantomData,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_owned();
        self.benchmark_group(name.clone())
            .bench_function(BenchmarkId::from_name(name), &mut f);
        self
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` running the given [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

/// Re-export of [`std::hint::black_box`] for API compatibility.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(50));
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(runs >= 3, "warm-up plus samples ran: {runs}");
    }

    #[test]
    fn benchmark_id_renders_name_and_param() {
        assert_eq!(BenchmarkId::new("cap", 48).name, "cap/48");
        assert_eq!(BenchmarkId::from_name("plain").name, "plain");
    }
}
