//! The "Naive" baseline of the paper's Fig. 5.
//!
//! Mine the complete probabilistic frequent itemset set with the existing
//! PFI machinery (the TODIS result set), then *directly* run the
//! `ApproxFCP` approximation on every PFI, one by one — no bounds, no
//! structural prunings. The paper shows this blows past one hour as soon
//! as `min_sup` drops, because the number of PFIs (and therefore of
//! #P-hard checks) explodes.

use std::time::Instant;

use utdb::UncertainDatabase;

use crate::config::MinerConfig;
use crate::evaluator::Evaluator;
use crate::result::MiningOutcome;
use crate::trace::{MinerSink, NullSink};

/// Mine probabilistic frequent closed itemsets by exhaustively checking
/// every probabilistic frequent itemset.
///
/// The PFI stage uses `pft = pfct`: any itemset with
/// `Pr_F(X) ≤ pfct` has `Pr_FC(X) ≤ pfct` too, so the restriction loses
/// nothing.
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Naive` instead")]
pub fn mine_naive(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    run_naive(db, config, &mut NullSink)
}

/// [`mine_naive`], observed by `sink` (see [`crate::trace`]).
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Naive` and `sink(…)` instead")]
pub fn mine_naive_with<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    run_naive(db, config, sink)
}

/// The exhaustive PFI-checking baseline proper — the engine behind the
/// [`crate::miner::Miner`] builder and the deprecated free functions.
pub(crate) fn run_naive<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    config.validate();
    sink.run_started("naive", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let mut timed_out = false;
    let mut evaluator = Evaluator::new(db, config, sink);

    let pfis = pfim::probabilistic_frequent_itemsets(db, config.min_sup, config.pfct);
    let mut results = Vec::new();
    for pfi in &pfis {
        if let Some(d) = deadline {
            if std::time::Instant::now() >= d {
                timed_out = true;
                break;
            }
        }
        evaluator.stats.nodes_visited += 1;
        evaluator.sink.node_entered(pfi.items.len());
        let tids = db.tidset_of_itemset(&pfi.items).into_bitmap();
        if let Some(pfci) = evaluator.evaluate_naive(&pfi.items, &tids, pfi.frequent_probability) {
            results.push(pfci);
        }
    }

    let Evaluator {
        stats,
        kernel,
        timers,
        audit,
        sink,
        ..
    } = evaluator;
    results.sort_by(|a, b| a.items.cmp(&b.items));
    // The PFI stage runs its own DPs outside the evaluator, so the naive
    // baseline's audit stays empty (it never produces TailDp rows here).
    let outcome = MiningOutcome {
        results,
        stats,
        kernel,
        timers,
        audit,
        elapsed: start.elapsed(),
        timed_out,
    };
    sink.run_finished(&outcome);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FcpMethod;
    use crate::mpfci::run_dfs;

    fn naive(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
        run_naive(db, cfg, &mut NullSink)
    }

    fn dfs(db: &UncertainDatabase, cfg: &MinerConfig) -> MiningOutcome {
        run_dfs(db, cfg, &mut NullSink)
    }

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    #[test]
    fn naive_matches_mpfci_result_set() {
        let db = table2();
        let cfg = MinerConfig::new(2, 0.8).with_approximation(0.05, 0.05);
        let naive = naive(&db, &cfg);
        let dfs = dfs(&db, &cfg.clone().with_fcp_method(FcpMethod::ExactOnly));
        assert_eq!(naive.itemsets(), dfs.itemsets());
    }

    #[test]
    fn naive_checks_every_pfi() {
        // 15 PFIs exist in the running example; naive must check them all
        // while MPFCI checks far fewer.
        let db = table2();
        let cfg = MinerConfig::new(2, 0.8);
        let naive = naive(&db, &cfg);
        assert_eq!(naive.stats.nodes_visited, 15);
        assert_eq!(naive.stats.fcp_sampled, 15);
        let dfs = dfs(&db, &cfg);
        assert!(dfs.stats.fcp_evaluations() < naive.stats.fcp_evaluations());
    }

    #[test]
    fn naive_fcp_values_are_close_to_exact() {
        let db = table2();
        let cfg = MinerConfig::new(2, 0.8).with_approximation(0.05, 0.05);
        let naive = naive(&db, &cfg);
        for p in &naive.results {
            let exact = crate::exact::exact_fcp_by_worlds(&db, &p.items, 2);
            assert!((p.fcp - exact).abs() < 0.02, "{:?}", p.items);
        }
    }
}
