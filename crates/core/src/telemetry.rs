//! Live run telemetry: a background sampler, a lock-free flight
//! recorder, and an in-run HTTP scrape endpoint.
//!
//! Everything else in the observability stack ([`crate::trace`],
//! [`crate::metrics`], [`crate::profile`]) is post-hoc: you learn what a
//! run did after it finishes. This module closes the loop for *live*
//! runs:
//!
//! * [`TelemetrySink`] — a [`MinerSink`] whose callbacks update shared
//!   atomic counters ([`TelemetryState`]); cloned shards share the same
//!   state, so the parallel miner feeds it without locks. It also hands
//!   the parallel fan-out a live [`PoolGauges`] via
//!   [`MinerSink::pool_gauges`].
//! * a **sampler thread** (spawned by [`Telemetry::start`]) snapshots
//!   the state every [`TelemetryConfig::sample_interval`] into a
//!   versioned [`TelemetrySample`] and pushes it into the flight
//!   recorder's ring.
//! * [`FlightRecorder`] — two fixed-capacity lock-free rings
//!   ([`WordRing`], a seqlock over atomic words) holding the last N
//!   samples and the most recent coarse miner events; [`Telemetry::
//!   install_panic_dump`] chains a panic hook that dumps both as JSONL
//!   for post-mortem triage.
//! * an **HTTP endpoint** ([`Telemetry::serve`], std-only, one thread)
//!   serving `GET /metrics` (Prometheus text, self-checked through
//!   [`lint_prometheus`]), `GET /healthz` (phase progress, ETA, a
//!   last-progress watchdog) and `GET /flight` (the ring dump) while
//!   the run is alive. Binding port `0` picks a free port; the bound
//!   address is returned.
//!
//! The sampler reads ~40 relaxed atomics per tick, so the overhead at
//! the default 100 ms interval is far below the 5 % budget the bench
//! harness enforces (see `bench-report`'s telemetry-overhead
//! measurement).
//!
//! ```
//! use pfcim_core::prelude::*;
//! use pfcim_core::telemetry::Telemetry;
//!
//! let db = UncertainDatabase::parse_symbolic(&[
//!     ("a b c d", 0.9),
//!     ("a b c", 0.6),
//!     ("a b c", 0.7),
//!     ("a b c d", 0.9),
//! ]);
//! let mut telemetry = Telemetry::start();
//! let mut sink = telemetry.sink();
//! let outcome = Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut sink).run();
//! assert_eq!(outcome.results.len(), 2);
//! // /metrics body, identical to what the HTTP endpoint would serve:
//! pfcim_core::lint_prometheus(&telemetry.metrics_text()).unwrap();
//! telemetry.shutdown();
//! ```

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::config::MinerConfig;
use crate::metrics::{lint_prometheus, MetricsRegistry};
use crate::par::PoolGauges;
use crate::result::MiningOutcome;
use crate::trace::{DpDecision, FcpEvalKind, MinerSink, Phase, ShardableSink};
use utdb::Item;

// ---------------------------------------------------------------------
// Lock-free word ring (seqlock)
// ---------------------------------------------------------------------

/// A fixed-capacity lock-free ring buffer of fixed-width `u64` records,
/// safe for concurrent writers and readers.
///
/// Implementation: a seqlock per slot. A writer claims a global index
/// `i` with one `fetch_add` on the head, then writes slot `i % capacity`
/// under the protocol *store `2·i + 1` (writing) → store the words →
/// store `2·i + 2` (stable)*. A reader accepts a record only when the
/// slot's sequence reads `2·i + 2` both before and after copying the
/// words — torn reads and records overwritten mid-copy are detected and
/// skipped, never returned. All accesses are `SeqCst` atomics on `u64`
/// words, so there is no `unsafe` and no undefined behaviour; the cost
/// is one ordered atomic op per word, which is noise at telemetry rates.
#[derive(Debug)]
pub struct WordRing {
    capacity: usize,
    record_words: usize,
    head: AtomicU64,
    seqs: Vec<AtomicU64>,
    words: Vec<AtomicU64>,
}

impl WordRing {
    /// A ring holding the last `capacity` records of `record_words`
    /// words each. Both must be nonzero.
    pub fn new(capacity: usize, record_words: usize) -> Self {
        assert!(capacity > 0 && record_words > 0);
        Self {
            capacity,
            record_words,
            head: AtomicU64::new(0),
            seqs: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            words: (0..capacity * record_words)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Number of records the ring retains.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total records ever pushed (not capped at the capacity).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::SeqCst)
    }

    /// Append a record; the oldest record is overwritten once the ring
    /// is full. `record` longer than the ring's width is truncated,
    /// shorter is zero-padded. Safe to call from any thread.
    pub fn push(&self, record: &[u64]) {
        let i = self.head.fetch_add(1, Ordering::SeqCst);
        let slot = (i % self.capacity as u64) as usize;
        let base = slot * self.record_words;
        self.seqs[slot].store(2 * i + 1, Ordering::SeqCst);
        for w in 0..self.record_words {
            let v = record.get(w).copied().unwrap_or(0);
            self.words[base + w].store(v, Ordering::SeqCst);
        }
        self.seqs[slot].store(2 * i + 2, Ordering::SeqCst);
    }

    /// Try to read the record with global index `i`; `None` when it was
    /// never written, has been overwritten, or is being written right
    /// now.
    fn read(&self, i: u64) -> Option<Vec<u64>> {
        let slot = (i % self.capacity as u64) as usize;
        let base = slot * self.record_words;
        let want = 2 * i + 2;
        if self.seqs[slot].load(Ordering::SeqCst) != want {
            return None;
        }
        let out: Vec<u64> = (0..self.record_words)
            .map(|w| self.words[base + w].load(Ordering::SeqCst))
            .collect();
        (self.seqs[slot].load(Ordering::SeqCst) == want).then_some(out)
    }

    /// A consistent copy of the retained records, oldest first, each
    /// paired with its global index. Records that a concurrent writer is
    /// touching are skipped rather than returned torn.
    pub fn snapshot(&self) -> Vec<(u64, Vec<u64>)> {
        let head = self.head.load(Ordering::SeqCst);
        let first = head.saturating_sub(self.capacity as u64);
        (first..head)
            .filter_map(|i| Some((i, self.read(i)?)))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Samples and events
// ---------------------------------------------------------------------

/// Version stamped into every [`TelemetrySample`]; bump when the word
/// layout changes.
pub const SAMPLE_VERSION: u64 = 1;

/// Fixed width of a serialized [`TelemetrySample`] in `u64` words.
pub const SAMPLE_WORDS: usize = 19 + 2 * Phase::COUNT;

/// Fixed width of a serialized [`TelemetryEvent`] in `u64` words.
pub const EVENT_WORDS: usize = 4;

/// One periodic snapshot of a live run, taken by the sampler thread (or
/// pushed at `run_finished` so even sub-interval runs leave one sample).
///
/// The counters are cumulative since [`Telemetry`] creation; rates come
/// from differencing consecutive samples. Serialization to/from the
/// flight-recorder ring is a fixed [`SAMPLE_WORDS`]-word layout
/// (`f64`-free: durations are integer microseconds/nanoseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Layout version ([`SAMPLE_VERSION`]).
    pub version: u64,
    /// Sample index (the flight ring's global index at push time).
    pub seq: u64,
    /// Microseconds since the telemetry session started.
    pub elapsed_us: u64,
    /// Enumeration nodes visited.
    pub nodes: u64,
    /// Result itemsets emitted.
    pub results: u64,
    /// Candidates eliminated by any pruning rule.
    pub prunes: u64,
    /// Frequentness-DP evaluations.
    pub freq_prob_evals: u64,
    /// DP rows produced by incremental downdate.
    pub dp_incremental: u64,
    /// DP rows rebuilt from scratch (any audit reason).
    pub dp_rebuilt: u64,
    /// Exact FCP evaluations.
    pub fcp_exact: u64,
    /// Sampled (`ApproxFCP`) evaluations.
    pub fcp_sampled: u64,
    /// Monte-Carlo samples drawn in total.
    pub samples_drawn: u64,
    /// Pool: tasks submitted across all fan-outs.
    pub pool_total: u64,
    /// Pool: tasks completed (`pool_total − pool_completed` = queued or
    /// in flight).
    pub pool_completed: u64,
    /// Pool: largest worker count seen.
    pub pool_workers: u64,
    /// Pool: task executions summed over workers.
    pub pool_tasks: u64,
    /// Pool: successful steal sweeps summed over workers.
    pub pool_steals: u64,
    /// Pool: terminal idle sweeps summed over workers.
    pub pool_idles: u64,
    /// Microseconds (since session start) of the last progress event —
    /// the watchdog input.
    pub last_progress_us: u64,
    /// Per-phase completed timing calls, indexed by [`Phase::index`].
    pub phase_calls: [u64; Phase::COUNT],
    /// Per-phase cumulative nanoseconds, indexed by [`Phase::index`].
    pub phase_ns: [u64; Phase::COUNT],
}

impl TelemetrySample {
    /// Serialize into the fixed ring layout.
    pub fn to_words(&self) -> [u64; SAMPLE_WORDS] {
        let mut w = [0u64; SAMPLE_WORDS];
        w[0] = self.version;
        w[1] = self.seq;
        w[2] = self.elapsed_us;
        w[3] = self.nodes;
        w[4] = self.results;
        w[5] = self.prunes;
        w[6] = self.freq_prob_evals;
        w[7] = self.dp_incremental;
        w[8] = self.dp_rebuilt;
        w[9] = self.fcp_exact;
        w[10] = self.fcp_sampled;
        w[11] = self.samples_drawn;
        w[12] = self.pool_total;
        w[13] = self.pool_completed;
        w[14] = self.pool_workers;
        w[15] = self.pool_tasks;
        w[16] = self.pool_steals;
        w[17] = self.pool_idles;
        w[18] = self.last_progress_us;
        for p in 0..Phase::COUNT {
            w[19 + p] = self.phase_calls[p];
            w[19 + Phase::COUNT + p] = self.phase_ns[p];
        }
        w
    }

    /// Deserialize from the ring layout; `None` on a short record or an
    /// unknown version.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() < SAMPLE_WORDS || words[0] != SAMPLE_VERSION {
            return None;
        }
        let mut phase_calls = [0u64; Phase::COUNT];
        let mut phase_ns = [0u64; Phase::COUNT];
        for p in 0..Phase::COUNT {
            phase_calls[p] = words[19 + p];
            phase_ns[p] = words[19 + Phase::COUNT + p];
        }
        Some(Self {
            version: words[0],
            seq: words[1],
            elapsed_us: words[2],
            nodes: words[3],
            results: words[4],
            prunes: words[5],
            freq_prob_evals: words[6],
            dp_incremental: words[7],
            dp_rebuilt: words[8],
            fcp_exact: words[9],
            fcp_sampled: words[10],
            samples_drawn: words[11],
            pool_total: words[12],
            pool_completed: words[13],
            pool_workers: words[14],
            pool_tasks: words[15],
            pool_steals: words[16],
            pool_idles: words[17],
            last_progress_us: words[18],
            phase_calls,
            phase_ns,
        })
    }

    /// One JSON object (single line, JSONL-ready).
    pub fn to_json(&self) -> String {
        let phases = |vals: &[u64; Phase::COUNT]| {
            let body: Vec<String> = Phase::ALL
                .iter()
                .map(|p| format!("\"{}\":{}", p.name(), vals[p.index()]))
                .collect();
            format!("{{{}}}", body.join(","))
        };
        format!(
            "{{\"record\":\"sample\",\"version\":{},\"seq\":{},\"elapsed_us\":{},\
             \"nodes\":{},\"results\":{},\"prunes\":{},\"freq_prob_evals\":{},\
             \"dp_incremental\":{},\"dp_rebuilt\":{},\"fcp_exact\":{},\"fcp_sampled\":{},\
             \"samples_drawn\":{},\"pool\":{{\"total\":{},\"completed\":{},\"workers\":{},\
             \"tasks\":{},\"steals\":{},\"idles\":{}}},\"last_progress_us\":{},\
             \"phase_calls\":{},\"phase_ns\":{}}}",
            self.version,
            self.seq,
            self.elapsed_us,
            self.nodes,
            self.results,
            self.prunes,
            self.freq_prob_evals,
            self.dp_incremental,
            self.dp_rebuilt,
            self.fcp_exact,
            self.fcp_sampled,
            self.samples_drawn,
            self.pool_total,
            self.pool_completed,
            self.pool_workers,
            self.pool_tasks,
            self.pool_steals,
            self.pool_idles,
            self.last_progress_us,
            phases(&self.phase_calls),
            phases(&self.phase_ns),
        )
    }
}

/// Kind of a coarse [`TelemetryEvent`] in the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryEventKind {
    /// A mining run started (`a` = `min_sup`).
    RunStarted,
    /// A mining run finished (`a` = result count, `b` = elapsed µs).
    RunFinished,
    /// A result itemset was emitted (`a` = itemset size, `b` = FCP bits).
    Result,
    /// Every [`TelemetryConfig::node_event_every`]-th enumeration node
    /// (`a` = cumulative node count).
    NodeMilestone,
}

impl TelemetryEventKind {
    /// Stable snake_case name used in the JSONL dump.
    pub fn name(self) -> &'static str {
        match self {
            TelemetryEventKind::RunStarted => "run_started",
            TelemetryEventKind::RunFinished => "run_finished",
            TelemetryEventKind::Result => "result",
            TelemetryEventKind::NodeMilestone => "node_milestone",
        }
    }

    fn code(self) -> u64 {
        match self {
            TelemetryEventKind::RunStarted => 0,
            TelemetryEventKind::RunFinished => 1,
            TelemetryEventKind::Result => 2,
            TelemetryEventKind::NodeMilestone => 3,
        }
    }

    fn from_code(code: u64) -> Option<Self> {
        Some(match code {
            0 => TelemetryEventKind::RunStarted,
            1 => TelemetryEventKind::RunFinished,
            2 => TelemetryEventKind::Result,
            3 => TelemetryEventKind::NodeMilestone,
            _ => return None,
        })
    }
}

/// One coarse miner event retained by the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryEvent {
    /// What happened.
    pub kind: TelemetryEventKind,
    /// Microseconds since the telemetry session started.
    pub elapsed_us: u64,
    /// Kind-specific payload (see [`TelemetryEventKind`]).
    pub a: u64,
    /// Second kind-specific payload.
    pub b: u64,
}

impl TelemetryEvent {
    /// Serialize into the fixed ring layout.
    pub fn to_words(&self) -> [u64; EVENT_WORDS] {
        [self.kind.code(), self.elapsed_us, self.a, self.b]
    }

    /// Deserialize from the ring layout.
    pub fn from_words(words: &[u64]) -> Option<Self> {
        if words.len() < EVENT_WORDS {
            return None;
        }
        Some(Self {
            kind: TelemetryEventKind::from_code(words[0])?,
            elapsed_us: words[1],
            a: words[2],
            b: words[3],
        })
    }

    /// One JSON object (single line, JSONL-ready).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"record\":\"event\",\"kind\":\"{}\",\"elapsed_us\":{},\"a\":{},\"b\":{}}}",
            self.kind.name(),
            self.elapsed_us,
            self.a,
            self.b
        )
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// The flight recorder: the last N [`TelemetrySample`]s and the most
/// recent coarse [`TelemetryEvent`]s in two lock-free [`WordRing`]s,
/// dumpable as JSONL at any moment — including from a panic hook while
/// the miner threads are mid-flight.
#[derive(Debug)]
pub struct FlightRecorder {
    samples: WordRing,
    events: WordRing,
}

impl FlightRecorder {
    /// A recorder retaining `sample_capacity` samples and
    /// `event_capacity` events.
    pub fn new(sample_capacity: usize, event_capacity: usize) -> Self {
        Self {
            samples: WordRing::new(sample_capacity, SAMPLE_WORDS),
            events: WordRing::new(event_capacity, EVENT_WORDS),
        }
    }

    /// Append a sample.
    pub fn record_sample(&self, sample: &TelemetrySample) {
        self.samples.push(&sample.to_words());
    }

    /// Append an event.
    pub fn record_event(&self, event: &TelemetryEvent) {
        self.events.push(&event.to_words());
    }

    /// Total samples ever recorded.
    pub fn samples_pushed(&self) -> u64 {
        self.samples.pushed()
    }

    /// The retained samples, oldest first.
    pub fn samples(&self) -> Vec<TelemetrySample> {
        self.samples
            .snapshot()
            .iter()
            .filter_map(|(_, w)| TelemetrySample::from_words(w))
            .collect()
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.events
            .snapshot()
            .iter()
            .filter_map(|(_, w)| TelemetryEvent::from_words(w))
            .collect()
    }

    /// The whole recorder as JSONL: one `{"record":"sample",…}` line per
    /// retained sample (oldest first), then one `{"record":"event",…}`
    /// line per retained event.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.samples() {
            out.push_str(&s.to_json());
            out.push('\n');
        }
        for e in self.events() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------
// Live state + sink
// ---------------------------------------------------------------------

/// The shared live-counter block every [`TelemetrySink`] clone updates
/// and the sampler/HTTP threads read. All counters are relaxed atomics;
/// a reader sees a near-instantaneous view.
#[derive(Debug)]
pub struct TelemetryState {
    start: Instant,
    nodes: AtomicU64,
    results: AtomicU64,
    prunes: AtomicU64,
    freq_prob_evals: AtomicU64,
    dp_incremental: AtomicU64,
    dp_rebuilt: AtomicU64,
    fcp_exact: AtomicU64,
    fcp_sampled: AtomicU64,
    samples_drawn: AtomicU64,
    phase_calls: [AtomicU64; Phase::COUNT],
    phase_ns: [AtomicU64; Phase::COUNT],
    last_progress_us: AtomicU64,
    finished: AtomicBool,
    runs_finished: AtomicU64,
    min_sup: AtomicU64,
    threads: AtomicU64,
    event_cache_capacity: AtomicU64,
    // KernelStats have no per-event trace; they arrive wholesale at
    // run_finished, so these stay zero during the run.
    bound_cache_hits: AtomicU64,
    bound_cache_misses: AtomicU64,
    bitmap_words: AtomicU64,
    algo: Mutex<String>,
    pool: Arc<PoolGauges>,
}

impl TelemetryState {
    fn new() -> Self {
        let zeros = || std::array::from_fn(|_| AtomicU64::new(0));
        Self {
            start: Instant::now(),
            nodes: AtomicU64::new(0),
            results: AtomicU64::new(0),
            prunes: AtomicU64::new(0),
            freq_prob_evals: AtomicU64::new(0),
            dp_incremental: AtomicU64::new(0),
            dp_rebuilt: AtomicU64::new(0),
            fcp_exact: AtomicU64::new(0),
            fcp_sampled: AtomicU64::new(0),
            samples_drawn: AtomicU64::new(0),
            phase_calls: zeros(),
            phase_ns: zeros(),
            last_progress_us: AtomicU64::new(0),
            finished: AtomicBool::new(false),
            runs_finished: AtomicU64::new(0),
            min_sup: AtomicU64::new(0),
            threads: AtomicU64::new(0),
            event_cache_capacity: AtomicU64::new(0),
            bound_cache_hits: AtomicU64::new(0),
            bound_cache_misses: AtomicU64::new(0),
            bitmap_words: AtomicU64::new(0),
            algo: Mutex::new(String::new()),
            pool: Arc::new(PoolGauges::new()),
        }
    }

    /// Microseconds since the telemetry session started.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn touch_progress(&self) {
        self.last_progress_us
            .store(self.elapsed_us(), Ordering::Relaxed);
    }

    /// Whether a `run_finished` event has been observed.
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }

    /// The live pool gauges (shared with the parallel fan-out).
    pub fn pool(&self) -> &Arc<PoolGauges> {
        &self.pool
    }

    /// Snapshot every counter into a [`TelemetrySample`] stamped with
    /// sequence number `seq`.
    pub fn sample(&self, seq: u64) -> TelemetrySample {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let pool = self.pool.snapshot();
        let mut phase_calls = [0u64; Phase::COUNT];
        let mut phase_ns = [0u64; Phase::COUNT];
        for p in 0..Phase::COUNT {
            phase_calls[p] = load(&self.phase_calls[p]);
            phase_ns[p] = load(&self.phase_ns[p]);
        }
        TelemetrySample {
            version: SAMPLE_VERSION,
            seq,
            elapsed_us: self.elapsed_us(),
            nodes: load(&self.nodes),
            results: load(&self.results),
            prunes: load(&self.prunes),
            freq_prob_evals: load(&self.freq_prob_evals),
            dp_incremental: load(&self.dp_incremental),
            dp_rebuilt: load(&self.dp_rebuilt),
            fcp_exact: load(&self.fcp_exact),
            fcp_sampled: load(&self.fcp_sampled),
            samples_drawn: load(&self.samples_drawn),
            pool_total: pool.total,
            pool_completed: pool.completed,
            pool_workers: pool.workers,
            pool_tasks: pool.tasks(),
            pool_steals: pool.steals(),
            pool_idles: pool.idles(),
            last_progress_us: load(&self.last_progress_us),
            phase_calls,
            phase_ns,
        }
    }

    /// Render the live state as a [`MetricsRegistry`] (counters for the
    /// cumulative event counts, gauges for progress, pool health and
    /// cache configuration) — the substrate of the `/metrics` endpoint.
    pub fn registry(&self) -> MetricsRegistry {
        let s = self.sample(0);
        let mut reg = MetricsRegistry::new();
        for (name, v) in [
            ("nodes_visited", s.nodes),
            ("results", s.results),
            ("prunes", s.prunes),
            ("freq_prob_evals", s.freq_prob_evals),
            ("dp_incremental", s.dp_incremental),
            ("dp_rebuilt", s.dp_rebuilt),
            ("fcp_exact", s.fcp_exact),
            ("fcp_sampled", s.fcp_sampled),
            ("samples_drawn", s.samples_drawn),
            ("pool_tasks", s.pool_tasks),
            ("pool_steals", s.pool_steals),
            ("pool_idles", s.pool_idles),
            ("runs_finished", self.runs_finished.load(Ordering::Relaxed)),
        ] {
            reg.add(name, v);
        }
        reg.set_gauge("elapsed_s", s.elapsed_us as f64 / 1e6);
        reg.set_gauge(
            "last_progress_age_s",
            s.elapsed_us.saturating_sub(s.last_progress_us) as f64 / 1e6,
        );
        reg.set_gauge("finished", if self.finished() { 1.0 } else { 0.0 });
        reg.set_gauge("pool_total", s.pool_total as f64);
        reg.set_gauge("pool_completed", s.pool_completed as f64);
        reg.set_gauge(
            "pool_queued",
            s.pool_total.saturating_sub(s.pool_completed) as f64,
        );
        reg.set_gauge("pool_workers", s.pool_workers as f64);
        reg.set_gauge("min_sup", self.min_sup.load(Ordering::Relaxed) as f64);
        reg.set_gauge("threads", self.threads.load(Ordering::Relaxed) as f64);
        reg.set_gauge(
            "event_cache_capacity",
            self.event_cache_capacity.load(Ordering::Relaxed) as f64,
        );
        // Kernel counters arrive wholesale at run_finished; the hit-rate
        // gauge only exists once there is something to divide.
        let (hits, misses) = (
            self.bound_cache_hits.load(Ordering::Relaxed),
            self.bound_cache_misses.load(Ordering::Relaxed),
        );
        if hits + misses > 0 {
            reg.set_gauge("bound_cache_hit_rate", hits as f64 / (hits + misses) as f64);
            reg.add("bound_cache_hits", hits);
            reg.add("bound_cache_misses", misses);
            reg.add("bitmap_words", self.bitmap_words.load(Ordering::Relaxed));
        }
        for (w, g) in self.pool.snapshot().per_worker.iter().enumerate() {
            reg.set_gauge(&format!("pool_worker{w}_tasks"), g.tasks as f64);
            reg.set_gauge(&format!("pool_worker{w}_steals"), g.steals as f64);
            reg.set_gauge(&format!("pool_worker{w}_idles"), g.idles as f64);
        }
        for p in Phase::ALL {
            reg.add(
                &format!("phase_{}_calls", p.name()),
                s.phase_calls[p.index()],
            );
            reg.set_gauge(
                &format!("phase_{}_s", p.name()),
                s.phase_ns[p.index()] as f64 / 1e9,
            );
        }
        reg
    }

    /// The `/healthz` JSON body: status (`ok` / `stalled` / `finished`),
    /// algorithm, progress, ETA and the last-progress watchdog.
    ///
    /// The ETA extrapolates pool progress (`elapsed · remaining/done`
    /// over the first-level root fan-out) and is `null` until at least
    /// one task completed or once the run finished.
    pub fn healthz_json(&self, stall_threshold: Duration) -> String {
        let s = self.sample(0);
        let finished = self.finished();
        let progress_age_s = s.elapsed_us.saturating_sub(s.last_progress_us) as f64 / 1e6;
        let stalled = !finished && s.nodes > 0 && progress_age_s > stall_threshold.as_secs_f64();
        let status = if finished {
            "finished"
        } else if stalled {
            "stalled"
        } else {
            "ok"
        };
        let elapsed_s = s.elapsed_us as f64 / 1e6;
        let (progress, eta_s) = if finished {
            ("1".to_owned(), "0".to_owned())
        } else if s.pool_total > 0 && s.pool_completed > 0 {
            let frac = s.pool_completed as f64 / s.pool_total as f64;
            let eta = elapsed_s * (1.0 - frac) / frac;
            (format!("{frac}"), format!("{eta}"))
        } else {
            ("null".to_owned(), "null".to_owned())
        };
        let algo = self.algo.lock().map(|a| a.clone()).unwrap_or_default();
        format!(
            "{{\"status\":\"{status}\",\"algo\":\"{algo}\",\"min_sup\":{},\
             \"elapsed_s\":{elapsed_s},\"nodes\":{},\"results\":{},\
             \"pool\":{{\"completed\":{},\"total\":{},\"workers\":{}}},\
             \"progress\":{progress},\"eta_s\":{eta_s},\
             \"last_progress_age_s\":{progress_age_s},\
             \"stall_threshold_s\":{},\"finished\":{finished}}}",
            self.min_sup.load(Ordering::Relaxed),
            s.nodes,
            s.results,
            s.pool_completed,
            s.pool_total,
            s.pool_workers,
            stall_threshold.as_secs_f64(),
        )
    }
}

/// The [`MinerSink`] feeding a telemetry session. Cheap to clone (two
/// `Arc`s); clones — including the shards the parallel miner creates —
/// all update the same [`TelemetryState`], so live readers see the
/// whole run regardless of worker count.
#[derive(Debug, Clone)]
pub struct TelemetrySink {
    state: Arc<TelemetryState>,
    flight: Arc<FlightRecorder>,
    node_event_every: u64,
}

impl TelemetrySink {
    fn event(&self, kind: TelemetryEventKind, a: u64, b: u64) {
        self.flight.record_event(&TelemetryEvent {
            kind,
            elapsed_us: self.state.elapsed_us(),
            a,
            b,
        });
    }
}

impl MinerSink for TelemetrySink {
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        if let Ok(mut slot) = self.state.algo.lock() {
            *slot = algo.to_owned();
        }
        self.state
            .min_sup
            .store(config.min_sup as u64, Ordering::Relaxed);
        self.state
            .threads
            .store(config.effective_threads() as u64, Ordering::Relaxed);
        self.state
            .event_cache_capacity
            .store(config.event_cache_capacity as u64, Ordering::Relaxed);
        self.state.finished.store(false, Ordering::Relaxed);
        self.state.touch_progress();
        self.event(TelemetryEventKind::RunStarted, config.min_sup as u64, 0);
    }
    fn node_entered(&mut self, _depth: usize) {
        let n = self.state.nodes.fetch_add(1, Ordering::Relaxed) + 1;
        self.state.touch_progress();
        if self.node_event_every > 0 && n.is_multiple_of(self.node_event_every) {
            self.event(TelemetryEventKind::NodeMilestone, n, 0);
        }
    }
    fn prune_fired(&mut self, _kind: crate::trace::PruneKind) {
        self.state.prunes.fetch_add(1, Ordering::Relaxed);
    }
    fn freq_prob_evaluated(&mut self, _pr_f: f64) {
        self.state.freq_prob_evals.fetch_add(1, Ordering::Relaxed);
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        let slot = if matches!(decision, DpDecision::Incremental) {
            &self.state.dp_incremental
        } else {
            &self.state.dp_rebuilt
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }
    fn pool_gauges(&self) -> Option<Arc<PoolGauges>> {
        Some(Arc::clone(&self.state.pool))
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        match method {
            FcpEvalKind::Exact => {
                self.state.fcp_exact.fetch_add(1, Ordering::Relaxed);
            }
            FcpEvalKind::Sampled => {
                self.state.fcp_sampled.fetch_add(1, Ordering::Relaxed);
            }
            // Bound-decided evaluations draw no samples and are already
            // visible through the prune counters.
            FcpEvalKind::BoundDecided => {}
        }
        self.state
            .samples_drawn
            .fetch_add(samples, Ordering::Relaxed);
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        self.state.results.fetch_add(1, Ordering::Relaxed);
        self.state.touch_progress();
        self.event(
            TelemetryEventKind::Result,
            items.len() as u64,
            fcp.to_bits(),
        );
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        let i = phase.index();
        self.state.phase_calls[i].fetch_add(1, Ordering::Relaxed);
        self.state.phase_ns[i].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        self.state
            .bound_cache_hits
            .store(outcome.kernel.bound_cache_hits, Ordering::Relaxed);
        self.state
            .bound_cache_misses
            .store(outcome.kernel.bound_cache_misses, Ordering::Relaxed);
        self.state
            .bitmap_words
            .store(outcome.kernel.bitmap_words, Ordering::Relaxed);
        self.state.finished.store(true, Ordering::Relaxed);
        self.state.runs_finished.fetch_add(1, Ordering::Relaxed);
        self.state.touch_progress();
        self.event(
            TelemetryEventKind::RunFinished,
            outcome.results.len() as u64,
            outcome.elapsed.as_micros() as u64,
        );
        // Guarantee at least one sample exists even when the whole run
        // fits inside a single sampler interval.
        self.flight
            .record_sample(&self.state.sample(self.flight.samples_pushed()));
    }
}

impl ShardableSink for TelemetrySink {
    type Shard = TelemetrySink;
    fn make_shard(&self) -> TelemetrySink {
        self.clone()
    }
    fn absorb_shard(&mut self, _shard: TelemetrySink) {
        // Shards share the state; everything is already absorbed.
    }
}

// ---------------------------------------------------------------------
// The telemetry session
// ---------------------------------------------------------------------

/// Tunables of a [`Telemetry`] session.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Sampler period (default 100 ms).
    pub sample_interval: Duration,
    /// Flight-recorder sample-ring capacity (default 256).
    pub sample_capacity: usize,
    /// Flight-recorder event-ring capacity (default 256).
    pub event_capacity: usize,
    /// `/healthz` reports `stalled` when no progress event arrived for
    /// this long (default 10 s).
    pub stall_threshold: Duration,
    /// Record a `node_milestone` event every this many nodes (default
    /// 1024; `0` disables milestones).
    pub node_event_every: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            sample_interval: Duration::from_millis(100),
            sample_capacity: 256,
            event_capacity: 256,
            stall_threshold: Duration::from_secs(10),
            node_event_every: 1024,
        }
    }
}

/// A live telemetry session: shared state, flight recorder, the
/// background sampler thread, and (after [`Telemetry::serve`]) the HTTP
/// scrape endpoint. Dropping the session stops and joins both threads;
/// the rings stay alive as long as any panic hook still references them.
#[derive(Debug)]
pub struct Telemetry {
    state: Arc<TelemetryState>,
    flight: Arc<FlightRecorder>,
    config: TelemetryConfig,
    stop: Arc<AtomicBool>,
    sampler: Option<std::thread::JoinHandle<()>>,
    server: Option<std::thread::JoinHandle<()>>,
}

impl Telemetry {
    /// Start a session with default [`TelemetryConfig`] (spawns the
    /// sampler thread).
    pub fn start() -> Self {
        Self::with_config(TelemetryConfig::default())
    }

    /// Start a session with an explicit configuration.
    pub fn with_config(config: TelemetryConfig) -> Self {
        let state = Arc::new(TelemetryState::new());
        let flight = Arc::new(FlightRecorder::new(
            config.sample_capacity,
            config.event_capacity,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let sampler = {
            let state = Arc::clone(&state);
            let flight = Arc::clone(&flight);
            let stop = Arc::clone(&stop);
            let interval = config.sample_interval;
            std::thread::Builder::new()
                .name("pfcim-telemetry-sampler".into())
                .spawn(move || sampler_loop(&state, &flight, &stop, interval))
                .expect("spawning the telemetry sampler thread")
        };
        Self {
            state,
            flight,
            config,
            stop,
            sampler: Some(sampler),
            server: None,
        }
    }

    /// The shared live state (for custom exporters).
    pub fn state(&self) -> Arc<TelemetryState> {
        Arc::clone(&self.state)
    }

    /// The flight recorder.
    pub fn flight(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.flight)
    }

    /// A sink feeding this session; attach it (or any number of clones)
    /// to a [`crate::Miner`] via [`crate::Miner::sink`].
    pub fn sink(&self) -> TelemetrySink {
        TelemetrySink {
            state: Arc::clone(&self.state),
            flight: Arc::clone(&self.flight),
            node_event_every: self.config.node_event_every,
        }
    }

    /// Bind `addr` (e.g. `127.0.0.1:0` — port 0 picks a free port) and
    /// serve `GET /metrics`, `GET /healthz` and `GET /flight` from a
    /// dedicated thread until the session shuts down. Returns the bound
    /// address.
    pub fn serve(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let state = Arc::clone(&self.state);
        let flight = Arc::clone(&self.flight);
        let stop = Arc::clone(&self.stop);
        let stall = self.config.stall_threshold;
        self.server = Some(
            std::thread::Builder::new()
                .name("pfcim-telemetry-http".into())
                .spawn(move || serve_loop(&listener, &state, &flight, &stop, stall))
                .expect("spawning the telemetry HTTP thread"),
        );
        Ok(local)
    }

    /// Chain a panic hook that records one final sample and writes the
    /// flight-recorder JSONL to `path` before the previous hook runs, so
    /// a dying run leaves a post-mortem. The hook holds its own `Arc`s
    /// and therefore outlives the session.
    pub fn install_panic_dump(&self, path: impl Into<PathBuf>) {
        let path = path.into();
        let state = Arc::clone(&self.state);
        let flight = Arc::clone(&self.flight);
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flight.record_sample(&state.sample(flight.samples_pushed()));
            let _ = std::fs::write(&path, flight.to_jsonl());
            previous(info);
        }));
    }

    /// The `/metrics` body: the live registry in Prometheus text format
    /// (prefix `pfcim`), as served by the HTTP endpoint.
    pub fn metrics_text(&self) -> String {
        self.state.registry().to_prometheus("pfcim")
    }

    /// The `/healthz` body.
    pub fn healthz_json(&self) -> String {
        self.state.healthz_json(self.config.stall_threshold)
    }

    /// The `/flight` body (the recorder as JSONL).
    pub fn flight_jsonl(&self) -> String {
        self.flight.to_jsonl()
    }

    /// Stop and join the sampler and HTTP threads. Also runs on drop;
    /// calling it explicitly just makes shutdown visible in the code.
    pub fn shutdown(mut self) {
        self.stop_threads();
    }

    fn stop_threads(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.sampler.take() {
            let _ = h.join();
        }
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

fn sampler_loop(
    state: &TelemetryState,
    flight: &FlightRecorder,
    stop: &AtomicBool,
    interval: Duration,
) {
    // Sleep in short slices so shutdown never waits a full interval.
    let slice = interval
        .min(Duration::from_millis(20))
        .max(Duration::from_millis(1));
    let mut next = Instant::now() + interval;
    while !stop.load(Ordering::SeqCst) {
        if Instant::now() >= next {
            flight.record_sample(&state.sample(flight.samples_pushed()));
            next = Instant::now() + interval;
        }
        std::thread::sleep(slice);
    }
}

// ---------------------------------------------------------------------
// HTTP endpoint (std-only, single-threaded)
// ---------------------------------------------------------------------

fn serve_loop(
    listener: &TcpListener,
    state: &TelemetryState,
    flight: &FlightRecorder,
    stop: &AtomicBool,
    stall_threshold: Duration,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = handle_connection(&mut stream, state, flight, stall_threshold);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

fn handle_connection(
    stream: &mut TcpStream,
    state: &TelemetryState,
    flight: &FlightRecorder,
    stall_threshold: Duration,
) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (we ignore any body; every
    // endpoint is a GET) with a small cap against garbage input.
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let (status, content_type, body) = if method != "GET" {
        (405, "text/plain", "method not allowed\n".to_owned())
    } else {
        match path {
            "/metrics" => {
                let text = state.registry().to_prometheus("pfcim");
                // The endpoint lints its own output: serving malformed
                // exposition text is a bug, and a 500 makes it loud.
                match lint_prometheus(&text) {
                    Ok(()) => (200, "text/plain; version=0.0.4", text),
                    Err(e) => (500, "text/plain", format!("exporter lint failure: {e}\n")),
                }
            }
            "/healthz" => (200, "application/json", state.healthz_json(stall_threshold)),
            "/flight" => (200, "application/x-ndjson", flight.to_jsonl()),
            "/" => (
                200,
                "text/plain",
                "pfcim telemetry: /metrics /healthz /flight\n".to_owned(),
            ),
            _ => (404, "text/plain", "not found\n".to_owned()),
        }
    };
    let reason = match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP GET against a telemetry endpoint (or anything speaking
/// enough HTTP/1.1): returns `(status, body)`. Used by `pfcim top`, the
/// CI smoke test and the integration tests — std-only, one connection,
/// no keep-alive.
pub fn http_get(addr: &str, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_with(seq: u64, nodes: u64) -> TelemetrySample {
        TelemetrySample {
            version: SAMPLE_VERSION,
            seq,
            nodes,
            elapsed_us: seq * 1000,
            ..TelemetrySample::default()
        }
    }

    #[test]
    fn sample_words_round_trip() {
        let mut s = sample_with(7, 42);
        s.phase_calls[2] = 9;
        s.phase_ns[5] = 123_456;
        s.pool_steals = 3;
        s.last_progress_us = 99;
        let words = s.to_words();
        assert_eq!(TelemetrySample::from_words(&words), Some(s));
        // Unknown versions and short records are rejected, not mangled.
        let mut bad = words;
        bad[0] = SAMPLE_VERSION + 1;
        assert_eq!(TelemetrySample::from_words(&bad), None);
        assert_eq!(TelemetrySample::from_words(&words[..5]), None);
    }

    #[test]
    fn event_words_round_trip() {
        for kind in [
            TelemetryEventKind::RunStarted,
            TelemetryEventKind::RunFinished,
            TelemetryEventKind::Result,
            TelemetryEventKind::NodeMilestone,
        ] {
            let e = TelemetryEvent {
                kind,
                elapsed_us: 10,
                a: 2,
                b: 3,
            };
            assert_eq!(TelemetryEvent::from_words(&e.to_words()), Some(e));
        }
        assert_eq!(TelemetryEvent::from_words(&[99, 0, 0, 0]), None);
    }

    #[test]
    fn ring_returns_pushed_records_in_order() {
        let ring = WordRing::new(8, 3);
        for i in 0..5u64 {
            ring.push(&[i, i * 2, i * 3]);
        }
        let snap = ring.snapshot();
        assert_eq!(snap.len(), 5);
        for (expect, (idx, words)) in snap.iter().enumerate() {
            assert_eq!(*idx, expect as u64);
            assert_eq!(
                words,
                &vec![expect as u64, expect as u64 * 2, expect as u64 * 3]
            );
        }
    }

    #[test]
    fn ring_wraparound_keeps_the_newest_records() {
        let cap = 4;
        let ring = WordRing::new(cap, 2);
        for i in 0..19u64 {
            ring.push(&[i, !i]);
        }
        assert_eq!(ring.pushed(), 19);
        let snap = ring.snapshot();
        assert_eq!(snap.len(), cap);
        // Exactly the last `cap` records, oldest first, none torn.
        for (k, (idx, words)) in snap.iter().enumerate() {
            let expect = 19 - cap as u64 + k as u64;
            assert_eq!(*idx, expect);
            assert_eq!(words, &vec![expect, !expect]);
        }
    }

    #[test]
    fn ring_pads_and_truncates_records() {
        let ring = WordRing::new(2, 3);
        ring.push(&[1]);
        ring.push(&[1, 2, 3, 4, 5]);
        let snap = ring.snapshot();
        assert_eq!(snap[0].1, vec![1, 0, 0]);
        assert_eq!(snap[1].1, vec![1, 2, 3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Concurrent writers and a racing reader: every record the
        /// snapshot returns must be internally consistent (never torn),
        /// and the final snapshot holds exactly the newest records.
        #[test]
        fn ring_is_consistent_under_concurrency(
            cap in 1usize..16,
            per_writer in 1u64..200,
            writers in 1usize..4,
        ) {
            let ring = WordRing::new(cap, 3);
            let torn = std::sync::atomic::AtomicU64::new(0);
            std::thread::scope(|scope| {
                for w in 0..writers {
                    let ring = &ring;
                    scope.spawn(move || {
                        for i in 0..per_writer {
                            let tag = (w as u64) << 32 | i;
                            // Word derivation a reader can verify.
                            ring.push(&[tag, tag.wrapping_mul(3), tag ^ 0xABCD]);
                        }
                    });
                }
                // Reader races the writers, checking internal consistency.
                let ring = &ring;
                let torn = &torn;
                scope.spawn(move || {
                    for _ in 0..50 {
                        for (_, words) in ring.snapshot() {
                            let tag = words[0];
                            if words[1] != tag.wrapping_mul(3) || words[2] != (tag ^ 0xABCD) {
                                torn.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                });
            });
            prop_assert_eq!(torn.load(Ordering::Relaxed), 0, "torn records observed");
            // At rest: full, consistent, exactly the newest records.
            let total = per_writer * writers as u64;
            prop_assert_eq!(ring.pushed(), total);
            let snap = ring.snapshot();
            prop_assert_eq!(snap.len(), cap.min(total as usize));
            for (idx, words) in &snap {
                prop_assert!(*idx >= total.saturating_sub(cap as u64));
                let tag = words[0];
                prop_assert_eq!(words[1], tag.wrapping_mul(3));
                prop_assert_eq!(words[2], tag ^ 0xABCD);
            }
        }
    }

    fn paper_db() -> utdb::UncertainDatabase {
        utdb::UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    #[test]
    fn sink_counts_match_the_outcome() {
        let db = paper_db();
        let telemetry = Telemetry::start();
        let mut sink = telemetry.sink();
        let outcome = crate::Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut sink)
            .run();
        let state = telemetry.state();
        let sample = state.sample(0);
        assert_eq!(sample.nodes, outcome.stats.nodes_visited);
        assert_eq!(sample.results, outcome.results.len() as u64);
        assert_eq!(
            sample.dp_incremental + sample.dp_rebuilt,
            outcome.audit.total()
        );
        assert!(state.finished());
        // run_finished records a final sample even without the sampler
        // ever ticking.
        assert!(telemetry.flight().samples_pushed() >= 1);
        let kinds: Vec<_> = telemetry.flight().events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&TelemetryEventKind::RunStarted));
        assert!(kinds.contains(&TelemetryEventKind::RunFinished));
        telemetry.shutdown();
    }

    #[test]
    fn metrics_text_passes_the_linter() {
        let db = paper_db();
        let telemetry = Telemetry::start();
        let mut sink = telemetry.sink();
        crate::Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut sink)
            .run();
        let text = telemetry.metrics_text();
        lint_prometheus(&text).unwrap();
        assert!(text.contains("pfcim_nodes_visited"));
        assert!(text.contains("pfcim_event_cache_capacity"));
        assert!(text.contains("pfcim_bound_cache_hit_rate"));
        let health = telemetry.healthz_json();
        assert!(health.contains("\"status\":\"finished\""));
        assert!(health.contains("\"eta_s\":0"));
    }

    #[test]
    fn flight_jsonl_is_line_parseable() {
        let db = paper_db();
        let telemetry = Telemetry::start();
        let mut sink = telemetry.sink();
        crate::Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut sink)
            .run();
        let dump = telemetry.flight_jsonl();
        assert!(dump.lines().count() >= 2);
        for line in dump.lines() {
            assert!(
                line.starts_with("{\"record\":\"") && line.ends_with('}'),
                "{line}"
            );
        }
        assert!(dump.contains("\"record\":\"sample\""));
        assert!(dump.contains("\"kind\":\"run_finished\""));
    }

    #[test]
    fn http_endpoint_serves_all_routes() {
        let db = paper_db();
        let mut telemetry = Telemetry::start();
        let addr = telemetry
            .serve("127.0.0.1:0")
            .expect("binding an ephemeral loopback port");
        let addr = addr.to_string();
        let mut sink = telemetry.sink();
        crate::Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut sink)
            .run();
        let timeout = Duration::from_secs(5);
        let (status, body) = http_get(&addr, "/metrics", timeout).unwrap();
        assert_eq!(status, 200);
        lint_prometheus(&body).unwrap();
        let (status, body) = http_get(&addr, "/healthz", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"status\""));
        let (status, body) = http_get(&addr, "/flight", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"record\":\"sample\""));
        let (status, _) = http_get(&addr, "/nope", timeout).unwrap();
        assert_eq!(status, 404);
        let (status, body) = http_get(&addr, "/", timeout).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("/metrics"));
        telemetry.shutdown();
    }

    #[test]
    fn sampler_records_periodic_samples() {
        let telemetry = Telemetry::with_config(TelemetryConfig {
            sample_interval: Duration::from_millis(5),
            ..TelemetryConfig::default()
        });
        let deadline = Instant::now() + Duration::from_secs(5);
        while telemetry.flight().samples_pushed() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(
            telemetry.flight().samples_pushed() >= 3,
            "sampler produced no samples"
        );
        let samples = telemetry.flight().samples();
        for pair in samples.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
            assert!(pair[0].elapsed_us <= pair[1].elapsed_us);
        }
        telemetry.shutdown();
    }
}
