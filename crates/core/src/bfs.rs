//! The breadth-first variant `MPFCI-BFS` (Section V.D of the paper).
//!
//! Level-wise Apriori-style enumeration of probabilistic frequent
//! itemsets, each surviving itemset then passing through the same
//! bounding/checking phase as the DFS miner. The superset and subset
//! prunings do not apply — they hinge on prefix relationships that the
//! level-wise order never materializes ("they won't show up in BFS's
//! enumeration") — which is precisely why the paper finds DFS faster.
//!
//! BFS always rebuilds the frequentness DP row (counted as
//! `dp_recomputed`): carrying a live [`TailDp`] row per stored level
//! entry would multiply the already level-sized memory footprint, and the
//! join step's parents are not generally supersets anyway.

use std::time::Instant;

use prob::hoeffding::hoeffding_infrequent;
use prob::TailDp;
use utdb::{Item, TidBitmap, UncertainDatabase};

use crate::config::MinerConfig;
use crate::evaluator::Evaluator;
use crate::result::MiningOutcome;
use crate::trace::{timed, DpDecision, MinerSink, NullSink, Phase, PruneKind};

/// Mine all probabilistic frequent closed itemsets breadth-first.
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Bfs` instead")]
pub fn mine_bfs(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    run_bfs(db, config, &mut NullSink)
}

/// [`mine_bfs`], observed by `sink` (see [`crate::trace`]).
#[deprecated(note = "use `crate::miner::Miner` with `Algorithm::Bfs` and `sink(…)` instead")]
pub fn mine_bfs_with<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    run_bfs(db, config, sink)
}

/// The level-wise miner proper — the engine behind the
/// [`crate::miner::Miner`] builder and the deprecated free functions.
pub(crate) fn run_bfs<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    config.validate();
    sink.run_started("bfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let mut timed_out = false;
    let mut evaluator = Evaluator::new(db, config, sink);
    let mut results = Vec::new();

    // Level 1: probabilistic frequent single items.
    let mut level: Vec<(Vec<Item>, TidBitmap, f64)> = Vec::new();
    for id in 0..db.num_items() as u32 {
        let item = Item(id);
        let tids = db.bitmap_of(item).clone();
        if let Some(pr_f) = qualify(db, config, &tids, &mut evaluator) {
            level.push((vec![item], tids, pr_f));
        }
    }

    'levels: while !level.is_empty() {
        // Checking phase for every itemset of this level.
        for (items, tids, pr_f) in &level {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    timed_out = true;
                    break 'levels;
                }
            }
            evaluator.stats.nodes_visited += 1;
            evaluator.sink.node_entered(items.len());
            if let Some(pfci) = evaluator.evaluate(items, tids, *pr_f) {
                results.push(pfci);
            }
        }
        // Join step: pairs sharing a (k-1)-prefix.
        let mut next: Vec<(Vec<Item>, TidBitmap, f64)> = Vec::new();
        for (i, (a_items, a_tids, _)) in level.iter().enumerate() {
            for (b_items, b_tids, _) in &level[i + 1..] {
                let k = a_items.len();
                if a_items[..k - 1] != b_items[..k - 1] {
                    continue;
                }
                let last = b_items[k - 1];
                if last <= a_items[k - 1] {
                    continue;
                }
                evaluator.kernel.bitmap_words += a_tids.word_len() as u64;
                let joint = a_tids.and(b_tids);
                if let Some(pr_f) = qualify(db, config, &joint, &mut evaluator) {
                    let mut items = a_items.clone();
                    items.push(last);
                    next.push((items, joint, pr_f));
                }
            }
        }
        level = next;
    }

    let Evaluator {
        stats,
        kernel,
        timers,
        audit,
        sink,
        ..
    } = evaluator;
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        kernel,
        timers,
        audit,
        elapsed: start.elapsed(),
        timed_out,
    };
    sink.run_finished(&outcome);
    outcome
}

/// Probabilistic-frequency qualification shared with the DFS miner's
/// logic: count, optional Chernoff–Hoeffding refutation, exact DP
/// (always rebuilt — see the module docs).
fn qualify<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    tids: &TidBitmap,
    evaluator: &mut Evaluator<'_, S>,
) -> Option<f64> {
    let count = tids.count();
    if count < cfg.min_sup {
        return None;
    }
    if cfg.pruning.chernoff_hoeffding {
        let refuted = timed(
            Phase::ChBound,
            &mut evaluator.timers,
            &mut *evaluator.sink,
            || {
                let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
                hoeffding_infrequent(esup, count, cfg.min_sup, cfg.pfct)
            },
        );
        if refuted {
            evaluator.stats.ch_pruned += 1;
            evaluator.sink.prune_fired(PruneKind::ChernoffHoeffding);
            return None;
        }
    }
    evaluator.stats.freq_prob_evals += 1;
    let kernel = &mut evaluator.kernel;
    let pr_f = timed(
        Phase::FreqDp,
        &mut evaluator.timers,
        &mut *evaluator.sink,
        || {
            kernel.dp_recomputed += 1;
            let mut dp = TailDp::new(cfg.min_sup);
            for tid in tids.iter() {
                dp.push(db.probability(tid));
            }
            dp.tail()
        },
    );
    evaluator.audit.record(DpDecision::FreshLevel);
    evaluator.sink.dp_decision(DpDecision::FreshLevel);
    evaluator.sink.freq_prob_evaluated(pr_f);
    if pr_f <= cfg.pfct {
        evaluator.stats.freq_pruned += 1;
        evaluator.sink.prune_fired(PruneKind::FreqProb);
        return None;
    }
    Some(pr_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FcpMethod, Variant};
    use crate::mpfci::run_dfs;

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    #[test]
    fn bfs_equals_dfs_result_set() {
        let db = table4();
        for (min_sup, pfct) in [(1, 0.5), (2, 0.8), (2, 0.6), (3, 0.3)] {
            let cfg = MinerConfig::new(min_sup, pfct).with_fcp_method(FcpMethod::ExactOnly);
            let dfs = run_dfs(&db, &cfg, &mut NullSink);
            let bfs = run_bfs(&db, &cfg.clone().with_variant(Variant::Bfs), &mut NullSink);
            assert_eq!(
                bfs.itemsets(),
                dfs.itemsets(),
                "min_sup={min_sup} pfct={pfct}"
            );
            for (b, d) in bfs.results.iter().zip(&dfs.results) {
                assert!((b.fcp - d.fcp).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bfs_visits_more_nodes_than_dfs() {
        // Without the structural prunings, BFS must enumerate at least as
        // many itemsets as DFS — the effect the paper's Fig. 12 measures.
        let db = table4();
        let cfg = MinerConfig::new(2, 0.8);
        let dfs = run_dfs(&db, &cfg, &mut NullSink);
        let bfs = run_bfs(&db, &cfg.clone().with_variant(Variant::Bfs), &mut NullSink);
        assert!(
            bfs.stats.nodes_visited >= dfs.stats.nodes_visited,
            "bfs {} < dfs {}",
            bfs.stats.nodes_visited,
            dfs.stats.nodes_visited
        );
    }

    #[test]
    fn bfs_only_recomputes_its_dp_rows() {
        let db = table4();
        let cfg = MinerConfig::new(2, 0.8).with_variant(Variant::Bfs);
        let out = run_bfs(&db, &cfg, &mut NullSink);
        assert_eq!(out.kernel.dp_incremental, 0);
        assert_eq!(out.kernel.dp_recomputed, out.stats.freq_prob_evals);
    }

    #[test]
    fn bfs_empty_result_cases() {
        let db = table4();
        assert!(run_bfs(&db, &MinerConfig::new(10, 0.5), &mut NullSink)
            .results
            .is_empty());
        assert!(run_bfs(&db, &MinerConfig::new(2, 0.999), &mut NullSink)
            .results
            .is_empty());
    }
}
