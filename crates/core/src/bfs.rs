//! The breadth-first variant `MPFCI-BFS` (Section V.D of the paper).
//!
//! Level-wise Apriori-style enumeration of probabilistic frequent
//! itemsets, each surviving itemset then passing through the same
//! bounding/checking phase as the DFS miner. The superset and subset
//! prunings do not apply — they hinge on prefix relationships that the
//! level-wise order never materializes ("they won't show up in BFS's
//! enumeration") — which is precisely why the paper finds DFS faster.

use std::time::Instant;

use pfim::FreqProbScratch;
use prob::hoeffding::hoeffding_infrequent;
use utdb::{Item, TidSet, UncertainDatabase};

use crate::config::MinerConfig;
use crate::evaluator::Evaluator;
use crate::result::MiningOutcome;
use crate::trace::{timed, MinerSink, NullSink, Phase, PruneKind};

/// Mine all probabilistic frequent closed itemsets breadth-first.
pub fn mine_bfs(db: &UncertainDatabase, config: &MinerConfig) -> MiningOutcome {
    mine_bfs_with(db, config, &mut NullSink)
}

/// [`mine_bfs`], observed by `sink` (see [`crate::trace`]).
pub fn mine_bfs_with<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    config: &MinerConfig,
    sink: &mut S,
) -> MiningOutcome {
    config.validate();
    sink.run_started("bfs", config);
    let start = Instant::now();
    let deadline = config.time_budget.map(|b| start + b);
    let mut timed_out = false;
    let mut evaluator = Evaluator::new(db, config, sink);
    let mut scratch = FreqProbScratch::new();
    let mut results = Vec::new();

    // Level 1: probabilistic frequent single items.
    let mut level: Vec<(Vec<Item>, TidSet, f64)> = Vec::new();
    for id in 0..db.num_items() as u32 {
        let item = Item(id);
        let tids = db.tidset_of(item).clone();
        if let Some(pr_f) = qualify(db, config, &tids, &mut scratch, &mut evaluator) {
            level.push((vec![item], tids, pr_f));
        }
    }

    'levels: while !level.is_empty() {
        // Checking phase for every itemset of this level.
        for (items, tids, pr_f) in &level {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    timed_out = true;
                    break 'levels;
                }
            }
            evaluator.stats.nodes_visited += 1;
            evaluator.sink.node_entered(items.len());
            if let Some(pfci) = evaluator.evaluate(items, tids, *pr_f) {
                results.push(pfci);
            }
        }
        // Join step: pairs sharing a (k-1)-prefix.
        let mut next: Vec<(Vec<Item>, TidSet, f64)> = Vec::new();
        for (i, (a_items, a_tids, _)) in level.iter().enumerate() {
            for (b_items, b_tids, _) in &level[i + 1..] {
                let k = a_items.len();
                if a_items[..k - 1] != b_items[..k - 1] {
                    continue;
                }
                let last = b_items[k - 1];
                if last <= a_items[k - 1] {
                    continue;
                }
                let joint = a_tids.intersection(b_tids);
                if let Some(pr_f) = qualify(db, config, &joint, &mut scratch, &mut evaluator) {
                    let mut items = a_items.clone();
                    items.push(last);
                    next.push((items, joint, pr_f));
                }
            }
        }
        level = next;
    }

    let Evaluator {
        stats,
        timers,
        sink,
        ..
    } = evaluator;
    results.sort_by(|a, b| a.items.cmp(&b.items));
    let outcome = MiningOutcome {
        results,
        stats,
        timers,
        elapsed: start.elapsed(),
        timed_out,
    };
    sink.run_finished(&outcome);
    outcome
}

/// Probabilistic-frequency qualification shared with the DFS miner's
/// logic: count, optional Chernoff–Hoeffding refutation, exact DP.
fn qualify<S: MinerSink + ?Sized>(
    db: &UncertainDatabase,
    cfg: &MinerConfig,
    tids: &TidSet,
    scratch: &mut FreqProbScratch,
    evaluator: &mut Evaluator<'_, S>,
) -> Option<f64> {
    let count = tids.count();
    if count < cfg.min_sup {
        return None;
    }
    if cfg.pruning.chernoff_hoeffding {
        let refuted = timed(
            Phase::ChBound,
            &mut evaluator.timers,
            &mut *evaluator.sink,
            || {
                let esup: f64 = tids.iter().map(|tid| db.probability(tid)).sum();
                hoeffding_infrequent(esup, count, cfg.min_sup, cfg.pfct)
            },
        );
        if refuted {
            evaluator.stats.ch_pruned += 1;
            evaluator.sink.prune_fired(PruneKind::ChernoffHoeffding);
            return None;
        }
    }
    evaluator.stats.freq_prob_evals += 1;
    let pr_f = timed(
        Phase::FreqDp,
        &mut evaluator.timers,
        &mut *evaluator.sink,
        || scratch.tail(db, tids, cfg.min_sup),
    );
    evaluator.sink.freq_prob_evaluated(pr_f);
    if pr_f <= cfg.pfct {
        evaluator.stats.freq_pruned += 1;
        evaluator.sink.prune_fired(PruneKind::FreqProb);
        return None;
    }
    Some(pr_f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FcpMethod, Variant};
    use crate::mpfci::mine_dfs;

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    #[test]
    fn bfs_equals_dfs_result_set() {
        let db = table4();
        for (min_sup, pfct) in [(1, 0.5), (2, 0.8), (2, 0.6), (3, 0.3)] {
            let cfg = MinerConfig::new(min_sup, pfct).with_fcp_method(FcpMethod::ExactOnly);
            let dfs = mine_dfs(&db, &cfg);
            let bfs = mine_bfs(&db, &cfg.clone().with_variant(Variant::Bfs));
            assert_eq!(
                bfs.itemsets(),
                dfs.itemsets(),
                "min_sup={min_sup} pfct={pfct}"
            );
            for (b, d) in bfs.results.iter().zip(&dfs.results) {
                assert!((b.fcp - d.fcp).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn bfs_visits_more_nodes_than_dfs() {
        // Without the structural prunings, BFS must enumerate at least as
        // many itemsets as DFS — the effect the paper's Fig. 12 measures.
        let db = table4();
        let cfg = MinerConfig::new(2, 0.8);
        let dfs = mine_dfs(&db, &cfg);
        let bfs = mine_bfs(&db, &cfg.clone().with_variant(Variant::Bfs));
        assert!(
            bfs.stats.nodes_visited >= dfs.stats.nodes_visited,
            "bfs {} < dfs {}",
            bfs.stats.nodes_visited,
            dfs.stats.nodes_visited
        );
    }

    #[test]
    fn bfs_empty_result_cases() {
        let db = table4();
        assert!(mine_bfs(&db, &MinerConfig::new(10, 0.5)).results.is_empty());
        assert!(mine_bfs(&db, &MinerConfig::new(2, 0.999))
            .results
            .is_empty());
    }
}
