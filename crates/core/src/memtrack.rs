//! Allocation accounting (feature `track-alloc`): a [`GlobalAlloc`]
//! wrapper counting live bytes, high-water (peak) bytes and total
//! allocation traffic.
//!
//! Install it as the global allocator in a binary that wants peak-memory
//! numbers (the `bench-report` binary does, when built with the
//! feature):
//!
//! ```ignore
//! use pfcim_core::memtrack::TrackingAllocator;
//!
//! #[global_allocator]
//! static ALLOC: TrackingAllocator = TrackingAllocator::system();
//! ```
//!
//! The counters are global statics (there is only one global allocator),
//! updated with relaxed atomics — a handful of nanoseconds per
//! allocation, and nothing at all when the feature is off (the module is
//! not compiled). [`reset_peak`] rebases the high-water mark to the
//! current live bytes, giving per-section peaks:
//!
//! ```ignore
//! memtrack::reset_peak();
//! run_workload();
//! let peak = memtrack::stats().peak_bytes; // high-water of the section
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREED: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);

/// A [`GlobalAlloc`] wrapper that accounts every allocation against the
/// module-level counters before delegating to the inner allocator.
#[derive(Debug, Default, Clone, Copy)]
pub struct TrackingAllocator<A = System> {
    inner: A,
}

impl TrackingAllocator<System> {
    /// Track on top of the system allocator.
    pub const fn system() -> Self {
        Self { inner: System }
    }
}

impl<A> TrackingAllocator<A> {
    /// Track on top of an arbitrary inner allocator.
    pub const fn new(inner: A) -> Self {
        Self { inner }
    }
}

fn on_alloc(bytes: usize) {
    TOTAL_ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

fn on_dealloc(bytes: usize) {
    TOTAL_FREED.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
}

// SAFETY: delegates every allocation verbatim to the inner allocator;
// the counter updates have no effect on the returned memory.
unsafe impl<A: GlobalAlloc> GlobalAlloc for TrackingAllocator<A> {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = self.inner.alloc_zeroed(layout);
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        self.inner.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = self.inner.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// A snapshot of the global allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocStats {
    /// Bytes currently allocated and not yet freed.
    pub live_bytes: usize,
    /// High-water mark of `live_bytes` since process start (or the last
    /// [`reset_peak`]).
    pub peak_bytes: usize,
    /// Number of allocations performed (including the alloc half of each
    /// realloc).
    pub total_allocations: u64,
    /// Number of deallocations performed.
    pub total_freed: u64,
    /// Total bytes ever allocated (turnover, not peak).
    pub total_bytes: u64,
}

/// Read the global allocation counters.
pub fn stats() -> AllocStats {
    AllocStats {
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        total_allocations: TOTAL_ALLOCATIONS.load(Ordering::Relaxed),
        total_freed: TOTAL_FREED.load(Ordering::Relaxed),
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
    }
}

/// Rebase the high-water mark to the current live bytes, so the next
/// [`stats`] reports the peak of the section that follows.
pub fn reset_peak() {
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // The tests drive the GlobalAlloc impl directly (no global install),
    // so they exercise the accounting even when the test binary itself
    // runs on the default allocator. The counters are global, so the
    // tests serialize on a mutex and assert deltas, not absolutes.

    const ALLOC: TrackingAllocator = TrackingAllocator::system();

    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn alloc_dealloc_updates_live_and_peak() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let layout = Layout::from_size_align(1 << 20, 8).unwrap();
        let before = stats();
        let ptr = unsafe { ALLOC.alloc(layout) };
        assert!(!ptr.is_null());
        let during = stats();
        assert!(during.live_bytes >= before.live_bytes + (1 << 20));
        assert!(during.peak_bytes >= before.live_bytes + (1 << 20));
        assert!(during.total_allocations > before.total_allocations);
        assert!(during.total_bytes >= before.total_bytes + (1 << 20));
        unsafe { ALLOC.dealloc(ptr, layout) };
        let after = stats();
        assert!(after.live_bytes < during.live_bytes);
        assert!(after.total_freed > before.total_freed);
        // The peak never decreases without an explicit reset.
        assert!(after.peak_bytes >= during.peak_bytes);
    }

    #[test]
    fn peak_is_high_water_not_live() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let layout = Layout::from_size_align(1 << 16, 8).unwrap();
        reset_peak();
        let ptr = unsafe { ALLOC.alloc(layout) };
        assert!(!ptr.is_null());
        unsafe { ALLOC.dealloc(ptr, layout) };
        let s = stats();
        // The 64 KiB spike is gone from live but retained in the peak.
        assert!(s.peak_bytes >= s.live_bytes);
        assert!(s.peak_bytes >= (1 << 16));
    }

    #[test]
    fn realloc_accounts_both_halves() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let layout = Layout::from_size_align(4096, 8).unwrap();
        let before = stats();
        let ptr = unsafe { ALLOC.alloc(layout) };
        assert!(!ptr.is_null());
        let grown = unsafe { ALLOC.realloc(ptr, layout, 8192) };
        assert!(!grown.is_null());
        let during = stats();
        assert!(during.total_allocations >= before.total_allocations + 2);
        assert!(during.total_bytes >= before.total_bytes + 4096 + 8192);
        unsafe {
            ALLOC.dealloc(grown, Layout::from_size_align(8192, 8).unwrap());
        }
    }

    #[test]
    fn reset_peak_rebases_to_live() {
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        let layout = Layout::from_size_align(1 << 18, 8).unwrap();
        let ptr = unsafe { ALLOC.alloc(layout) };
        assert!(!ptr.is_null());
        unsafe { ALLOC.dealloc(ptr, layout) };
        reset_peak();
        let s = stats();
        // Rebased peak can't exceed live by more than concurrent tests'
        // in-flight allocations; with the 256 KiB spike freed it must sit
        // well below live + spike.
        assert!(s.peak_bytes < s.live_bytes + (1 << 18));
    }
}
