//! Exact frequent-closed-probability computation — the ground-truth
//! oracles.
//!
//! Two independent exact routes:
//!
//! * [`exact_fcp_inclusion_exclusion`] — `Pr_F(X)` minus the exact union
//!   probability of the non-closure events by inclusion–exclusion
//!   (`2^m` joint evaluations; `m` capped);
//! * [`exact_fcp_by_worlds`] — direct possible-world enumeration
//!   (`2^n` worlds; `n` capped).
//!
//! They are compared against each other and against the miner in the test
//! suites; [`exact_pfci_set`] derives the exact result set of the mining
//! problem on small databases, the reference for every end-to-end test
//! and for the precision/recall study (Fig. 11).

use prob::inclusion_exclusion::{exact_union_probability, MAX_EXACT_EVENTS};
use utdb::{Item, PossibleWorlds, UncertainDatabase};

use crate::events::NonClosureEvents;
use crate::result::Pfci;

/// Exact `Pr_FC(X)` via inclusion–exclusion over the non-closure events.
///
/// Returns `None` when the itemset has more than
/// [`MAX_EXACT_EVENTS`] positive-probability events (fall back to
/// [`crate::fcp::approx_fcp`]).
pub fn exact_fcp_inclusion_exclusion(
    db: &UncertainDatabase,
    itemset: &[Item],
    min_sup: usize,
) -> Option<f64> {
    let tidset = db.tidset_of_itemset(itemset);
    let pr_f = pfim::frequent_probability_of_tids(db, &tidset, min_sup);
    let tids = tidset.into_bitmap();
    let ext = (0..db.num_items() as u32)
        .map(Item)
        .filter(|i| !itemset.contains(i));
    let events = NonClosureEvents::build(db, &tids, ext, min_sup);
    if events.len() > MAX_EXACT_EVENTS {
        return None;
    }
    let union = exact_union_probability(events.len(), |s| events.joint(s));
    Some((pr_f - union).clamp(0.0, pr_f))
}

/// Exact `Pr_FC(X)` by enumerating every possible world.
///
/// # Panics
///
/// Panics when the database exceeds the possible-world enumeration cap
/// ([`utdb::worlds::MAX_WORLD_TUPLES`]).
pub fn exact_fcp_by_worlds(db: &UncertainDatabase, itemset: &[Item], min_sup: usize) -> f64 {
    PossibleWorlds::new(db)
        .filter(|&(mask, _)| {
            PossibleWorlds::is_frequent_closed_in_world(db, mask, itemset, min_sup)
        })
        .map(|(_, p)| p)
        .sum()
}

/// The exact probabilistic frequent closed itemset result set of a small
/// database, by brute force over every non-empty itemset and every world.
///
/// # Panics
///
/// Panics beyond 20 distinct items or the possible-world cap.
pub fn exact_pfci_set(db: &UncertainDatabase, min_sup: usize, pfct: f64) -> Vec<Pfci> {
    let m = db.num_items();
    assert!(
        m <= 20,
        "exact PFCI enumeration over {m} items is impractical"
    );
    let mut out = Vec::new();
    for mask in 1u32..(1u32 << m) {
        let items: Vec<Item> = (0..m as u32)
            .filter(|i| mask >> i & 1 == 1)
            .map(Item)
            .collect();
        // Skip itemsets that occur in no transaction (their FCP is 0).
        if db.count_of_itemset(&items) == 0 {
            continue;
        }
        let fcp = exact_fcp_by_worlds(db, &items, min_sup);
        if fcp > pfct {
            let pr_f = pfim::frequent_probability(db, &items, min_sup);
            out.push(Pfci {
                items,
                fcp,
                frequent_probability: pr_f,
            });
        }
    }
    out.sort_by(|a, b| a.items.cmp(&b.items));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    fn items(db: &UncertainDatabase, s: &str) -> Vec<Item> {
        s.split_whitespace()
            .map(|x| db.dictionary().get(x).unwrap())
            .collect()
    }

    #[test]
    fn both_exact_routes_agree_on_table_ii() {
        let db = table2();
        for x_s in ["a", "b", "d", "a b", "a b c", "a b c d", "c d"] {
            let x = items(&db, x_s);
            for min_sup in 1..=4 {
                let by_worlds = exact_fcp_by_worlds(&db, &x, min_sup);
                let by_ie = exact_fcp_inclusion_exclusion(&db, &x, min_sup).unwrap();
                assert!(
                    (by_worlds - by_ie).abs() < 1e-9,
                    "X={x_s} ms={min_sup}: worlds {by_worlds} vs IE {by_ie}"
                );
            }
        }
    }

    #[test]
    fn both_exact_routes_agree_on_table_iv() {
        let db = table4();
        for x_s in ["a", "a b", "a b c", "a b c d"] {
            let x = items(&db, x_s);
            for min_sup in [1, 2, 3] {
                let by_worlds = exact_fcp_by_worlds(&db, &x, min_sup);
                let by_ie = exact_fcp_inclusion_exclusion(&db, &x, min_sup).unwrap();
                assert!(
                    (by_worlds - by_ie).abs() < 1e-9,
                    "X={x_s} ms={min_sup}: {by_worlds} vs {by_ie}"
                );
            }
        }
    }

    #[test]
    fn paper_fcp_values() {
        let db = table2();
        let abc = exact_fcp_by_worlds(&db, &items(&db, "a b c"), 2);
        let abcd = exact_fcp_by_worlds(&db, &items(&db, "a b c d"), 2);
        assert!((abc - 0.8754).abs() < 1e-10);
        assert!((abcd - 0.81).abs() < 1e-10);
    }

    #[test]
    fn table_iv_semantics_comparison_values() {
        // §II.B: in Table IV our definition keeps Pr_FC({abc}) ≈ 0.88 and
        // Pr_FC({abcd}) = 0.81 — wait, the paper reports "0.88 and 0.99"
        // for frequent closed probabilities of {abc},{abcd}; with the
        // stated tuple probabilities the exact values are computed here
        // and pinned; {a} and {ab} stay far below every useful threshold.
        let db = table4();
        let abc = exact_fcp_by_worlds(&db, &items(&db, "a b c"), 2);
        let a = exact_fcp_by_worlds(&db, &items(&db, "a"), 2);
        let ab = exact_fcp_by_worlds(&db, &items(&db, "a b"), 2);
        assert!(abc > 0.8, "{abc}");
        assert!(a < 0.5, "{a}");
        assert!(ab < 0.5, "{ab}");
    }

    #[test]
    fn fcp_never_exceeds_frequent_probability() {
        let db = table4();
        for mask in 1u32..(1 << db.num_items()) {
            let x: Vec<Item> = (0..db.num_items() as u32)
                .filter(|i| mask >> i & 1 == 1)
                .map(Item)
                .collect();
            let fcp = exact_fcp_by_worlds(&db, &x, 2);
            let pr_f = pfim::frequent_probability(&db, &x, 2);
            assert!(fcp <= pr_f + 1e-12, "{x:?}");
        }
    }

    #[test]
    fn exact_pfci_set_of_running_example() {
        let db = table2();
        let set = exact_pfci_set(&db, 2, 0.8);
        let rendered: Vec<String> = set.iter().map(|p| db.render(&p.items)).collect();
        assert_eq!(rendered, vec!["{a, b, c}", "{a, b, c, d}"]);
        assert!((set[0].fcp - 0.8754).abs() < 1e-10);
        assert!((set[1].fcp - 0.81).abs() < 1e-10);
    }

    #[test]
    fn paper_claim_table_iv_results_stable_across_pfct() {
        // The motivating claim of §II.B: with min_sup = 2, our semantics
        // returns {abc} and {abcd} for pfct 0.8 — and the result does not
        // flip to {a}/{ab} as pfct varies (they have tiny FCP).
        let db = table4();
        let at_08 = exact_pfci_set(&db, 2, 0.8);
        let rendered: Vec<String> = at_08.iter().map(|p| db.render(&p.items)).collect();
        assert_eq!(rendered, vec!["{a, b, c}", "{a, b, c, d}"]);
        for pfct in [0.5, 0.6, 0.7] {
            let set = exact_pfci_set(&db, 2, pfct);
            let r: Vec<String> = set.iter().map(|p| db.render(&p.items)).collect();
            assert!(r.contains(&"{a, b, c}".to_string()));
            assert!(!r.contains(&"{a}".to_string()));
            assert!(!r.contains(&"{a, b}".to_string()));
        }
    }
}
