//! Miner configuration and the algorithm variants of the paper's
//! experimental study (Table VII).

/// Which prunings are active — toggling these produces the ablation
/// variants `MPFCI-NoCH`, `MPFCI-NoSuper`, `MPFCI-NoSub`, `MPFCI-NoBound`.
///
/// Every pruning is *sound*: switching any of them off never changes the
/// mined result set, only the amount of work (the integration tests
/// enforce this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PruningConfig {
    /// Chernoff–Hoeffding bound pruning of probabilistically infrequent
    /// candidates (Lemma 4.1).
    pub chernoff_hoeffding: bool,
    /// Superset pruning on pre-item tid-set containment (Lemma 4.2).
    pub superset: bool,
    /// Subset pruning on count-equal extensions (Lemma 4.3).
    pub subset: bool,
    /// Frequent-closed-probability bound pruning (Lemma 4.4).
    pub probability_bounds: bool,
}

impl Default for PruningConfig {
    fn default() -> Self {
        Self {
            chernoff_hoeffding: true,
            superset: true,
            subset: true,
            probability_bounds: true,
        }
    }
}

/// Search strategy of the enumeration framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchStrategy {
    /// Depth-first search (the paper's `ProbFC`, Fig. 3).
    #[default]
    Dfs,
    /// Breadth-first (level-wise) search — `MPFCI-BFS` in Section V.D.
    /// Superset/subset prunings do not apply level-wise and are ignored.
    Bfs,
}

/// How the frequent closed probability of a surviving itemset is computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FcpMethod {
    /// Exact inclusion–exclusion when the itemset has at most this many
    /// co-occurring extension items, Monte-Carlo `ApproxFCP` otherwise.
    Auto {
        /// Fan-out cap for the exact path (`2^cap` joint evaluations).
        exact_cap: usize,
    },
    /// Always sample (`ApproxFCP`, Fig. 2) — used by the approximation-
    /// quality experiment (Fig. 11).
    ApproxOnly,
    /// Always sample, but with the Dagum–Karp–Luby–Ross *stopping rule*:
    /// the sample count adapts to the unknown union probability instead
    /// of paying the fixed `4k·ln(2/δ)/ε²` worst case. Same `(ε, δ)`
    /// guarantee whenever the estimator converges within the fixed-`N`
    /// budget (which also serves as its cap).
    ApproxAdaptive,
    /// Always inclusion–exclusion; panics past
    /// [`prob::inclusion_exclusion::MAX_EXACT_EVENTS`] events. Intended
    /// for tests and ground-truth generation on small data.
    ExactOnly,
}

impl Default for FcpMethod {
    fn default() -> Self {
        FcpMethod::Auto { exact_cap: 8 }
    }
}

/// Full miner configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct MinerConfig {
    /// Minimum support threshold (absolute count, ≥ 1).
    pub min_sup: usize,
    /// Probabilistic frequent closed threshold in `[0, 1)`.
    pub pfct: f64,
    /// Relative tolerance of `ApproxFCP` (paper default 0.1).
    pub epsilon: f64,
    /// Confidence parameter of `ApproxFCP` (paper default 0.1, i.e.
    /// confidence `1 − δ = 0.9`).
    pub delta: f64,
    /// Active prunings.
    pub pruning: PruningConfig,
    /// Enumeration order.
    pub search: SearchStrategy,
    /// Probability-computation policy.
    pub fcp_method: FcpMethod,
    /// At most this many (highest-probability) non-closure events enter
    /// the `O(m²)` pairwise bound computation; the rest contribute their
    /// total mass to the upper bound soundly.
    pub max_pairwise_events: usize,
    /// Seed of the deterministic RNG driving `ApproxFCP`.
    pub seed: u64,
    /// Optional wall-clock budget; when exceeded the miner stops early
    /// and flags the outcome as timed out (used by the benchmark harness
    /// to reproduce the paper's "longer than one hour" cells).
    pub time_budget: Option<std::time::Duration>,
    /// Worker threads for the parallel phases (first-level DFS fan-out
    /// and chunked `ApproxFCP` sampling). `0` means *auto*: the
    /// `PFCIM_THREADS` environment variable when set to a positive
    /// integer, otherwise the machine's available parallelism.
    /// `threads = 1` runs the legacy sequential path byte-identically.
    pub threads: usize,
    /// **Deprecated knob, still honored.** Former numerical-stability
    /// floor of the incremental frequentness DP: the downdate used to be
    /// refused whenever the a-priori amplification factor
    /// `(p/(1-p))^(min_sup-1)` exceeded `1 / dp_stability`. The downdate
    /// now tracks a *measured* per-element error bound and refuses on
    /// [`MinerConfig::dp_error_tol`] instead; a non-default
    /// `dp_stability` is translated into an equivalent tolerance by
    /// [`MinerConfig::effective_dp_error_tol`] so existing callers keep
    /// their strict/loose intent. Must lie in `(0, 1]`. Prefer
    /// [`MinerConfig::with_dp_error_tol`].
    pub dp_stability: f64,
    /// Maximum tolerated *measured* absolute error of an incrementally
    /// downdated frequentness-DP row (summed per-element bounds, tracked
    /// through compensated/log-domain deconvolution). A downdate whose
    /// projected error exceeds this refuses, and the row is rebuilt from
    /// scratch. `0.0` accepts only provably exact downdates. Must be
    /// finite and non-negative; defaults to
    /// [`DEFAULT_DP_ERROR_TOL`] (`1e-9`), matching the differential
    /// proptest's downdate-vs-rebuild agreement bound.
    pub dp_error_tol: f64,
    /// Capacity of the evaluator's per-run bound-input (event-table)
    /// cache, keyed by tid-set fingerprint. `0` disables memoization.
    /// Defaults to the `PFCIM_EVENT_CACHE` environment variable when it
    /// parses as an integer, else [`DEFAULT_EVENT_CACHE_CAPACITY`];
    /// override explicitly with
    /// [`MinerConfig::with_event_cache_capacity`].
    pub event_cache_capacity: usize,
}

/// Built-in default of [`MinerConfig::event_cache_capacity`] when the
/// `PFCIM_EVENT_CACHE` environment variable is absent.
pub const DEFAULT_EVENT_CACHE_CAPACITY: usize = 32;

/// Default of [`MinerConfig::dp_error_tol`]: the incremental downdate is
/// accepted when its measured error bound stays within `1e-9` — the same
/// agreement threshold the downdate-vs-rebuild property test enforces.
pub const DEFAULT_DP_ERROR_TOL: f64 = 1e-9;

/// Default of [`MinerConfig::dp_stability`] (legacy knob).
pub const DEFAULT_DP_STABILITY: f64 = 1e-2;

/// Resolve the default event-cache capacity: `PFCIM_EVENT_CACHE` when it
/// parses as a non-negative integer (`0` disables memoization), else
/// [`DEFAULT_EVENT_CACHE_CAPACITY`]. Mirrors how `PFCIM_THREADS` feeds
/// [`MinerConfig::effective_threads`].
pub fn default_event_cache_capacity() -> usize {
    std::env::var("PFCIM_EVENT_CACHE")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_EVENT_CACHE_CAPACITY)
}

impl MinerConfig {
    /// The paper's default parameterization: `ε = δ = 0.1`, all prunings
    /// on, depth-first search.
    pub fn new(min_sup: usize, pfct: f64) -> Self {
        Self {
            min_sup: min_sup.max(1),
            pfct,
            epsilon: 0.1,
            delta: 0.1,
            pruning: PruningConfig::default(),
            search: SearchStrategy::Dfs,
            fcp_method: FcpMethod::default(),
            max_pairwise_events: 48,
            seed: 0x05ee_dfc1,
            time_budget: None,
            threads: 0,
            dp_stability: DEFAULT_DP_STABILITY,
            dp_error_tol: DEFAULT_DP_ERROR_TOL,
            event_cache_capacity: default_event_cache_capacity(),
        }
    }

    /// Set `ε` and `δ`.
    pub fn with_approximation(mut self, epsilon: f64, delta: f64) -> Self {
        self.epsilon = epsilon;
        self.delta = delta;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the probability-computation policy.
    pub fn with_fcp_method(mut self, method: FcpMethod) -> Self {
        self.fcp_method = method;
        self
    }

    /// Set a wall-clock budget after which the miner aborts (the outcome
    /// is then marked [`crate::MiningOutcome::timed_out`]).
    pub fn with_time_budget(mut self, budget: std::time::Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Set the worker-thread count (`0` = auto, see
    /// [`MinerConfig::threads`]).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Set the legacy incremental-DP stability floor (see
    /// [`MinerConfig::dp_stability`]; prefer
    /// [`MinerConfig::with_dp_error_tol`]).
    pub fn with_dp_stability(mut self, dp_stability: f64) -> Self {
        self.dp_stability = dp_stability;
        self
    }

    /// Set the measured-error tolerance of the incremental DP downdate
    /// (see [`MinerConfig::dp_error_tol`]). `0.0` accepts only provably
    /// exact downdates.
    pub fn with_dp_error_tol(mut self, dp_error_tol: f64) -> Self {
        self.dp_error_tol = dp_error_tol;
        self
    }

    /// Resolve the error tolerance the miners actually pass to the
    /// downdate. An explicit [`MinerConfig::dp_error_tol`] wins; when it
    /// is left at its default but the legacy
    /// [`MinerConfig::dp_stability`] was customized, the stability floor
    /// is mapped onto the tolerance axis (`1e-11 / dp_stability`) so that
    /// a stricter legacy setting still means a stricter downdate — the
    /// identity holds at the defaults (`1e-11 / 1e-2 = 1e-9`).
    pub fn effective_dp_error_tol(&self) -> f64 {
        if self.dp_error_tol != DEFAULT_DP_ERROR_TOL {
            self.dp_error_tol
        } else if self.dp_stability != DEFAULT_DP_STABILITY {
            1e-11 / self.dp_stability
        } else {
            DEFAULT_DP_ERROR_TOL
        }
    }

    /// Set the evaluator's bound-input cache capacity (`0` disables; see
    /// [`MinerConfig::event_cache_capacity`]).
    pub fn with_event_cache_capacity(mut self, capacity: usize) -> Self {
        self.event_cache_capacity = capacity;
        self
    }

    /// Resolve [`MinerConfig::threads`] to a concrete worker count:
    /// an explicit positive setting wins, else the `PFCIM_THREADS`
    /// environment variable (positive integer), else the machine's
    /// available parallelism.
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Ok(v) = std::env::var("PFCIM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        crate::par::available_parallelism()
    }

    /// Apply an experimental variant (Table VII).
    pub fn with_variant(mut self, variant: Variant) -> Self {
        match variant {
            Variant::Mpfci => {}
            Variant::NoCh => self.pruning.chernoff_hoeffding = false,
            Variant::NoSuper => self.pruning.superset = false,
            Variant::NoSub => self.pruning.subset = false,
            Variant::NoBound => self.pruning.probability_bounds = false,
            Variant::Bfs => {
                self.search = SearchStrategy::Bfs;
                self.pruning.superset = false;
                self.pruning.subset = false;
            }
        }
        self
    }

    /// Validate invariants; called by the miners at entry.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range thresholds.
    pub fn validate(&self) {
        assert!(self.min_sup >= 1, "min_sup must be at least 1");
        assert!((0.0..1.0).contains(&self.pfct), "pfct must lie in [0, 1)");
        assert!(self.epsilon > 0.0, "epsilon must be positive");
        assert!(
            self.delta > 0.0 && self.delta < 1.0,
            "delta must lie in (0, 1)"
        );
        assert!(
            self.dp_stability > 0.0 && self.dp_stability <= 1.0,
            "dp_stability must lie in (0, 1]"
        );
        assert!(
            self.dp_error_tol >= 0.0 && self.dp_error_tol.is_finite(),
            "dp_error_tol must be finite and non-negative"
        );
    }
}

/// The six algorithm variants compared in the paper's Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// All prunings, depth-first search.
    Mpfci,
    /// Without Chernoff–Hoeffding pruning.
    NoCh,
    /// Without superset pruning.
    NoSuper,
    /// Without subset pruning.
    NoSub,
    /// Without probability-bound pruning.
    NoBound,
    /// Breadth-first framework (CH + probability bounds only).
    Bfs,
}

impl Variant {
    /// All variants in the paper's table order.
    pub const ALL: [Variant; 6] = [
        Variant::Mpfci,
        Variant::NoCh,
        Variant::NoSuper,
        Variant::NoSub,
        Variant::NoBound,
        Variant::Bfs,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Mpfci => "MPFCI",
            Variant::NoCh => "MPFCI-NoCH",
            Variant::NoSuper => "MPFCI-NoSuper",
            Variant::NoSub => "MPFCI-NoSub",
            Variant::NoBound => "MPFCI-NoBound",
            Variant::Bfs => "MPFCI-BFS",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes the tests that read or write `PFCIM_EVENT_CACHE` —
    /// the test harness runs `#[test]`s on threads sharing one process
    /// environment.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn default_config_matches_paper_defaults() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::remove_var("PFCIM_EVENT_CACHE");
        let c = MinerConfig::new(2, 0.8);
        assert_eq!(c.epsilon, 0.1);
        assert_eq!(c.delta, 0.1);
        assert_eq!(c.search, SearchStrategy::Dfs);
        assert!(c.pruning.chernoff_hoeffding);
        assert!(c.pruning.superset);
        assert!(c.pruning.subset);
        assert!(c.pruning.probability_bounds);
        assert_eq!(c.dp_stability, 1e-2);
        assert_eq!(c.dp_error_tol, DEFAULT_DP_ERROR_TOL);
        assert_eq!(c.event_cache_capacity, 32);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "dp_stability")]
    fn validate_rejects_nonpositive_dp_stability() {
        MinerConfig::new(2, 0.8).with_dp_stability(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "dp_error_tol")]
    fn validate_rejects_negative_dp_error_tol() {
        MinerConfig::new(2, 0.8).with_dp_error_tol(-1e-9).validate();
    }

    #[test]
    fn effective_dp_error_tol_resolution() {
        // Defaults: the identity.
        let c = MinerConfig::new(2, 0.8);
        assert_eq!(c.effective_dp_error_tol(), DEFAULT_DP_ERROR_TOL);
        // An explicit tolerance wins outright.
        let c = MinerConfig::new(2, 0.8).with_dp_error_tol(0.0);
        assert_eq!(c.effective_dp_error_tol(), 0.0);
        let c = MinerConfig::new(2, 0.8)
            .with_dp_stability(1.0)
            .with_dp_error_tol(1e-6);
        assert_eq!(c.effective_dp_error_tol(), 1e-6);
        // A customized legacy stability floor maps onto the tolerance
        // axis, preserving its strict/loose intent.
        let strict = MinerConfig::new(2, 0.8).with_dp_stability(1.0);
        assert_eq!(strict.effective_dp_error_tol(), 1e-11);
        let loose = MinerConfig::new(2, 0.8).with_dp_stability(1e-6);
        let got = loose.effective_dp_error_tol();
        assert!((got - 1e-5).abs() < 1e-6 * 1e-5, "{got}");
        assert!(strict.effective_dp_error_tol() < loose.effective_dp_error_tol());
    }

    #[test]
    fn variants_toggle_the_right_flags() {
        let base = MinerConfig::new(2, 0.8);
        assert!(
            !base
                .clone()
                .with_variant(Variant::NoCh)
                .pruning
                .chernoff_hoeffding
        );
        assert!(!base.clone().with_variant(Variant::NoSuper).pruning.superset);
        assert!(!base.clone().with_variant(Variant::NoSub).pruning.subset);
        assert!(
            !base
                .clone()
                .with_variant(Variant::NoBound)
                .pruning
                .probability_bounds
        );
        let bfs = base.with_variant(Variant::Bfs);
        assert_eq!(bfs.search, SearchStrategy::Bfs);
        assert!(!bfs.pruning.superset && !bfs.pruning.subset);
        assert!(bfs.pruning.chernoff_hoeffding && bfs.pruning.probability_bounds);
    }

    #[test]
    fn min_sup_zero_is_lifted_to_one() {
        assert_eq!(MinerConfig::new(0, 0.5).min_sup, 1);
    }

    #[test]
    fn event_cache_capacity_reads_the_environment() {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var("PFCIM_EVENT_CACHE", "128");
        assert_eq!(MinerConfig::new(2, 0.8).event_cache_capacity, 128);
        // Zero is a valid setting: it disables memoization.
        std::env::set_var("PFCIM_EVENT_CACHE", "0");
        assert_eq!(MinerConfig::new(2, 0.8).event_cache_capacity, 0);
        // Garbage falls back to the built-in default.
        std::env::set_var("PFCIM_EVENT_CACHE", "lots");
        assert_eq!(
            MinerConfig::new(2, 0.8).event_cache_capacity,
            DEFAULT_EVENT_CACHE_CAPACITY
        );
        std::env::remove_var("PFCIM_EVENT_CACHE");
        assert_eq!(
            MinerConfig::new(2, 0.8).event_cache_capacity,
            DEFAULT_EVENT_CACHE_CAPACITY
        );
        // The builder always wins over the environment.
        std::env::set_var("PFCIM_EVENT_CACHE", "7");
        let c = MinerConfig::new(2, 0.8).with_event_cache_capacity(5);
        assert_eq!(c.event_cache_capacity, 5);
        std::env::remove_var("PFCIM_EVENT_CACHE");
    }

    #[test]
    fn variant_names_match_table_vii() {
        let names: Vec<&str> = Variant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(
            names,
            [
                "MPFCI",
                "MPFCI-NoCH",
                "MPFCI-NoSuper",
                "MPFCI-NoSub",
                "MPFCI-NoBound",
                "MPFCI-BFS"
            ]
        );
    }

    #[test]
    #[should_panic(expected = "pfct")]
    fn validate_rejects_pfct_one() {
        MinerConfig::new(2, 1.0).validate();
    }

    #[test]
    fn threads_default_to_auto_and_builder_overrides() {
        let c = MinerConfig::new(2, 0.8);
        assert_eq!(c.threads, 0);
        assert!(c.effective_threads() >= 1);
        let c = c.with_threads(3);
        assert_eq!(c.threads, 3);
        assert_eq!(c.effective_threads(), 3);
    }
}
