//! Result types of a mining run.

use std::time::Duration;

use utdb::{Item, UncertainDatabase};

use crate::stats::{DpAudit, KernelStats, MinerStats, PhaseTimers};

/// One probabilistic frequent closed itemset (Definition 3.8).
#[derive(Debug, Clone, PartialEq)]
pub struct Pfci {
    /// The itemset, sorted ascending.
    pub items: Vec<Item>,
    /// Its (possibly approximate) frequent closed probability.
    pub fcp: f64,
    /// Its frequent probability `Pr_F` — an upper bound on `fcp`, always
    /// exact (computed by the polynomial DP).
    pub frequent_probability: f64,
}

impl Pfci {
    /// Render as `{a, b, c}: 0.875` with the database's dictionary.
    pub fn render(&self, db: &UncertainDatabase) -> String {
        format!("{}: {:.4}", db.render(&self.items), self.fcp)
    }
}

/// Everything a mining run returns.
#[derive(Debug, Clone)]
pub struct MiningOutcome {
    /// The probabilistic frequent closed itemsets, in canonical
    /// (lexicographic itemset) order.
    pub results: Vec<Pfci>,
    /// Work counters.
    pub stats: MinerStats,
    /// Substrate counters for the bitmap/DP kernels (incremental-DP
    /// hit rates, bound-input cache behaviour, words scanned).
    pub kernel: KernelStats,
    /// Wall-clock totals per instrumented phase (freq-dp, ch-bound,
    /// event-build, bound-eval, fcp-exact, fcp-sample).
    pub timers: PhaseTimers,
    /// Decision audit of every frequentness-DP row: incremental
    /// downdates versus each structured reason a row was rebuilt
    /// (`audit.incremental == kernel.dp_incremental`,
    /// `audit.recomputed() == kernel.dp_recomputed`).
    pub audit: DpAudit,
    /// Wall-clock duration.
    pub elapsed: Duration,
    /// True when the run hit its configured time budget and aborted
    /// early; `results` is then a (sound but possibly incomplete) subset.
    pub timed_out: bool,
}

impl MiningOutcome {
    /// Sort results canonically (done by the miners before returning; a
    /// public helper so baselines can normalize too).
    pub fn sort_canonical(&mut self) {
        self.results.sort_by(|a, b| a.items.cmp(&b.items));
    }

    /// The itemsets alone, canonical order — the shape result-set
    /// equality tests compare.
    pub fn itemsets(&self) -> Vec<Vec<Item>> {
        self.results.iter().map(|p| p.items.clone()).collect()
    }

    /// Counters, timers and wall-clock time as one [`TimedStats`](crate::stats::TimedStats) bundle
    /// (the shape sweeps aggregate).
    pub fn timed_stats(&self) -> crate::stats::TimedStats {
        crate::stats::TimedStats {
            stats: self.stats,
            elapsed: self.elapsed,
            timers: self.timers,
        }
    }

    /// Look up the FCP of an itemset, if present.
    pub fn fcp_of(&self, items: &[Item]) -> Option<f64> {
        self.results
            .iter()
            .find(|p| p.items == items)
            .map(|p| p.fcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_uses_dictionary() {
        let db = UncertainDatabase::parse_symbolic(&[("x y", 0.5)]);
        let p = Pfci {
            items: vec![Item(0), Item(1)],
            fcp: 0.875,
            frequent_probability: 0.9,
        };
        assert_eq!(p.render(&db), "{x, y}: 0.8750");
    }

    #[test]
    fn outcome_helpers() {
        let mut o = MiningOutcome {
            results: vec![
                Pfci {
                    items: vec![Item(1)],
                    fcp: 0.5,
                    frequent_probability: 0.6,
                },
                Pfci {
                    items: vec![Item(0)],
                    fcp: 0.7,
                    frequent_probability: 0.8,
                },
            ],
            stats: MinerStats::default(),
            kernel: KernelStats::default(),
            timers: PhaseTimers::default(),
            audit: DpAudit::default(),
            elapsed: Duration::ZERO,
            timed_out: false,
        };
        o.sort_canonical();
        assert_eq!(o.itemsets(), vec![vec![Item(0)], vec![Item(1)]]);
        assert_eq!(o.fcp_of(&[Item(1)]), Some(0.5));
        assert_eq!(o.fcp_of(&[Item(2)]), None);
    }
}
