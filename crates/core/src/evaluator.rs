//! Shared per-itemset evaluation: bounds, then exact or sampled FCP.
//!
//! Both search frameworks (DFS and BFS) and the Naive baseline funnel
//! surviving itemsets through this checking phase — the "Bounding" and
//! "Checking" stages of the paper's Bounding–Pruning–Checking framework.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use utdb::{Item, TidSet, UncertainDatabase};

use crate::config::{FcpMethod, MinerConfig};
use crate::events::NonClosureEvents;
use crate::fcp::{approx_fcp, approx_fcp_adaptive};
use crate::result::Pfci;
use crate::stats::MinerStats;

/// Bounds intervals narrower than this are treated as decided without a
/// full FCP computation (the paper's "upper bound equals lower bound").
const DECIDED_WIDTH: f64 = 1e-6;

pub(crate) struct Evaluator<'a> {
    pub db: &'a UncertainDatabase,
    pub cfg: &'a MinerConfig,
    pub rng: SmallRng,
    pub stats: MinerStats,
}

impl<'a> Evaluator<'a> {
    pub fn new(db: &'a UncertainDatabase, cfg: &'a MinerConfig) -> Self {
        Self {
            db,
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            stats: MinerStats::default(),
        }
    }

    /// Build the non-closure event family of `items` over every other item
    /// in the database.
    pub fn events_for(&self, items: &[Item], tids: &TidSet) -> NonClosureEvents {
        let ext = (0..self.db.num_items() as u32)
            .map(Item)
            .filter(|i| items.binary_search(i).is_err());
        NonClosureEvents::build(self.db, tids, ext, self.cfg.min_sup)
    }

    /// Full checking phase for an itemset that survived all prunings:
    /// returns `Some(Pfci)` when its frequent closed probability exceeds
    /// `pfct`.
    pub fn evaluate(&mut self, items: &[Item], tids: &TidSet, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let (lo, hi) = if self.cfg.pruning.probability_bounds {
            let (lo, hi) =
                events.fcp_bounds(pr_f, self.cfg.max_pairwise_events, Some(self.cfg.pfct));
            if hi <= self.cfg.pfct {
                self.stats.bound_rejected += 1;
                return None;
            }
            if lo > self.cfg.pfct && hi - lo < DECIDED_WIDTH {
                self.stats.bound_decided += 1;
                return Some(self.pfci(items, (lo + hi) / 2.0, pr_f));
            }
            (lo, hi)
        } else {
            (0.0, pr_f)
        };
        let fcp = self.compute_fcp(&events, pr_f).clamp(lo, hi);
        (fcp > self.cfg.pfct).then(|| self.pfci(items, fcp, pr_f))
    }

    /// Naive checking (the paper's "Naive" baseline): always run
    /// `ApproxFCP`, no bounds.
    pub fn evaluate_naive(&mut self, items: &[Item], tids: &TidSet, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let r = approx_fcp(
            &events,
            pr_f,
            self.cfg.epsilon,
            self.cfg.delta,
            &mut self.rng,
        );
        self.stats.fcp_sampled += 1;
        self.stats.samples_drawn += r.samples as u64;
        (r.fcp > self.cfg.pfct).then(|| self.pfci(items, r.fcp, pr_f))
    }

    fn compute_fcp(&mut self, events: &NonClosureEvents, pr_f: f64) -> f64 {
        let use_exact = match self.cfg.fcp_method {
            FcpMethod::ExactOnly => true,
            FcpMethod::ApproxOnly | FcpMethod::ApproxAdaptive => false,
            FcpMethod::Auto { exact_cap } => events.len() <= exact_cap,
        };
        if use_exact {
            self.stats.fcp_exact += 1;
            let union = prob::exact_union_probability(events.len(), |s| events.joint(s));
            (pr_f - union).clamp(0.0, pr_f)
        } else {
            let r = if matches!(self.cfg.fcp_method, FcpMethod::ApproxAdaptive) {
                approx_fcp_adaptive(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                )
            } else {
                approx_fcp(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                )
            };
            self.stats.fcp_sampled += 1;
            self.stats.samples_drawn += r.samples as u64;
            r.fcp
        }
    }

    fn pfci(&self, items: &[Item], fcp: f64, pr_f: f64) -> Pfci {
        Pfci {
            items: items.to_vec(),
            fcp,
            frequent_probability: pr_f,
        }
    }
}
