//! Shared per-itemset evaluation: bounds, then exact or sampled FCP.
//!
//! Both search frameworks (DFS and BFS) and the Naive baseline funnel
//! surviving itemsets through this checking phase — the "Bounding" and
//! "Checking" stages of the paper's Bounding–Pruning–Checking framework.
//!
//! The evaluator owns the run's observability state: the [`MinerStats`]
//! counters, the [`PhaseTimers`] and the [`MinerSink`] the run was
//! started with. It is generic over the sink type, so runs with the
//! default [`crate::trace::NullSink`] monomorphize every callback away.
//!
//! It also owns the run's bound-input memoization: a small LRU of
//! [`EventTable`]s keyed by tid-set fingerprint. Two itemsets with equal
//! supporting tuples need identical non-closure event inputs (they differ
//! only in which items are excluded), so the cache turns the repeated
//! `O(k·m)` event construction into an `O(m)` projection.

use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utdb::{Item, TidBitmap, UncertainDatabase};

use crate::config::{FcpMethod, MinerConfig};
use crate::events::{EventTable, NonClosureEvents};
use crate::fcp::{approx_fcp_adaptive_traced, approx_fcp_chunked_traced, approx_fcp_traced};
use crate::result::Pfci;
use crate::stats::{DpAudit, KernelStats, MinerStats, PhaseTimers};
use crate::trace::{timed, FcpEvalKind, MinerSink, Phase, PruneKind};

/// Bounds intervals narrower than this are treated as decided without a
/// full FCP computation (the paper's "upper bound equals lower bound").
const DECIDED_WIDTH: f64 = 1e-6;

/// A bounded LRU of [`EventTable`]s keyed by tid-set fingerprint.
///
/// Lookup verifies **full tid-set equality** on a fingerprint match, so a
/// 64-bit hash collision degrades to a miss, never to a wrong table. The
/// store is a small MRU-first vector — at the configured capacities a
/// linear scan beats any hashed structure.
struct EventTableCache {
    entries: Vec<(u64, Rc<EventTable>)>,
    capacity: usize,
}

impl EventTableCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: Vec::new(),
            capacity,
        }
    }

    fn get(&mut self, fingerprint: u64, tids: &TidBitmap) -> Option<Rc<EventTable>> {
        let pos = self
            .entries
            .iter()
            .position(|(fp, table)| *fp == fingerprint && table.tids() == tids)?;
        let entry = self.entries.remove(pos);
        let table = Rc::clone(&entry.1);
        self.entries.insert(0, entry);
        Some(table)
    }

    fn insert(&mut self, fingerprint: u64, table: Rc<EventTable>) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop();
        }
        self.entries.insert(0, (fingerprint, table));
    }
}

pub(crate) struct Evaluator<'a, S: MinerSink + ?Sized> {
    pub db: &'a UncertainDatabase,
    pub cfg: &'a MinerConfig,
    pub rng: SmallRng,
    pub stats: MinerStats,
    pub kernel: KernelStats,
    pub timers: PhaseTimers,
    pub audit: DpAudit,
    pub sink: &'a mut S,
    /// Resolved worker count for chunked `ApproxFCP`. `1` keeps every
    /// sampled path byte-identical to the legacy shared-RNG code.
    threads: usize,
    cache: EventTableCache,
}

impl<'a, S: MinerSink + ?Sized> Evaluator<'a, S> {
    pub fn new(db: &'a UncertainDatabase, cfg: &'a MinerConfig, sink: &'a mut S) -> Self {
        Self {
            db,
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            stats: MinerStats::default(),
            kernel: KernelStats::default(),
            timers: PhaseTimers::default(),
            audit: DpAudit::default(),
            sink,
            threads: cfg.effective_threads(),
            cache: EventTableCache::new(cfg.event_cache_capacity),
        }
    }

    /// Build the non-closure event family of `items` over every other item
    /// in the database, through the event-table cache when enabled.
    ///
    /// Cached projection and direct construction produce bitwise-identical
    /// families (the events module tests prove it), so toggling the cache
    /// never changes mined probabilities.
    pub fn events_for(&mut self, items: &[Item], tids: &TidBitmap) -> NonClosureEvents {
        let db = self.db;
        let min_sup = self.cfg.min_sup;
        let num_items = db.num_items() as u32;
        let cache = &mut self.cache;
        let kernel = &mut self.kernel;
        timed(Phase::EventBuild, &mut self.timers, &mut *self.sink, || {
            if cache.capacity == 0 {
                let ext = (0..num_items)
                    .map(Item)
                    .filter(|i| items.binary_search(i).is_err());
                return NonClosureEvents::build(db, tids, ext, min_sup);
            }
            let fingerprint = tids.fingerprint();
            if let Some(table) = cache.get(fingerprint, tids) {
                kernel.bound_cache_hits += 1;
                return table.family_excluding(items);
            }
            kernel.bound_cache_misses += 1;
            let table = Rc::new(EventTable::build(db, tids, min_sup));
            cache.insert(fingerprint, Rc::clone(&table));
            table.family_excluding(items)
        })
    }

    /// Full checking phase for an itemset that survived all prunings:
    /// returns `Some(Pfci)` when its frequent closed probability exceeds
    /// `pfct`.
    pub fn evaluate(&mut self, items: &[Item], tids: &TidBitmap, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let (lo, hi) = if self.cfg.pruning.probability_bounds {
            let max_pairwise = self.cfg.max_pairwise_events;
            let pfct = self.cfg.pfct;
            let (lo, hi) = timed(Phase::BoundEval, &mut self.timers, &mut *self.sink, || {
                events.fcp_bounds(pr_f, max_pairwise, Some(pfct))
            });
            self.sink.fcp_bounds(lo, hi);
            if hi <= pfct {
                self.stats.bound_rejected += 1;
                self.sink.prune_fired(PruneKind::BoundReject);
                return None;
            }
            if lo > pfct && hi - lo < DECIDED_WIDTH {
                self.stats.bound_decided += 1;
                self.sink.fcp_evaluated(FcpEvalKind::BoundDecided, 0);
                return Some(self.emit(items, (lo + hi) / 2.0, pr_f));
            }
            (lo, hi)
        } else {
            (0.0, pr_f)
        };
        let fcp = self.compute_fcp(&events, pr_f).clamp(lo, hi);
        (fcp > self.cfg.pfct).then(|| self.emit(items, fcp, pr_f))
    }

    /// Naive checking (the paper's "Naive" baseline): always run
    /// `ApproxFCP`, no bounds.
    pub fn evaluate_naive(&mut self, items: &[Item], tids: &TidBitmap, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let r = if self.threads > 1 {
            let call_seed = self.rng.next_u64();
            approx_fcp_chunked_traced(
                &events,
                pr_f,
                self.cfg.epsilon,
                self.cfg.delta,
                self.threads,
                call_seed,
                &mut self.timers,
                &mut *self.sink,
            )
        } else {
            approx_fcp_traced(
                &events,
                pr_f,
                self.cfg.epsilon,
                self.cfg.delta,
                &mut self.rng,
                &mut self.timers,
                &mut *self.sink,
            )
        };
        self.stats.fcp_sampled += 1;
        self.stats.samples_drawn += r.samples as u64;
        (r.fcp > self.cfg.pfct).then(|| self.emit(items, r.fcp, pr_f))
    }

    fn compute_fcp(&mut self, events: &NonClosureEvents, pr_f: f64) -> f64 {
        let use_exact = match self.cfg.fcp_method {
            FcpMethod::ExactOnly => true,
            FcpMethod::ApproxOnly | FcpMethod::ApproxAdaptive => false,
            FcpMethod::Auto { exact_cap } => events.len() <= exact_cap,
        };
        if use_exact {
            self.stats.fcp_exact += 1;
            let union = timed(Phase::FcpExact, &mut self.timers, &mut *self.sink, || {
                prob::exact_union_probability(events.len(), |s| events.joint(s))
            });
            self.sink.fcp_evaluated(FcpEvalKind::Exact, 0);
            (pr_f - union).clamp(0.0, pr_f)
        } else {
            let r = if matches!(self.cfg.fcp_method, FcpMethod::ApproxAdaptive) {
                // The stopping rule is inherently sequential (each draw
                // decides whether to continue), so it never chunks.
                approx_fcp_adaptive_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                    &mut self.timers,
                    &mut *self.sink,
                )
            } else if self.threads > 1 {
                let call_seed = self.rng.next_u64();
                approx_fcp_chunked_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    self.threads,
                    call_seed,
                    &mut self.timers,
                    &mut *self.sink,
                )
            } else {
                approx_fcp_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                    &mut self.timers,
                    &mut *self.sink,
                )
            };
            self.stats.fcp_sampled += 1;
            self.stats.samples_drawn += r.samples as u64;
            r.fcp
        }
    }

    /// Build the accepted result and notify the sink — the single point
    /// every success path funnels through, so `result_emitted` events are
    /// one-to-one with returned results.
    fn emit(&mut self, items: &[Item], fcp: f64, pr_f: f64) -> Pfci {
        self.sink.result_emitted(items, fcp);
        Pfci {
            items: items.to_vec(),
            fcp,
            frequent_probability: pr_f,
        }
    }
}
