//! Shared per-itemset evaluation: bounds, then exact or sampled FCP.
//!
//! Both search frameworks (DFS and BFS) and the Naive baseline funnel
//! surviving itemsets through this checking phase — the "Bounding" and
//! "Checking" stages of the paper's Bounding–Pruning–Checking framework.
//!
//! The evaluator owns the run's observability state: the [`MinerStats`]
//! counters, the [`PhaseTimers`] and the [`MinerSink`] the run was
//! started with. It is generic over the sink type, so runs with the
//! default [`crate::trace::NullSink`] monomorphize every callback away.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use utdb::{Item, TidSet, UncertainDatabase};

use crate::config::{FcpMethod, MinerConfig};
use crate::events::NonClosureEvents;
use crate::fcp::{approx_fcp_adaptive_traced, approx_fcp_chunked_traced, approx_fcp_traced};
use crate::result::Pfci;
use crate::stats::{MinerStats, PhaseTimers};
use crate::trace::{timed, FcpEvalKind, MinerSink, Phase, PruneKind};

/// Bounds intervals narrower than this are treated as decided without a
/// full FCP computation (the paper's "upper bound equals lower bound").
const DECIDED_WIDTH: f64 = 1e-6;

pub(crate) struct Evaluator<'a, S: MinerSink + ?Sized> {
    pub db: &'a UncertainDatabase,
    pub cfg: &'a MinerConfig,
    pub rng: SmallRng,
    pub stats: MinerStats,
    pub timers: PhaseTimers,
    pub sink: &'a mut S,
    /// Resolved worker count for chunked `ApproxFCP`. `1` keeps every
    /// sampled path byte-identical to the legacy shared-RNG code.
    threads: usize,
}

impl<'a, S: MinerSink + ?Sized> Evaluator<'a, S> {
    pub fn new(db: &'a UncertainDatabase, cfg: &'a MinerConfig, sink: &'a mut S) -> Self {
        Self {
            db,
            cfg,
            rng: SmallRng::seed_from_u64(cfg.seed),
            stats: MinerStats::default(),
            timers: PhaseTimers::default(),
            sink,
            threads: cfg.effective_threads(),
        }
    }

    /// Build the non-closure event family of `items` over every other item
    /// in the database.
    pub fn events_for(&mut self, items: &[Item], tids: &TidSet) -> NonClosureEvents {
        let db = self.db;
        let min_sup = self.cfg.min_sup;
        let num_items = db.num_items() as u32;
        timed(Phase::EventBuild, &mut self.timers, &mut *self.sink, || {
            let ext = (0..num_items)
                .map(Item)
                .filter(|i| items.binary_search(i).is_err());
            NonClosureEvents::build(db, tids, ext, min_sup)
        })
    }

    /// Full checking phase for an itemset that survived all prunings:
    /// returns `Some(Pfci)` when its frequent closed probability exceeds
    /// `pfct`.
    pub fn evaluate(&mut self, items: &[Item], tids: &TidSet, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let (lo, hi) = if self.cfg.pruning.probability_bounds {
            let max_pairwise = self.cfg.max_pairwise_events;
            let pfct = self.cfg.pfct;
            let (lo, hi) = timed(Phase::BoundEval, &mut self.timers, &mut *self.sink, || {
                events.fcp_bounds(pr_f, max_pairwise, Some(pfct))
            });
            self.sink.fcp_bounds(lo, hi);
            if hi <= pfct {
                self.stats.bound_rejected += 1;
                self.sink.prune_fired(PruneKind::BoundReject);
                return None;
            }
            if lo > pfct && hi - lo < DECIDED_WIDTH {
                self.stats.bound_decided += 1;
                self.sink.fcp_evaluated(FcpEvalKind::BoundDecided, 0);
                return Some(self.emit(items, (lo + hi) / 2.0, pr_f));
            }
            (lo, hi)
        } else {
            (0.0, pr_f)
        };
        let fcp = self.compute_fcp(&events, pr_f).clamp(lo, hi);
        (fcp > self.cfg.pfct).then(|| self.emit(items, fcp, pr_f))
    }

    /// Naive checking (the paper's "Naive" baseline): always run
    /// `ApproxFCP`, no bounds.
    pub fn evaluate_naive(&mut self, items: &[Item], tids: &TidSet, pr_f: f64) -> Option<Pfci> {
        let events = self.events_for(items, tids);
        let r = if self.threads > 1 {
            let call_seed = self.rng.next_u64();
            approx_fcp_chunked_traced(
                &events,
                pr_f,
                self.cfg.epsilon,
                self.cfg.delta,
                self.threads,
                call_seed,
                &mut self.timers,
                &mut *self.sink,
            )
        } else {
            approx_fcp_traced(
                &events,
                pr_f,
                self.cfg.epsilon,
                self.cfg.delta,
                &mut self.rng,
                &mut self.timers,
                &mut *self.sink,
            )
        };
        self.stats.fcp_sampled += 1;
        self.stats.samples_drawn += r.samples as u64;
        (r.fcp > self.cfg.pfct).then(|| self.emit(items, r.fcp, pr_f))
    }

    fn compute_fcp(&mut self, events: &NonClosureEvents, pr_f: f64) -> f64 {
        let use_exact = match self.cfg.fcp_method {
            FcpMethod::ExactOnly => true,
            FcpMethod::ApproxOnly | FcpMethod::ApproxAdaptive => false,
            FcpMethod::Auto { exact_cap } => events.len() <= exact_cap,
        };
        if use_exact {
            self.stats.fcp_exact += 1;
            let union = timed(Phase::FcpExact, &mut self.timers, &mut *self.sink, || {
                prob::exact_union_probability(events.len(), |s| events.joint(s))
            });
            self.sink.fcp_evaluated(FcpEvalKind::Exact, 0);
            (pr_f - union).clamp(0.0, pr_f)
        } else {
            let r = if matches!(self.cfg.fcp_method, FcpMethod::ApproxAdaptive) {
                // The stopping rule is inherently sequential (each draw
                // decides whether to continue), so it never chunks.
                approx_fcp_adaptive_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                    &mut self.timers,
                    &mut *self.sink,
                )
            } else if self.threads > 1 {
                let call_seed = self.rng.next_u64();
                approx_fcp_chunked_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    self.threads,
                    call_seed,
                    &mut self.timers,
                    &mut *self.sink,
                )
            } else {
                approx_fcp_traced(
                    events,
                    pr_f,
                    self.cfg.epsilon,
                    self.cfg.delta,
                    &mut self.rng,
                    &mut self.timers,
                    &mut *self.sink,
                )
            };
            self.stats.fcp_sampled += 1;
            self.stats.samples_drawn += r.samples as u64;
            r.fcp
        }
    }

    /// Build the accepted result and notify the sink — the single point
    /// every success path funnels through, so `result_emitted` events are
    /// one-to-one with returned results.
    fn emit(&mut self, items: &[Item], fcp: f64, pr_f: f64) -> Pfci {
        self.sink.result_emitted(items, fcp);
        Pfci {
            items: items.to_vec(),
            fcp,
            frequent_probability: pr_f,
        }
    }
}
