//! Dependency-free runtime metrics: counters, gauges, log-bucketed
//! histograms, a mergeable [`MetricsRegistry`] with JSON snapshot export,
//! and the [`HistogramSink`] adapter that turns the [`crate::trace`]
//! event stream into latency/size distributions.
//!
//! The paper's evaluation (and the survey literature on uncertain FIM)
//! compares algorithms on wall-clock *and* memory; averages alone hide
//! the tails that dominate those comparisons. This module makes the
//! tails first-class:
//!
//! * [`Histogram`] — a log-bucketed histogram over non-negative `f64`
//!   values (seconds, sample counts, probabilities). Buckets grow
//!   geometrically by `2^(1/8)` per bucket, so any reported quantile is
//!   within a relative factor of `2^(1/8) ≈ 1.09` of the exact
//!   sorted-sample quantile (the property tests assert this bound).
//!   Histograms merge exactly (bucket-wise addition), so per-run
//!   distributions aggregate across sweeps without storing samples.
//! * [`MetricsRegistry`] — named counters, gauges and histograms with a
//!   deterministic JSON snapshot ([`MetricsRegistry::to_json`]).
//! * [`HistogramSink`] — a [`MinerSink`] recording per-node latency,
//!   per-phase evaluation cost, `ApproxFCP` samples per call and FCP
//!   bound widths as distributions; composable with
//!   [`crate::trace::Tee`] so it stacks with the JSONL/progress sinks.
//!
//! Nothing here touches the miners: when no sink is attached the usual
//! [`crate::trace::NullSink`] monomorphization applies and the metrics
//! layer costs nothing (the observability tests assert no perturbation).

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

use utdb::Item;

use crate::config::MinerConfig;
use crate::result::MiningOutcome;
use crate::stats::{KernelStats, MinerStats};
use crate::trace::{
    CountingSink, DpDecision, FcpEvalKind, MinerSink, Phase, PruneKind, ShardableSink,
};

/// Sub-buckets per power of two: bucket boundaries grow by `2^(1/8)`.
const SUB_BUCKETS: i64 = 8;
/// Smallest tracked positive value is `2^MIN_EXP` (≈ 0.93 ns as seconds).
const MIN_EXP: i64 = -30;
/// Largest bucket boundary is `2^MAX_EXP` (≈ 1.7e10); larger values clamp
/// into the final bucket (their exact `max` is still tracked).
const MAX_EXP: i64 = 34;
/// Total bucket count.
const NUM_BUCKETS: usize = ((MAX_EXP - MIN_EXP) * SUB_BUCKETS) as usize;

/// The worst-case multiplicative error of a [`Histogram`] quantile
/// against the exact sorted-sample quantile, for values inside the
/// tracked range: one full bucket width, `2^(1/8)`.
pub const QUANTILE_RELATIVE_ERROR: f64 = 1.090_507_732_665_257_7; // 2^(1/8)

/// A mergeable log-bucketed histogram over non-negative `f64` values.
///
/// Records exact `count`/`sum`/`min`/`max`; quantiles come from
/// geometric buckets (`2^(1/8)` growth), so [`Histogram::quantile`] is
/// within a factor [`QUANTILE_RELATIVE_ERROR`] of the exact quantile.
/// Values `≤ 0` land in a dedicated zero bucket; non-finite values are
/// ignored. Values outside `[2^-30, 2^34]` clamp to the end buckets.
#[derive(Clone, PartialEq)]
pub struct Histogram {
    buckets: Box<[u64; NUM_BUCKETS]>,
    zero: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0; NUM_BUCKETS]),
            zero: 0,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        debug_assert!(value > 0.0);
        let pos = (value.log2() - MIN_EXP as f64) * SUB_BUCKETS as f64;
        (pos.floor() as i64).clamp(0, NUM_BUCKETS as i64 - 1) as usize
    }

    /// Geometric midpoint of bucket `i` — the value quantiles report.
    fn bucket_value(i: usize) -> f64 {
        2f64.powf(MIN_EXP as f64 + (i as f64 + 0.5) / SUB_BUCKETS as f64)
    }

    /// Record one value. Non-finite values are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if value <= 0.0 {
            self.zero += 1;
        } else {
            self.buckets[Self::bucket_index(value)] += 1;
        }
    }

    /// Record a [`Duration`] in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact minimum recorded value (`0.0` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value (`0.0` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Mean of recorded values (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// The `q`-quantile (`q ∈ [0, 1]`, nearest-rank on the bucketed
    /// distribution), within a factor [`QUANTILE_RELATIVE_ERROR`] of the
    /// exact sorted-sample quantile. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count - 1) as f64).round() as u64;
        if rank < self.zero {
            return 0.0;
        }
        let mut cumulative = self.zero;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative > rank {
                // The exact value at this rank lies in this bucket, so
                // clamping the representative to the observed range can
                // only improve the estimate.
                return Self::bucket_value(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merge another histogram into this one (exact: bucket-wise sums).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.zero += other.zero;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Snapshot the standard summary statistics.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            sum: self.sum,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish()
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.summary().fmt(f)
    }
}

/// The fixed summary statistics of one [`Histogram`] — what JSON
/// snapshots and `BENCH_*.json` reports carry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Exact minimum.
    pub min: f64,
    /// Exact maximum.
    pub max: f64,
    /// Exact mean.
    pub mean: f64,
    /// Exact sum.
    pub sum: f64,
    /// Median (bucketed).
    pub p50: f64,
    /// 90th percentile (bucketed).
    pub p90: f64,
    /// 95th percentile (bucketed).
    pub p95: f64,
    /// 99th percentile (bucketed).
    pub p99: f64,
}

impl HistogramSummary {
    /// Serialize as one flat JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"sum\":{},\
             \"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{}}}",
            self.count,
            json_f64(self.min),
            json_f64(self.max),
            json_f64(self.mean),
            json_f64(self.sum),
            json_f64(self.p50),
            json_f64(self.p90),
            json_f64(self.p95),
            json_f64(self.p99),
        )
    }
}

impl fmt::Display for HistogramSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "count={} min={:.3e} p50={:.3e} p90={:.3e} p95={:.3e} p99={:.3e} max={:.3e} mean={:.3e}",
            self.count, self.min, self.p50, self.p90, self.p95, self.p99, self.max, self.mean
        )
    }
}

/// Render an `f64` as a JSON number (non-finite values become `0`, which
/// never occurs for values produced by [`Histogram`]).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_owned()
    }
}

/// Minimal JSON string escaping for metric names (which are
/// code-controlled, but defensively escaped anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A named, mergeable collection of counters, gauges and histograms with
/// a deterministic (sorted-key) JSON snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Set the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// The histogram `name`, created empty on first use.
    pub fn histogram(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Current value of counter `name`, if it exists.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Current value of gauge `name`, if it exists.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram `name`, if it exists.
    pub fn get_histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate the counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate the gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Iterate the histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merge another registry into this one: counters add, gauges take
    /// the other's value (last write wins), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, &v) in &other.counters {
            self.add(name, v);
        }
        for (name, &v) in &other.gauges {
            self.set_gauge(name, v);
        }
        for (name, h) in &other.histograms {
            self.histogram(name).merge(h);
        }
    }

    /// Serialize the whole registry as one JSON object:
    ///
    /// ```json
    /// {"counters":{"nodes_visited":42},
    ///  "gauges":{"elapsed_s":0.5},
    ///  "histograms":{"node_latency_s":{"count":41,"min":...,"p99":...}}}
    /// ```
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut first = true;
        for (name, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (name, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", json_escape(name), json_f64(*v));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":{}", json_escape(name), h.summary().to_json());
        }
        out.push_str("}}");
        out
    }

    /// Serialize the registry in the Prometheus text exposition format
    /// (version 0.0.4): counters and gauges as single samples, histograms
    /// as `summary` metrics (p50/p90/p99 `quantile` samples plus `_sum`
    /// and `_count`). Every metric name is prefixed with `prefix` and
    /// sanitized to the Prometheus name charset; the output passes
    /// [`lint_prometheus`].
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = prom_name(prefix, name);
            let _ = writeln!(out, "# HELP {name} Event counter {name}.");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, v) in &self.gauges {
            let name = prom_name(prefix, name);
            let _ = writeln!(out, "# HELP {name} Gauge {name}.");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", prom_f64(*v));
        }
        for (name, h) in &self.histograms {
            let name = prom_name(prefix, name);
            let s = h.summary();
            let _ = writeln!(out, "# HELP {name} Distribution {name}.");
            let _ = writeln!(out, "# TYPE {name} summary");
            for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", prom_f64(v));
            }
            let _ = writeln!(out, "{name}_sum {}", prom_f64(s.sum));
            let _ = writeln!(out, "{name}_count {}", s.count);
        }
        out
    }
}

/// `prefix_name`, restricted to the Prometheus metric-name charset
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`); anything else becomes `_`.
fn prom_name(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + name.len() + 1);
    for (i, c) in format!("{prefix}_{name}").chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' if i > 0 => out.push(c),
            _ => out.push('_'),
        }
    }
    out
}

/// Render an `f64` as a Prometheus sample value.
fn prom_f64(x: f64) -> String {
    if x.is_nan() {
        "NaN".to_owned()
    } else if x == f64::INFINITY {
        "+Inf".to_owned()
    } else if x == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{x}")
    }
}

fn valid_prom_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            matches!(c, 'a'..='z' | 'A'..='Z' | '_' | ':') || (i > 0 && c.is_ascii_digit())
        })
}

fn parse_prom_value(v: &str) -> bool {
    matches!(v, "NaN" | "+Inf" | "-Inf") || v.parse::<f64>().is_ok()
}

/// A minimal linter for the Prometheus text exposition format — enough
/// to catch malformed metric names, bad sample values, broken label
/// syntax, and samples that stray from their most recent `# TYPE`
/// family. Returns the first offense as `Err("line N: …")`.
pub fn lint_prometheus(text: &str) -> Result<(), String> {
    let fail = |n: usize, what: &str, line: &str| Err(format!("line {n}: {what}: {line:?}"));
    let mut family: Option<(String, String)> = None; // (name, type)
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let (Some(name), Some(kind)) = (parts.next(), parts.next()) else {
                        return fail(n, "incomplete TYPE line", line);
                    };
                    if !valid_prom_name(name) {
                        return fail(n, "bad metric name in TYPE", line);
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return fail(n, "unknown metric type", line);
                    }
                    family = Some((name.to_owned(), kind.to_owned()));
                }
                Some("HELP") => {
                    let Some(name) = parts.next() else {
                        return fail(n, "incomplete HELP line", line);
                    };
                    if !valid_prom_name(name) {
                        return fail(n, "bad metric name in HELP", line);
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(open) => {
                let Some(close) = line[open..].find('}') else {
                    return fail(n, "unterminated label block", line);
                };
                let labels = &line[open + 1..open + close];
                for pair in labels.split(',').filter(|p| !p.is_empty()) {
                    let Some((k, v)) = pair.split_once('=') else {
                        return fail(n, "label without '='", line);
                    };
                    if !valid_prom_name(k) {
                        return fail(n, "bad label name", line);
                    }
                    if !(v.len() >= 2 && v.starts_with('"') && v.ends_with('"')) {
                        return fail(n, "unquoted label value", line);
                    }
                }
                (&line[..open], &line[open + close + 1..])
            }
            None => match line.split_once(' ') {
                Some((name, rest)) => (name, rest),
                None => return fail(n, "sample without value", line),
            },
        };
        if !valid_prom_name(name_part) {
            return fail(n, "bad metric name", line);
        }
        let value = rest.trim();
        // An optional timestamp may follow the value.
        let value = value.split_whitespace().next().unwrap_or("");
        if !parse_prom_value(value) {
            return fail(n, "unparseable sample value", line);
        }
        if let Some((fam, kind)) = &family {
            let member = name_part == fam
                || (matches!(kind.as_str(), "summary" | "histogram")
                    && (name_part == format!("{fam}_sum")
                        || name_part == format!("{fam}_count")
                        || (kind == "histogram" && name_part == format!("{fam}_bucket"))));
            if !member {
                return fail(
                    n,
                    "sample does not belong to the preceding TYPE family",
                    line,
                );
            }
        }
    }
    Ok(())
}

/// A [`MinerSink`] recording cost distributions of a mining run:
///
/// | histogram | source |
/// |---|---|
/// | `node_latency_s` | wall-clock between consecutive `node_entered` events |
/// | `node_depth` | itemset size at each enumeration node |
/// | `phase_<name>_s` | per-call duration of each [`Phase`] (`phase_end`) |
/// | `approx_fcp_samples` | samples drawn per sampled FCP evaluation |
/// | `fcp_bound_width` | `upper − lower` of each Lemma 4.4 bound pair |
/// | `freq_prob` | the exact `Pr_F` values the DP returned |
/// | `dp_refusal_magnitude` | magnitude of each refused `TailDp` removal (`dp_decision`) |
///
/// It also embeds a [`CountingSink`], so the counter side of the
/// snapshot reconciles exactly with the run's [`MinerStats`]. Compose it
/// with other sinks via [`crate::trace::Tee`]; extract the result with
/// [`HistogramSink::snapshot`] (or the accessors) after the run.
#[derive(Debug, Clone, Default)]
pub struct HistogramSink {
    /// Event counters re-derived from the stream, [`CountingSink`]-style.
    pub counts: CountingSink,
    /// Kernel-level counters (incremental DP, bound cache, bitmap words),
    /// captured from each finished run's [`MiningOutcome::kernel`] — they
    /// have no per-event trace, so they arrive wholesale at `run_finished`.
    pub kernel: KernelStats,
    last_node: Option<Instant>,
    node_latency: Histogram,
    node_depth: Histogram,
    phase: [Histogram; Phase::COUNT],
    approx_fcp_samples: Histogram,
    fcp_bound_width: Histogram,
    freq_prob: Histogram,
    dp_refusal_magnitude: Histogram,
    pool_span_s: [Histogram; 3],
    pool_workers: [crate::par::WorkerGauges; crate::par::MAX_TRACKED_WORKERS],
    pool_workers_seen: usize,
    event_cache_capacity: u64,
    elapsed: Duration,
    runs: u64,
}

impl HistogramSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distribution of wall-clock gaps between consecutive enumeration
    /// nodes (seconds).
    pub fn node_latency(&self) -> &Histogram {
        &self.node_latency
    }

    /// Distribution of per-call durations of `phase` (seconds).
    pub fn phase_latency(&self, phase: Phase) -> &Histogram {
        &self.phase[phase.index()]
    }

    /// Distribution of Monte-Carlo samples drawn per `ApproxFCP` call.
    pub fn approx_fcp_samples(&self) -> &Histogram {
        &self.approx_fcp_samples
    }

    /// Distribution of FCP bound widths (`upper − lower`, Lemma 4.4).
    pub fn fcp_bound_width(&self) -> &Histogram {
        &self.fcp_bound_width
    }

    /// Distribution of refusal magnitudes across refused `TailDp`
    /// removals (amp-limit decades, row-validation violations).
    pub fn dp_refusal_magnitude(&self) -> &Histogram {
        &self.dp_refusal_magnitude
    }

    /// Distribution of pool span durations of `kind` (seconds), fed by
    /// the post-join [`MinerSink::pool_span`] replay.
    pub fn pool_span_latency(&self, kind: crate::par::PoolSpanKind) -> &Histogram {
        &self.pool_span_s[Self::span_slot(kind)]
    }

    /// Per-worker pool counters (tasks run, steals, idle parks)
    /// accumulated from the span replay; workers past
    /// [`crate::par::MAX_TRACKED_WORKERS`] fold into the last slot.
    pub fn pool_workers(&self) -> &[crate::par::WorkerGauges] {
        &self.pool_workers[..self.pool_workers_seen]
    }

    fn span_slot(kind: crate::par::PoolSpanKind) -> usize {
        match kind {
            crate::par::PoolSpanKind::Task => 0,
            crate::par::PoolSpanKind::Steal => 1,
            crate::par::PoolSpanKind::Idle => 2,
        }
    }

    /// Total wall-clock time of the observed runs.
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of completed runs observed.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Export everything as a [`MetricsRegistry`]: the counter side
    /// mirrors [`MinerStats`] field-for-field, the histogram side carries
    /// the distributions listed in the type docs.
    pub fn snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s: &MinerStats = &self.counts.stats;
        for (name, v) in [
            ("nodes_visited", s.nodes_visited),
            ("superset_pruned", s.superset_pruned),
            ("subset_pruned", s.subset_pruned),
            ("ch_pruned", s.ch_pruned),
            ("freq_pruned", s.freq_pruned),
            ("bound_rejected", s.bound_rejected),
            ("bound_decided", s.bound_decided),
            ("fcp_exact", s.fcp_exact),
            ("fcp_sampled", s.fcp_sampled),
            ("samples_drawn", s.samples_drawn),
            ("freq_prob_evals", s.freq_prob_evals),
            ("results", self.counts.results_emitted),
            ("runs", self.runs),
        ] {
            reg.add(name, v);
        }
        for (name, v) in self.kernel.named() {
            reg.add(name, v);
        }
        for (name, v) in self.counts.audit.named() {
            reg.add(&format!("audit_{name}"), v);
        }
        reg.set_gauge("elapsed_s", self.elapsed.as_secs_f64());
        // Cache health: capacity is configuration (gauge); the hit rate
        // only exists once the bound cache saw at least one lookup.
        reg.set_gauge("event_cache_capacity", self.event_cache_capacity as f64);
        let lookups = self.kernel.bound_cache_hits + self.kernel.bound_cache_misses;
        if lookups > 0 {
            reg.set_gauge(
                "bound_cache_hit_rate",
                self.kernel.bound_cache_hits as f64 / lookups as f64,
            );
        }
        // Pool health from the span replay: per-worker counters plus
        // whole-pool sums, so `--prom` shows scheduler behaviour too.
        let workers = &self.pool_workers[..self.pool_workers_seen];
        if !workers.is_empty() {
            reg.add("pool_tasks", workers.iter().map(|w| w.tasks).sum::<u64>());
            reg.add("pool_steals", workers.iter().map(|w| w.steals).sum::<u64>());
            reg.add("pool_idles", workers.iter().map(|w| w.idles).sum::<u64>());
            reg.set_gauge("pool_workers", workers.len() as f64);
            for (i, w) in workers.iter().enumerate() {
                reg.set_gauge(&format!("pool_worker{i}_tasks"), w.tasks as f64);
                reg.set_gauge(&format!("pool_worker{i}_steals"), w.steals as f64);
                reg.set_gauge(&format!("pool_worker{i}_idles"), w.idles as f64);
            }
        }
        let mut put = |name: &str, h: &Histogram| {
            if !h.is_empty() {
                reg.histogram(name).merge(h);
            }
        };
        put("node_latency_s", &self.node_latency);
        put("node_depth", &self.node_depth);
        for p in Phase::ALL {
            put(&format!("phase_{}_s", p.name()), &self.phase[p.index()]);
        }
        put("approx_fcp_samples", &self.approx_fcp_samples);
        put("fcp_bound_width", &self.fcp_bound_width);
        put("freq_prob", &self.freq_prob);
        put("dp_refusal_magnitude", &self.dp_refusal_magnitude);
        for kind in [
            crate::par::PoolSpanKind::Task,
            crate::par::PoolSpanKind::Steal,
            crate::par::PoolSpanKind::Idle,
        ] {
            put(
                &format!("pool_{}_s", kind.name()),
                &self.pool_span_s[Self::span_slot(kind)],
            );
        }
        reg
    }
}

impl HistogramSink {
    /// Merge another sink's observations into this one: counters via
    /// [`CountingSink::merge`], every distribution bucket-wise via
    /// [`Histogram::merge`] (both exact, associative and commutative),
    /// plus `elapsed`/`runs`. The in-flight `last_node` instant stays
    /// local — cross-shard node gaps are not node latencies.
    pub fn merge(&mut self, other: &HistogramSink) {
        self.counts.merge(&other.counts);
        self.kernel.absorb(&other.kernel);
        self.node_latency.merge(&other.node_latency);
        self.node_depth.merge(&other.node_depth);
        for (mine, theirs) in self.phase.iter_mut().zip(other.phase.iter()) {
            mine.merge(theirs);
        }
        self.approx_fcp_samples.merge(&other.approx_fcp_samples);
        self.fcp_bound_width.merge(&other.fcp_bound_width);
        self.freq_prob.merge(&other.freq_prob);
        self.dp_refusal_magnitude.merge(&other.dp_refusal_magnitude);
        for (mine, theirs) in self.pool_span_s.iter_mut().zip(other.pool_span_s.iter()) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.pool_workers.iter_mut().zip(other.pool_workers.iter()) {
            mine.tasks += theirs.tasks;
            mine.steals += theirs.steals;
            mine.idles += theirs.idles;
        }
        self.pool_workers_seen = self.pool_workers_seen.max(other.pool_workers_seen);
        self.event_cache_capacity = self.event_cache_capacity.max(other.event_cache_capacity);
        self.elapsed += other.elapsed;
        self.runs += other.runs;
    }
}

impl ShardableSink for HistogramSink {
    type Shard = HistogramSink;
    fn make_shard(&self) -> HistogramSink {
        HistogramSink::new()
    }
    fn absorb_shard(&mut self, shard: HistogramSink) {
        self.merge(&shard);
    }
}

impl MinerSink for HistogramSink {
    fn run_started(&mut self, _algo: &str, config: &MinerConfig) {
        // Gaps across run boundaries are not node latencies.
        self.last_node = None;
        self.event_cache_capacity = config.event_cache_capacity as u64;
    }
    fn pool_span(&mut self, span: &crate::par::PoolSpan) {
        let slot = Self::span_slot(span.kind);
        self.pool_span_s[slot].record_duration(span.dur);
        let w = (span.worker as usize).min(crate::par::MAX_TRACKED_WORKERS - 1);
        self.pool_workers_seen = self.pool_workers_seen.max(w + 1);
        let counters = &mut self.pool_workers[w];
        match span.kind {
            crate::par::PoolSpanKind::Task => counters.tasks += 1,
            crate::par::PoolSpanKind::Steal => counters.steals += 1,
            crate::par::PoolSpanKind::Idle => counters.idles += 1,
        }
    }
    fn node_entered(&mut self, depth: usize) {
        self.counts.node_entered(depth);
        self.node_depth.record(depth as f64);
        let now = Instant::now();
        if let Some(prev) = self.last_node.replace(now) {
            self.node_latency.record_duration(now.duration_since(prev));
        }
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        self.counts.prune_fired(kind);
    }
    fn freq_prob_evaluated(&mut self, pr_f: f64) {
        self.counts.freq_prob_evaluated(pr_f);
        self.freq_prob.record(pr_f);
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        self.counts.dp_decision(decision);
        if let Some(magnitude) = decision.magnitude() {
            self.dp_refusal_magnitude.record(magnitude);
        }
    }
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {
        self.fcp_bound_width.record((upper - lower).max(0.0));
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        self.counts.fcp_evaluated(method, samples);
        if method == FcpEvalKind::Sampled {
            self.approx_fcp_samples.record(samples as f64);
        }
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        self.counts.result_emitted(items, fcp);
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        self.counts.phase_end(phase, elapsed);
        self.phase[phase.index()].record_duration(elapsed);
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        self.kernel.absorb(&outcome.kernel);
        self.elapsed += outcome.elapsed;
        self.runs += 1;
        self.last_node = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn filled(values: &[f64]) -> Histogram {
        let mut h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h
    }

    /// The rank rule [`Histogram::quantile`] uses, applied to the exact
    /// sorted samples.
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = (q * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank]
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert!(s.to_json().contains("\"count\":0"));
    }

    #[test]
    fn exact_stats_are_exact() {
        let h = filled(&[1.0, 2.0, 4.0, 8.0]);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 8.0);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.mean(), 3.75);
    }

    #[test]
    fn zero_and_nonfinite_values() {
        let mut h = filled(&[0.0, 0.0, 5.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn quantiles_of_identical_values_hit_the_value() {
        let h = filled(&[0.125; 100]);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q);
            assert!(
                (est / 0.125 - 1.0).abs() < QUANTILE_RELATIVE_ERROR - 1.0 + 1e-9,
                "q={q}: {est}"
            );
        }
    }

    #[test]
    fn out_of_range_values_clamp_but_track_extremes() {
        let h = filled(&[1e-12, 1e12]);
        assert_eq!(h.min(), 1e-12);
        assert_eq!(h.max(), 1e12);
        // Quantiles clamp to the end buckets but never exceed min/max.
        assert!(h.quantile(0.0) >= 1e-12);
        assert!(h.quantile(1.0) <= 1e12);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        // Dyadic values: float sums are exact regardless of merge order.
        let a_vals = [0.125, 0.5, 3.0, 42.0];
        let b_vals = [0.25, 0.25, 7.0];
        let mut merged = filled(&a_vals);
        merged.merge(&filled(&b_vals));
        let mut all: Vec<f64> = a_vals.iter().chain(&b_vals).copied().collect();
        let combined = filled(&all);
        assert_eq!(merged, combined);
        all.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(merged.quantile(q), combined.quantile(q));
        }
    }

    #[test]
    fn registry_basics_and_json_shape() {
        let mut reg = MetricsRegistry::new();
        assert!(reg.is_empty());
        reg.add("nodes", 2);
        reg.add("nodes", 3);
        reg.set_gauge("elapsed_s", 1.5);
        reg.histogram("lat_s").record(0.25);
        assert_eq!(reg.counter("nodes"), Some(5));
        assert_eq!(reg.gauge("elapsed_s"), Some(1.5));
        assert_eq!(reg.get_histogram("lat_s").unwrap().count(), 1);
        let json = reg.to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"nodes\":5"));
        assert!(json.contains("\"elapsed_s\":1.5"));
        assert!(json.contains("\"lat_s\":{\"count\":1"));
    }

    #[test]
    fn registry_merge_semantics() {
        let mut a = MetricsRegistry::new();
        a.add("n", 1);
        a.set_gauge("g", 1.0);
        a.histogram("h").record(1.0);
        let mut b = MetricsRegistry::new();
        b.add("n", 2);
        b.add("m", 7);
        b.set_gauge("g", 9.0);
        b.histogram("h").record(4.0);
        a.merge(&b);
        assert_eq!(a.counter("n"), Some(3));
        assert_eq!(a.counter("m"), Some(7));
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.get_histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("plain_name"), "plain_name");
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn histogram_sink_snapshot_mirrors_counting_sink() {
        let mut sink = HistogramSink::new();
        sink.node_entered(1);
        sink.node_entered(2);
        sink.prune_fired(PruneKind::Superset);
        sink.freq_prob_evaluated(0.75);
        sink.fcp_bounds(0.5, 0.9);
        sink.fcp_evaluated(FcpEvalKind::Sampled, 1234);
        sink.phase_end(Phase::FreqDp, Duration::from_micros(10));
        let reg = sink.snapshot();
        assert_eq!(reg.counter("nodes_visited"), Some(2));
        assert_eq!(reg.counter("superset_pruned"), Some(1));
        assert_eq!(reg.counter("freq_prob_evals"), Some(1));
        assert_eq!(reg.counter("samples_drawn"), Some(1234));
        assert_eq!(reg.get_histogram("node_latency_s").unwrap().count(), 1);
        assert_eq!(reg.get_histogram("node_depth").unwrap().count(), 2);
        assert_eq!(reg.get_histogram("phase_freq_dp_s").unwrap().count(), 1);
        assert_eq!(reg.get_histogram("approx_fcp_samples").unwrap().count(), 1);
        let width = reg.get_histogram("fcp_bound_width").unwrap();
        assert!((width.max() - 0.4).abs() < 1e-12);
        // Empty distributions are omitted from the snapshot.
        assert!(reg.get_histogram("phase_fcp_exact_s").is_none());
    }

    #[test]
    fn pool_spans_surface_as_metrics() {
        use crate::par::{PoolSpan, PoolSpanKind};
        let mut sink = HistogramSink::new();
        // Before any span replay: no pool families at all.
        assert!(sink.snapshot().counter("pool_tasks").is_none());
        let span = |worker, kind| PoolSpan {
            worker,
            task: 0,
            kind,
            start: Instant::now(),
            dur: Duration::from_micros(50),
        };
        sink.pool_span(&span(0, PoolSpanKind::Task));
        sink.pool_span(&span(0, PoolSpanKind::Task));
        sink.pool_span(&span(1, PoolSpanKind::Task));
        sink.pool_span(&span(1, PoolSpanKind::Steal));
        sink.pool_span(&span(1, PoolSpanKind::Idle));
        let reg = sink.snapshot();
        assert_eq!(reg.counter("pool_tasks"), Some(3));
        assert_eq!(reg.counter("pool_steals"), Some(1));
        assert_eq!(reg.counter("pool_idles"), Some(1));
        assert_eq!(reg.gauge("pool_workers"), Some(2.0));
        assert_eq!(reg.gauge("pool_worker0_tasks"), Some(2.0));
        assert_eq!(reg.gauge("pool_worker1_steals"), Some(1.0));
        assert_eq!(reg.get_histogram("pool_task_s").unwrap().count(), 3);
        assert_eq!(reg.get_histogram("pool_steal_s").unwrap().count(), 1);
        // The whole document still lints.
        lint_prometheus(&reg.to_prometheus("pfcim")).unwrap();
        // Merging two sinks adds counters per worker slot.
        let mut other = HistogramSink::new();
        other.pool_span(&span(1, PoolSpanKind::Task));
        sink.merge(&other);
        let reg = sink.snapshot();
        assert_eq!(reg.counter("pool_tasks"), Some(4));
        assert_eq!(reg.gauge("pool_worker1_tasks"), Some(2.0));
    }

    #[test]
    fn cache_gauges_surface_capacity_and_hit_rate() {
        let mut sink = HistogramSink::new();
        sink.run_started("mpfci", &MinerConfig::new(2, 0.8));
        // No lookups yet: capacity is exported, the rate is not.
        let reg = sink.snapshot();
        assert_eq!(reg.gauge("event_cache_capacity"), Some(32.0));
        assert!(reg.gauge("bound_cache_hit_rate").is_none());
        sink.kernel.bound_cache_hits = 3;
        sink.kernel.bound_cache_misses = 1;
        let reg = sink.snapshot();
        assert_eq!(reg.gauge("bound_cache_hit_rate"), Some(0.75));
        lint_prometheus(&reg.to_prometheus("pfcim")).unwrap();
    }

    #[test]
    fn prometheus_export_passes_the_linter() {
        let mut sink = HistogramSink::new();
        sink.node_entered(1);
        sink.node_entered(2);
        sink.prune_fired(PruneKind::Superset);
        sink.freq_prob_evaluated(0.75);
        sink.dp_decision(DpDecision::Incremental);
        sink.dp_decision(DpDecision::ErrTol { measured: 5.5e-8 });
        sink.fcp_evaluated(FcpEvalKind::Sampled, 1234);
        sink.phase_end(Phase::FreqDp, Duration::from_micros(10));
        let text = sink.snapshot().to_prometheus("pfcim");
        lint_prometheus(&text).expect("exporter output must lint clean");
        // Counters carry HELP/TYPE headers and the sample value.
        assert!(text.contains("# TYPE pfcim_nodes_visited counter"));
        assert!(text.contains("pfcim_nodes_visited 2"));
        // The audit counters ride along.
        assert!(text.contains("pfcim_audit_incremental 1"));
        assert!(text.contains("pfcim_audit_err_tol 1"));
        // Histograms export as summaries with quantile labels.
        assert!(text.contains("# TYPE pfcim_node_depth summary"));
        assert!(text.contains("pfcim_node_depth{quantile=\"0.5\"}"));
        assert!(text.contains("pfcim_node_depth_count 2"));
        assert!(text.contains("pfcim_dp_refusal_magnitude_count 1"));
    }

    #[test]
    fn prometheus_names_are_sanitized() {
        assert_eq!(prom_name("pfcim", "node_latency_s"), "pfcim_node_latency_s");
        assert_eq!(
            prom_name("pfcim", "phase fcp-exact"),
            "pfcim_phase_fcp_exact"
        );
        assert!(valid_prom_name(&prom_name("pfcim", "9lives")));
        let mut reg = MetricsRegistry::new();
        reg.add("weird name!", 1);
        reg.set_gauge("inf gauge", f64::INFINITY);
        let text = reg.to_prometheus("pfcim");
        lint_prometheus(&text).expect("sanitized names must lint clean");
        assert!(text.contains("pfcim_weird_name_ 1"));
        assert!(text.contains("pfcim_inf_gauge +Inf"));
    }

    #[test]
    fn prometheus_linter_rejects_malformed_documents() {
        // Unknown type.
        assert!(lint_prometheus("# TYPE foo enum\nfoo 1\n").is_err());
        // Bad metric name in a sample.
        assert!(lint_prometheus("9foo 1\n").is_err());
        // Non-numeric value.
        assert!(lint_prometheus("foo one\n").is_err());
        // Sample outside the declared family.
        assert!(lint_prometheus("# TYPE foo counter\nbar 1\n").is_err());
        // Unclosed label block.
        assert!(lint_prometheus("foo{a=\"b\" 1\n").is_err());
        // _sum/_count only belong to summaries and histograms.
        assert!(lint_prometheus("# TYPE foo counter\nfoo_sum 1\n").is_err());
        assert!(lint_prometheus(
            "# TYPE foo summary\nfoo{quantile=\"0.5\"} 2\nfoo_sum 3\nfoo_count 1\n"
        )
        .is_ok());
        // Errors carry the offending line number.
        let err = lint_prometheus("ok 1\nbad value\n").unwrap_err();
        assert!(err.starts_with("line 2"), "{err}");
    }

    #[test]
    fn histogram_sink_shards_reconcile_to_single_sink_counters() {
        // Drive the same event stream through one sink and through two
        // shards; everything except wall-clock-derived node latencies
        // must match exactly.
        let drive = |sink: &mut HistogramSink, base: u64| {
            sink.node_entered(base as usize % 4 + 1);
            sink.prune_fired(PruneKind::ALL[base as usize % 5]);
            sink.freq_prob_evaluated(0.5);
            sink.fcp_bounds(0.2, 0.8);
            sink.fcp_evaluated(FcpEvalKind::Sampled, 100 + base);
            sink.phase_end(Phase::FreqDp, Duration::from_nanos(10 + base));
        };
        let mut single = HistogramSink::new();
        drive(&mut single, 0);
        drive(&mut single, 1);

        let mut sharded = HistogramSink::new();
        let mut a = sharded.make_shard();
        let mut b = sharded.make_shard();
        drive(&mut a, 0);
        drive(&mut b, 1);
        sharded.absorb_shard(a);
        sharded.absorb_shard(b);

        assert_eq!(single.counts.stats, sharded.counts.stats);
        assert_eq!(single.counts.timers, sharded.counts.timers);
        assert_eq!(single.node_depth, sharded.node_depth);
        assert_eq!(single.approx_fcp_samples, sharded.approx_fcp_samples);
        assert_eq!(single.fcp_bound_width, sharded.fcp_bound_width);
        assert_eq!(single.freq_prob, sharded.freq_prob);
        for p in Phase::ALL {
            assert_eq!(single.phase[p.index()], sharded.phase[p.index()]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Bucketed quantiles stay within the documented relative error
        /// of the exact sorted-sample quantile, for in-range values.
        #[test]
        fn quantiles_track_exact_samples(
            values in proptest::collection::vec(1e-6f64..1e6, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let h = filled(&values);
            let mut sorted = values.clone();
            sorted.sort_by(f64::total_cmp);
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            let ratio = est / exact;
            prop_assert!(
                (1.0 / QUANTILE_RELATIVE_ERROR * (1.0 - 1e-9)
                    ..=QUANTILE_RELATIVE_ERROR * (1.0 + 1e-9))
                    .contains(&ratio),
                "q={} exact={} est={} ratio={}", q, exact, est, ratio
            );
        }

        /// Histogram merge is associative and commutative (bucket counts
        /// are exact; sums may differ only by float rounding).
        #[test]
        fn merge_is_associative(
            a in proptest::collection::vec(1e-6f64..1e6, 0..40),
            b in proptest::collection::vec(1e-6f64..1e6, 0..40),
            c in proptest::collection::vec(1e-6f64..1e6, 0..40),
        ) {
            let (ha, hb, hc) = (filled(&a), filled(&b), filled(&c));
            // (a ∪ b) ∪ c
            let mut left = ha.clone();
            left.merge(&hb);
            left.merge(&hc);
            // a ∪ (b ∪ c)
            let mut bc = hb.clone();
            bc.merge(&hc);
            let mut right = ha.clone();
            right.merge(&bc);
            prop_assert_eq!(left.count(), right.count());
            prop_assert_eq!(left.min(), right.min());
            prop_assert_eq!(left.max(), right.max());
            prop_assert!((left.sum() - right.sum()).abs() <= left.sum().abs() * 1e-12 + 1e-12);
            for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
                prop_assert_eq!(left.quantile(q), right.quantile(q));
            }
        }
    }
}
