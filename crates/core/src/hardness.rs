//! The #P-hardness reduction of Theorem 3.1, made executable.
//!
//! Computing the closed probability of an itemset is #P-hard, by
//! reduction from counting satisfying assignments of a monotone DNF
//! formula (#MDNF). The reduction (the paper's Table VI construction):
//!
//! * one transaction `T_j` per Boolean variable `v_j`, probability ½;
//! * a designated item `X` in every transaction;
//! * one item `e_i` per clause `C_i`, with `e_i ∈ T_j` iff `v_j` does
//!   **not** appear in `C_i`.
//!
//! Mapping `v_j = true ⟺ T_j absent`, an assignment satisfies clause
//! `C_i` exactly when `e_i` occurs in every *present* transaction — i.e.
//! when `X` is not closed in the world. Hence
//! `#satisfying = 2^m · Pr{X not closed}`, and a closed-probability
//! oracle would count DNF solutions. The tests verify the identity by
//! brute force on both sides.

use utdb::{Item, ItemDictionary, PossibleWorlds, UncertainDatabase, UncertainTransaction};

/// A monotone DNF formula: a disjunction of clauses, each a conjunction of
/// (positive) variables, indices in `0..num_vars`.
#[derive(Debug, Clone)]
pub struct MonotoneDnf {
    /// Number of Boolean variables.
    pub num_vars: usize,
    /// Clauses as sorted variable-index lists.
    pub clauses: Vec<Vec<usize>>,
}

impl MonotoneDnf {
    /// Construct, validating and normalizing clause variable lists.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range variables or empty clauses.
    pub fn new(num_vars: usize, clauses: Vec<Vec<usize>>) -> Self {
        let mut normalized = Vec::with_capacity(clauses.len());
        for mut clause in clauses {
            assert!(!clause.is_empty(), "empty clause");
            clause.sort_unstable();
            clause.dedup();
            assert!(
                clause.iter().all(|&v| v < num_vars),
                "variable out of range"
            );
            normalized.push(clause);
        }
        Self {
            num_vars,
            clauses: normalized,
        }
    }

    /// The running example of the paper's proof:
    /// `F = (v1∧v2∧v3) ∨ (v1∧v2∧v4) ∨ (v2∧v3∧v4)` over four variables.
    pub fn paper_example() -> Self {
        Self::new(4, vec![vec![0, 1, 2], vec![0, 1, 3], vec![1, 2, 3]])
    }

    /// Does `assignment` (bit `j` = value of `v_j`) satisfy the formula?
    pub fn satisfied_by(&self, assignment: u64) -> bool {
        self.clauses
            .iter()
            .any(|c| c.iter().all(|&v| assignment >> v & 1 == 1))
    }

    /// Count satisfying assignments by brute force (the quantity that is
    /// #P-complete to compute in general).
    ///
    /// # Panics
    ///
    /// Panics beyond 24 variables.
    pub fn count_satisfying(&self) -> u64 {
        assert!(self.num_vars <= 24, "brute-force cap");
        (0u64..1 << self.num_vars)
            .filter(|&a| self.satisfied_by(a))
            .count() as u64
    }

    /// Build the reduction database. Returns the database and the
    /// designated itemset element `X` (always item 0; clause items `e_i`
    /// are items `1..=n`).
    pub fn to_reduction_database(&self) -> (UncertainDatabase, Item) {
        let mut dict = ItemDictionary::new();
        let x = dict.intern("X");
        let clause_items: Vec<Item> = (0..self.clauses.len())
            .map(|i| dict.intern(&format!("e{}", i + 1)))
            .collect();
        let mut transactions = Vec::with_capacity(self.num_vars);
        for var in 0..self.num_vars {
            let mut items = vec![x];
            for (ci, clause) in self.clauses.iter().enumerate() {
                if !clause.contains(&var) {
                    items.push(clause_items[ci]);
                }
            }
            transactions.push(UncertainTransaction::new(items, 0.5));
        }
        (UncertainDatabase::new(transactions, dict), x)
    }
}

/// Exact closed probability `Pr_C(X)` (Definition 3.6) by possible-world
/// enumeration — the oracle the reduction shows is #P-hard to realize in
/// polynomial time. Uses the paper's convention that an itemset absent
/// from a world is not closed there.
pub fn closed_probability_by_worlds(db: &UncertainDatabase, itemset: &[Item]) -> f64 {
    PossibleWorlds::new(db)
        .filter(|&(mask, _)| PossibleWorlds::is_closed_in_world(db, mask, itemset))
        .map(|(_, p)| p)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_reduction_shape_matches_table_vi() {
        let dnf = MonotoneDnf::paper_example();
        let (db, x) = dnf.to_reduction_database();
        assert_eq!(db.len(), 4);
        // Table VI: T1 = {X, e3}, T2 = {X}, T3 = {X, e2}, T4 = {X, e1}.
        let rendered: Vec<String> = db
            .transactions()
            .iter()
            .map(|t| db.render(t.items()))
            .collect();
        assert_eq!(rendered, vec!["{X, e3}", "{X}", "{X, e2}", "{X, e1}"]);
        assert!(db.transactions().iter().all(|t| t.probability() == 0.5));
        assert!(db.transactions().iter().all(|t| t.contains(x)));
    }

    #[test]
    fn reduction_identity_on_paper_example() {
        let dnf = MonotoneDnf::paper_example();
        let (db, x) = dnf.to_reduction_database();
        let n = dnf.count_satisfying();
        let pr_not_closed = 1.0 - closed_probability_by_worlds(&db, &[x]);
        let expected = n as f64 / (1u64 << dnf.num_vars) as f64;
        assert!(
            (pr_not_closed - expected).abs() < 1e-12,
            "{pr_not_closed} vs {expected} (N = {n})"
        );
    }

    #[test]
    fn reduction_identity_on_random_formulas() {
        use rand::rngs::SmallRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(31);
        for _ in 0..20 {
            let num_vars = 2 + rng.random_range(0..5usize);
            let num_clauses = 1 + rng.random_range(0..4usize);
            let clauses: Vec<Vec<usize>> = (0..num_clauses)
                .map(|_| {
                    let len = 1 + rng.random_range(0..num_vars);
                    let mut c: Vec<usize> =
                        (0..len).map(|_| rng.random_range(0..num_vars)).collect();
                    c.sort_unstable();
                    c.dedup();
                    c
                })
                .collect();
            let dnf = MonotoneDnf::new(num_vars, clauses);
            let (db, x) = dnf.to_reduction_database();
            let n = dnf.count_satisfying();
            let pr_not_closed = 1.0 - closed_probability_by_worlds(&db, &[x]);
            let expected = n as f64 / (1u64 << num_vars) as f64;
            assert!(
                (pr_not_closed - expected).abs() < 1e-10,
                "vars={num_vars} formula={:?}: {pr_not_closed} vs {expected}",
                dnf.clauses
            );
        }
    }

    #[test]
    fn monotonicity_of_satisfaction() {
        // Flipping a variable to true never unsatisfies a monotone DNF.
        let dnf = MonotoneDnf::paper_example();
        for a in 0u64..16 {
            if dnf.satisfied_by(a) {
                for v in 0..4 {
                    assert!(dnf.satisfied_by(a | (1 << v)));
                }
            }
        }
    }

    #[test]
    fn count_satisfying_of_paper_example() {
        // Hand count: assignments with >= one clause fully true.
        let dnf = MonotoneDnf::paper_example();
        // v1v2v3, v1v2v4, v2v3v4, v1v2v3v4 -> exactly those four supersets
        // patterns; enumerate to be sure.
        assert_eq!(dnf.count_satisfying(), 4);
    }

    #[test]
    #[should_panic(expected = "empty clause")]
    fn rejects_empty_clause() {
        MonotoneDnf::new(3, vec![vec![]]);
    }
}
