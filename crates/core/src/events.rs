//! The family of *frequent non-closure events* of an itemset.
//!
//! For an itemset `X` with supporting tuples `T(X)` and a co-occurring
//! item `e ∉ X`, the event (Definition 4.1)
//!
//! ```text
//! C_e  =  "every tuple of T(X) \ T(X∪e) is absent"  ∧
//!         "at least min_sup tuples of T(X∪e) are present"
//! ```
//!
//! says that `X` is frequent but its support is matched by the superset
//! `X∪e`. The frequent non-closed probability is `Pr(∪_e C_e)` and
//!
//! ```text
//! Pr_FC(X) = Pr_F(X) − Pr(∪_e C_e).
//! ```
//!
//! Because the two conjuncts of `C_e` touch disjoint tuples,
//!
//! ```text
//! Pr(∧_{e∈S} C_e) = Π_{t ∈ T(X)\T(X∪S)} (1 − p_t) · Pr{ sup(X∪S) ≥ min_sup },
//! ```
//!
//! which yields singleton/pairwise probabilities for the Lemma 4.4 bounds,
//! arbitrary joints for exact inclusion–exclusion, and conditional world
//! samplers for the Karp–Luby `ApproxFCP` estimator. Only the tuples of
//! `T(X)` matter — every event is measurable with respect to them — so all
//! computation happens over `k = |T(X)|` *positions*, not the whole
//! database.

use std::cell::RefCell;
use std::rc::Rc;

use prob::cond_sample::ConditionalBernoulliSampler;
use prob::dnf::UnionEventSystem;
use prob::poisson_binomial::tail_at_least_with;
use prob::union_bounds::PairwiseUnionBounds;
use rand::{Rng, RngExt};
use utdb::{Item, TidBitmap, UncertainDatabase};

/// One non-closure event `C_e`.
#[derive(Debug, Clone)]
struct NcEvent {
    /// The extension item.
    item: Item,
    /// Positions of `T(X∪e)` within `T(X)` (universe `k`).
    mask: TidBitmap,
    /// Existential probabilities at the mask positions, ascending.
    mask_probs: Vec<f64>,
    /// `Pr(C_e)`: the absence factor `Π_{p ∉ mask} (1 − probs[p])`
    /// times `Pr{ sup(X∪e) ≥ min_sup }`.
    prob: f64,
}

/// The complete family of non-closure events of one itemset.
pub struct NonClosureEvents {
    /// Existential probabilities of `T(X)`, position-indexed.
    probs: Vec<f64>,
    min_sup: usize,
    /// Events with strictly positive probability (zero-probability events
    /// contribute nothing to any union, joint, bound or sample).
    events: Vec<NcEvent>,
    /// Total `Pr(C_e)` mass of the events (kept for diagnostics).
    total_mass: f64,
    /// Extension items examined at construction — the paper's
    /// `k = m − |X|`, which sizes the `ApproxFCP` sample budget.
    considered: usize,
    /// Lazily built conditional samplers, one per event.
    samplers: RefCell<Vec<Option<Rc<ConditionalBernoulliSampler>>>>,
    /// Scratch for joint computations.
    scratch: RefCell<JointScratch>,
}

#[derive(Default)]
struct JointScratch {
    probs: Vec<f64>,
    dp: Vec<f64>,
    mask: Option<TidBitmap>,
}

/// Shared event constructor: the mask / absence-factor / tail computation
/// both [`NonClosureEvents::build`] and [`EventTable::build`] run per
/// item. Returns `None` when `Pr(C_e) = 0`.
///
/// `full_tail` caches `Pr{sup ≥ min_sup}` over *all* positions, shared by
/// every item whose tid-set covers `T(X)` entirely (in particular every
/// item of `X` itself) — those events differ only in their label.
#[allow(clippy::too_many_arguments)]
fn event_for_item(
    db: &UncertainDatabase,
    positions: &[usize],
    probs: &[f64],
    item: Item,
    min_sup: usize,
    dp_scratch: &mut [f64],
    full_tail: &mut Option<f64>,
) -> Option<NcEvent> {
    let k = positions.len();
    let item_tids = db.bitmap_of(item);
    let mut mask = TidBitmap::new(k);
    let mut mask_probs = Vec::new();
    let mut absent_factor = 1.0f64;
    for (pos, &tid) in positions.iter().enumerate() {
        if item_tids.contains(tid) {
            mask.insert(pos);
            mask_probs.push(probs[pos]);
        } else {
            absent_factor *= 1.0 - probs[pos];
        }
    }
    if mask_probs.len() < min_sup || absent_factor == 0.0 {
        return None; // Pr(C_e) = 0
    }
    let tail = if mask_probs.len() == k {
        *full_tail.get_or_insert_with(|| tail_at_least_with(&mask_probs, min_sup, dp_scratch))
    } else {
        tail_at_least_with(&mask_probs, min_sup, dp_scratch)
    };
    let prob = absent_factor * tail;
    if prob <= 0.0 {
        return None;
    }
    Some(NcEvent {
        item,
        mask,
        mask_probs,
        prob,
    })
}

impl NonClosureEvents {
    /// Build the event family for the itemset with supporting tuples
    /// `x_tids`, considering `extension_items` (every item `e ∉ X`; items
    /// not co-occurring with `X` are skipped automatically since their
    /// event has probability 0 for `min_sup ≥ 1`).
    pub fn build(
        db: &UncertainDatabase,
        x_tids: &TidBitmap,
        extension_items: impl IntoIterator<Item = Item>,
        min_sup: usize,
    ) -> Self {
        let min_sup = min_sup.max(1);
        let positions: Vec<usize> = x_tids.iter().collect();
        let probs: Vec<f64> = positions.iter().map(|&tid| db.probability(tid)).collect();
        let mut dp_scratch = vec![0.0f64; min_sup + 1];
        let mut full_tail = None;

        let mut events = Vec::new();
        let mut considered = 0usize;
        for item in extension_items {
            considered += 1;
            if let Some(event) = event_for_item(
                db,
                &positions,
                &probs,
                item,
                min_sup,
                &mut dp_scratch,
                &mut full_tail,
            ) {
                events.push(event);
            }
        }
        Self::from_parts(probs, min_sup, events, considered)
    }

    /// Assemble a family from already-built events (shared by
    /// [`NonClosureEvents::build`] and [`EventTable::family_excluding`]).
    /// The total mass is summed in event order, so families with equal
    /// event lists are bitwise identical however they were produced.
    fn from_parts(
        probs: Vec<f64>,
        min_sup: usize,
        events: Vec<NcEvent>,
        considered: usize,
    ) -> Self {
        let total_mass = events.iter().map(|e| e.prob).sum();
        let samplers = RefCell::new(vec![None; events.len()]);
        Self {
            probs,
            min_sup,
            events,
            total_mass,
            considered,
            samplers,
            scratch: RefCell::new(JointScratch::default()),
        }
    }

    /// Number of extension items examined at construction (the paper's
    /// `k = m − |X|`); at least the number of retained events.
    pub fn considered_items(&self) -> usize {
        self.considered
    }

    /// Number of retained (positive-probability) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no extension can ever tie `X`'s support — then
    /// `Pr_FC(X) = Pr_F(X)` exactly.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of positions (`k = |T(X)|`).
    pub fn num_positions(&self) -> usize {
        self.probs.len()
    }

    /// Total singleton mass `Σ Pr(C_e)`.
    pub fn total_mass(&self) -> f64 {
        self.total_mass
    }

    /// The extension item of event `i`.
    pub fn item(&self, i: usize) -> Item {
        self.events[i].item
    }

    /// `Pr(∧_{i∈subset} C_i)` for a sorted index subset.
    ///
    /// The conjunction forces every position outside the mask intersection
    /// absent and at least `min_sup` present inside it.
    pub fn joint(&self, subset: &[usize]) -> f64 {
        match subset {
            [] => 1.0,
            [i] => self.events[*i].prob,
            [first, rest @ ..] => {
                let mut scratch = self.scratch.borrow_mut();
                let scratch = &mut *scratch;
                let mask = scratch
                    .mask
                    .get_or_insert_with(|| self.events[*first].mask.clone());
                mask.clone_from(&self.events[*first].mask);
                for &i in rest {
                    mask.and_assign(&self.events[i].mask);
                }
                scratch.probs.clear();
                let mut absent_factor = 1.0f64;
                for (pos, &p) in self.probs.iter().enumerate() {
                    if mask.contains(pos) {
                        scratch.probs.push(p);
                    } else {
                        absent_factor *= 1.0 - p;
                    }
                }
                if scratch.probs.len() < self.min_sup || absent_factor == 0.0 {
                    return 0.0;
                }
                if scratch.dp.len() < self.min_sup + 1 {
                    scratch.dp.resize(self.min_sup + 1, 0.0);
                }
                absent_factor * tail_at_least_with(&scratch.probs, self.min_sup, &mut scratch.dp)
            }
        }
    }

    /// Lemma 4.4 bounds on `Pr_FC(X) = pr_f − Pr(∪ C_e)` as
    /// `(lower, upper)`.
    ///
    /// Tiered for cost: the union bound `Σ Pr(C_e)` and the max-singleton
    /// bound need no pairwise joints; when they cannot already decide
    /// against `decision_threshold` (pass `pfct`; pass `None` to force the
    /// full computation), the de Caen / Kwerel bounds are evaluated over
    /// the `max_pairwise` highest-probability events with the dropped
    /// mass folded soundly into the upper union bound.
    pub fn fcp_bounds(
        &self,
        pr_f: f64,
        max_pairwise: usize,
        decision_threshold: Option<f64>,
    ) -> (f64, f64) {
        if self.events.is_empty() {
            return (pr_f, pr_f);
        }
        let s1 = self.total_mass;
        let max_single = self.events.iter().map(|e| e.prob).fold(0.0f64, f64::max);
        // Cheap sandwich: max_single ≤ Pr(∪) ≤ min(S1, 1).
        let mut lower_fc = (pr_f - s1.min(1.0)).max(0.0);
        let mut upper_fc = (pr_f - max_single).max(0.0);
        if let Some(threshold) = decision_threshold {
            if upper_fc <= threshold || lower_fc > threshold {
                return (lower_fc, upper_fc);
            }
        }
        // Pairwise refinement over the heaviest events.
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by(|&a, &b| {
            self.events[b]
                .prob
                .partial_cmp(&self.events[a].prob)
                .expect("probabilities are not NaN")
        });
        order.truncate(max_pairwise.max(1));
        let dropped: f64 = s1 - order.iter().map(|&i| self.events[i].prob).sum::<f64>();
        let mut bounds =
            PairwiseUnionBounds::new(order.iter().map(|&i| self.events[i].prob).collect())
                .with_dropped_mass(dropped.max(0.0));
        for (a, &i) in order.iter().enumerate() {
            for (b, &j) in order.iter().enumerate().skip(a + 1) {
                let joint = if i < j {
                    self.joint(&[i, j])
                } else {
                    self.joint(&[j, i])
                };
                // Guard against DP rounding pushing the joint a hair above
                // a marginal.
                let cap = self.events[i].prob.min(self.events[j].prob);
                bounds.set_pair(a, b, joint.min(cap));
            }
        }
        lower_fc = lower_fc.max((pr_f - bounds.upper()).max(0.0));
        upper_fc = upper_fc.min((pr_f - bounds.lower()).max(0.0));
        (lower_fc, upper_fc)
    }

    fn sampler(&self, i: usize) -> Rc<ConditionalBernoulliSampler> {
        if let Some(s) = &self.samplers.borrow()[i] {
            return Rc::clone(s);
        }
        let event = &self.events[i];
        let s = Rc::new(ConditionalBernoulliSampler::new(
            event.mask_probs.clone(),
            self.min_sup,
        ));
        self.samplers.borrow_mut()[i] = Some(Rc::clone(&s));
        s
    }
}

/// Outcome of the naive world-sampling estimator.
#[derive(Debug, Clone, Copy)]
pub struct NaiveSampleEstimate {
    /// Estimated `Pr{X is frequent closed}` (NOT the union term).
    pub fcp: f64,
    /// Worlds sampled.
    pub samples: usize,
}

impl NonClosureEvents {
    /// The paper's *naive sampling method* (Section IV.B.4): sample `n`
    /// unconditioned possible worlds (restricted to `T(X)`, which is all
    /// that matters) and return the fraction in which `X` is a frequent
    /// closed itemset.
    ///
    /// Unlike [`crate::fcp::approx_fcp`] this estimates the FCP directly
    /// rather than the non-closure union, so its *relative* accuracy on
    /// rare events is poor and — the paper's criticism — "we cannot know
    /// the exact number of samplings that we need to run before all
    /// samplings end": there is no a-priori `n` giving an `(ε, δ)`
    /// relative-error guarantee. Kept as the baseline the coverage
    /// algorithm is measured against.
    pub fn naive_sampling_fcp<R: Rng + ?Sized>(
        &self,
        samples: usize,
        rng: &mut R,
    ) -> NaiveSampleEstimate {
        let k = self.probs.len();
        let mut hits = 0usize;
        for _ in 0..samples {
            // Draw the world restricted to T(X).
            let mut present = TidBitmap::new(k);
            let mut count = 0usize;
            for (pos, &p) in self.probs.iter().enumerate() {
                if rng.random::<f64>() < p {
                    present.insert(pos);
                    count += 1;
                }
            }
            if count < self.min_sup {
                continue;
            }
            // X is closed in the world iff no extension covers every
            // present supporting transaction.
            let tied = self
                .events
                .iter()
                .any(|event| present.is_subset(&event.mask));
            hits += !tied as usize;
        }
        NaiveSampleEstimate {
            fcp: hits as f64 / samples.max(1) as f64,
            samples,
        }
    }
}

impl UnionEventSystem for NonClosureEvents {
    /// A sampled world, restricted to the positions of `T(X)`: the set of
    /// *present* positions.
    type World = TidBitmap;

    fn num_events(&self) -> usize {
        self.events.len()
    }

    fn event_prob(&self, i: usize) -> f64 {
        self.events[i].prob
    }

    fn sample_world_given(&self, i: usize, rng: &mut dyn Rng) -> TidBitmap {
        let event = &self.events[i];
        let sampler = self.sampler(i);
        let mut draws = Vec::with_capacity(event.mask_probs.len());
        sampler.sample_into(rng, &mut draws);
        // Positions outside the mask are forced absent by C_i; map the
        // conditional draws back onto mask positions.
        let mut world = TidBitmap::new(self.probs.len());
        for (draw_idx, pos) in event.mask.iter().enumerate() {
            if draws[draw_idx] {
                world.insert(pos);
            }
        }
        world
    }

    fn world_satisfies(&self, world: &TidBitmap, j: usize) -> bool {
        let event = &self.events[j];
        world.is_subset(&event.mask) && world.count() >= self.min_sup
    }
}

/// A `Sync` sampling view over a [`NonClosureEvents`] family.
///
/// [`NonClosureEvents`] keeps interior-mutable caches (`RefCell`/`Rc`
/// lazy samplers, joint scratch) and therefore cannot be shared across
/// the worker threads of chunked `ApproxFCP`. This view borrows the
/// plain event data and *eagerly* builds one owned
/// [`ConditionalBernoulliSampler`] per event, so it contains no interior
/// mutability at all and `&SampleView` crosses threads freely.
///
/// Its [`UnionEventSystem`] implementation draws bit-identically to the
/// parent family given an equal RNG state.
pub struct SampleView<'a> {
    events: &'a [NcEvent],
    samplers: Vec<ConditionalBernoulliSampler>,
    num_positions: usize,
    min_sup: usize,
}

impl NonClosureEvents {
    /// Build a thread-shareable sampling view (see [`SampleView`]).
    pub fn sample_view(&self) -> SampleView<'_> {
        SampleView {
            events: &self.events,
            samplers: self
                .events
                .iter()
                .map(|e| ConditionalBernoulliSampler::new(e.mask_probs.clone(), self.min_sup))
                .collect(),
            num_positions: self.probs.len(),
            min_sup: self.min_sup,
        }
    }
}

impl UnionEventSystem for SampleView<'_> {
    type World = TidBitmap;

    fn num_events(&self) -> usize {
        self.events.len()
    }

    fn event_prob(&self, i: usize) -> f64 {
        self.events[i].prob
    }

    fn sample_world_given(&self, i: usize, rng: &mut dyn Rng) -> TidBitmap {
        let event = &self.events[i];
        let mut draws = Vec::with_capacity(event.mask_probs.len());
        self.samplers[i].sample_into(rng, &mut draws);
        let mut world = TidBitmap::new(self.num_positions);
        for (draw_idx, pos) in event.mask.iter().enumerate() {
            if draws[draw_idx] {
                world.insert(pos);
            }
        }
        world
    }

    fn world_satisfies(&self, world: &TidBitmap, j: usize) -> bool {
        let event = &self.events[j];
        world.is_subset(&event.mask) && world.count() >= self.min_sup
    }
}

/// A memoizable *superset* of a non-closure event family: one entry per
/// database item (positive-probability events only), built once for a
/// tid-set `T` and reusable for **every** itemset `X` with `T(X) = T`.
///
/// The per-event computation depends only on `(T, e, min_sup)` — never on
/// `X` itself — so two itemsets with identical supporting tuples (exactly
/// the situation subset pruning exploits) share all of it. The evaluator
/// keys a small LRU of these tables by tid-set fingerprint;
/// [`EventTable::family_excluding`] then projects the table onto a
/// concrete `X` by dropping `X`'s own items, reproducing
/// [`NonClosureEvents::build`] bit-for-bit.
pub struct EventTable {
    /// The supporting tuples the table was built for.
    tids: TidBitmap,
    /// Existential probabilities of `tids`, position-indexed.
    probs: Vec<f64>,
    min_sup: usize,
    /// Positive-probability events for ALL items, ascending item order.
    entries: Vec<NcEvent>,
    /// Items examined (= the database's item-id range).
    considered: usize,
}

impl EventTable {
    /// Build the all-items event table for the supporting tuples `tids`.
    pub fn build(db: &UncertainDatabase, tids: &TidBitmap, min_sup: usize) -> Self {
        let min_sup = min_sup.max(1);
        let positions: Vec<usize> = tids.iter().collect();
        let probs: Vec<f64> = positions.iter().map(|&tid| db.probability(tid)).collect();
        let mut dp_scratch = vec![0.0f64; min_sup + 1];
        let mut full_tail = None;
        let considered = db.num_items();
        let entries = (0..considered as u32)
            .filter_map(|id| {
                event_for_item(
                    db,
                    &positions,
                    &probs,
                    Item(id),
                    min_sup,
                    &mut dp_scratch,
                    &mut full_tail,
                )
            })
            .collect();
        Self {
            tids: tids.clone(),
            probs,
            min_sup,
            entries,
            considered,
        }
    }

    /// The tid-set the table was built for — callers verify full equality
    /// on fingerprint-keyed cache hits.
    pub fn tids(&self) -> &TidBitmap {
        &self.tids
    }

    /// The support threshold the table was built for.
    pub fn min_sup(&self) -> usize {
        self.min_sup
    }

    /// Project the table onto the itemset whose items are `exclude`
    /// (sorted or not): the family of every *other* item's event.
    ///
    /// Produces exactly what `NonClosureEvents::build(db, tids, all items
    /// except exclude, min_sup)` would — same events, same order, same
    /// floats — because every entry was computed by the same shared
    /// constructor and item order is preserved.
    pub fn family_excluding(&self, exclude: &[Item]) -> NonClosureEvents {
        let events: Vec<NcEvent> = self
            .entries
            .iter()
            .filter(|e| !exclude.contains(&e.item))
            .cloned()
            .collect();
        NonClosureEvents::from_parts(
            self.probs.clone(),
            self.min_sup,
            events,
            self.considered - exclude.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utdb::PossibleWorlds;

    fn table2() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
        ])
    }

    fn items(db: &UncertainDatabase, s: &str) -> Vec<Item> {
        s.split_whitespace()
            .map(|x| db.dictionary().get(x).unwrap())
            .collect()
    }

    fn family_for(db: &UncertainDatabase, x: &[Item], min_sup: usize) -> NonClosureEvents {
        let tids = db.tidset_of_itemset(x).into_bitmap();
        let ext = (0..db.num_items() as u32)
            .map(Item)
            .filter(|i| !x.contains(i));
        NonClosureEvents::build(db, &tids, ext, min_sup)
    }

    /// Oracle: Pr(C_e) measured by world enumeration.
    fn brute_event_prob(db: &UncertainDatabase, x: &[Item], e: Item, min_sup: usize) -> f64 {
        let mut xe = x.to_vec();
        xe.push(e);
        xe.sort_unstable();
        let x_tids = db.tidset_of_itemset(x);
        let xe_tids = db.tidset_of_itemset(&xe);
        PossibleWorlds::new(db)
            .filter(|&(mask, _)| {
                let diff_absent = x_tids
                    .difference(&xe_tids)
                    .iter()
                    .all(|tid| mask >> tid & 1 == 0);
                let sup_xe = xe_tids.iter().filter(|&t| mask >> t & 1 == 1).count();
                diff_absent && sup_xe >= min_sup
            })
            .map(|(_, p)| p)
            .sum()
    }

    #[test]
    fn singleton_probabilities_match_world_oracle() {
        let db = table2();
        for x_s in ["a b c", "a b c d", "d"] {
            let x = items(&db, x_s);
            for min_sup in 1..=3 {
                let fam = family_for(&db, &x, min_sup);
                for i in 0..fam.len() {
                    let e = fam.item(i);
                    let oracle = brute_event_prob(&db, &x, e, min_sup);
                    assert!(
                        (fam.event_prob(i) - oracle).abs() < 1e-10,
                        "X={x_s} e={e} ms={min_sup}: {} vs {oracle}",
                        fam.event_prob(i)
                    );
                }
            }
        }
    }

    #[test]
    fn abc_family_is_the_single_d_event() {
        // For X = {a,b,c} at min_sup 2 the only co-occurring extension is
        // d: Pr(C_d) = (1-0.6)(1-0.7) * Pr{sup(abcd) >= 2} = .12 * .81.
        let db = table2();
        let fam = family_for(&db, &items(&db, "a b c"), 2);
        assert_eq!(fam.len(), 1);
        assert!((fam.event_prob(0) - 0.12 * 0.81).abs() < 1e-12);
        // Pr_FC(abc) = Pr_F - Pr(C_d) = 0.9726 - 0.0972 = 0.8754.
        let (lo, hi) = fam.fcp_bounds(0.9726, 16, None);
        assert!(lo <= 0.8754 + 1e-9 && 0.8754 <= hi + 1e-9);
        assert!((hi - lo) < 1e-9, "single event: bounds are tight");
    }

    #[test]
    fn maximal_itemset_has_empty_family() {
        let db = table2();
        let fam = family_for(&db, &items(&db, "a b c d"), 2);
        assert!(fam.is_empty());
        let (lo, hi) = fam.fcp_bounds(0.81, 16, None);
        assert_eq!((lo, hi), (0.81, 0.81));
    }

    #[test]
    fn joints_match_world_oracle() {
        // For X = {d}: extensions a, b, c all cover T(d) fully; their
        // joints must match direct enumeration.
        let db = table2();
        let x = items(&db, "d");
        let min_sup = 1;
        let fam = family_for(&db, &x, min_sup);
        assert!(fam.len() >= 2);
        let x_tids = db.tidset_of_itemset(&x);
        for i in 0..fam.len() {
            for j in (i + 1)..fam.len() {
                let (ei, ej) = (fam.item(i), fam.item(j));
                let oracle: f64 = PossibleWorlds::new(&db)
                    .filter(|&(mask, _)| {
                        let mut sup = 0usize;
                        let mut ok = true;
                        for tid in x_tids.iter() {
                            let present = mask >> tid & 1 == 1;
                            let has_both =
                                db.tidset_of(ei).contains(tid) && db.tidset_of(ej).contains(tid);
                            if present && !has_both {
                                ok = false;
                                break;
                            }
                            sup += (present && has_both) as usize;
                        }
                        ok && sup >= min_sup
                    })
                    .map(|(_, p)| p)
                    .sum();
                let joint = fam.joint(&[i, j]);
                assert!(
                    (joint - oracle).abs() < 1e-10,
                    "C_{ei} ∧ C_{ej}: {joint} vs {oracle}"
                );
            }
        }
    }

    #[test]
    fn joint_of_empty_subset_is_one_and_singleton_is_event_prob() {
        let db = table2();
        let fam = family_for(&db, &items(&db, "d"), 1);
        assert_eq!(fam.joint(&[]), 1.0);
        for i in 0..fam.len() {
            assert_eq!(fam.joint(&[i]), fam.event_prob(i));
        }
    }

    #[test]
    fn bounds_sandwich_exact_union() {
        let db = table2();
        for (x_s, ms) in [("d", 1), ("a", 2), ("a b", 2), ("c", 3)] {
            let x = items(&db, x_s);
            let fam = family_for(&db, &x, ms);
            if fam.is_empty() {
                continue;
            }
            let exact_union = prob::exact_union_probability(fam.len(), |s| fam.joint(s));
            let pr_f = pfim::frequent_probability(&db, &x, ms);
            let exact_fc = (pr_f - exact_union).max(0.0);
            let (lo, hi) = fam.fcp_bounds(pr_f, 16, None);
            assert!(
                lo <= exact_fc + 1e-9 && exact_fc <= hi + 1e-9,
                "X={x_s} ms={ms}: [{lo}, {hi}] vs {exact_fc}"
            );
        }
    }

    #[test]
    fn bounds_with_event_cap_remain_sound() {
        let db = table2();
        let x = items(&db, "d");
        let fam = family_for(&db, &x, 1);
        let pr_f = pfim::frequent_probability(&db, &x, 1);
        let exact_union = prob::exact_union_probability(fam.len(), |s| fam.joint(s));
        let exact_fc = (pr_f - exact_union).max(0.0);
        for cap in 1..=fam.len() {
            let (lo, hi) = fam.fcp_bounds(pr_f, cap, None);
            assert!(
                lo <= exact_fc + 1e-9 && exact_fc <= hi + 1e-9,
                "cap={cap}: [{lo}, {hi}] vs {exact_fc}"
            );
        }
    }

    #[test]
    fn early_decision_skips_pairwise() {
        // With a decision threshold far below the cheap lower bound, the
        // tiered computation must return the cheap sandwich unchanged.
        let db = table2();
        let x = items(&db, "a b c");
        let fam = family_for(&db, &x, 2);
        let (lo, hi) = fam.fcp_bounds(0.9726, 16, Some(0.0));
        assert!(lo > 0.0, "cheap lower bound decides: {lo} {hi}");
    }

    #[test]
    fn sampled_worlds_satisfy_their_event() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let db = table2();
        let fam = family_for(&db, &items(&db, "d"), 1);
        let mut rng = SmallRng::seed_from_u64(17);
        for i in 0..fam.len() {
            for _ in 0..200 {
                let w = fam.sample_world_given(i, &mut rng);
                assert!(fam.world_satisfies(&w, i));
            }
        }
    }

    #[test]
    fn naive_sampling_tracks_exact_fcp() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let db = table2();
        for (x_s, ms) in [("a b c", 2), ("a", 2), ("d", 1)] {
            let x = items(&db, x_s);
            let fam = family_for(&db, &x, ms);
            let exact = crate::exact::exact_fcp_by_worlds(&db, &x, ms);
            let mut rng = SmallRng::seed_from_u64(41);
            let est = fam.naive_sampling_fcp(200_000, &mut rng);
            assert!(
                (est.fcp - exact).abs() < 0.01,
                "X={x_s}: naive {} vs exact {exact}",
                est.fcp
            );
        }
    }

    #[test]
    fn sample_view_is_sync_and_draws_identically_to_the_family() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        fn assert_sync<T: Sync>(_: &T) {}
        let db = table2();
        let fam = family_for(&db, &items(&db, "d"), 1);
        let view = fam.sample_view();
        assert_sync(&view);
        assert_eq!(view.num_events(), fam.len());
        for i in 0..fam.len() {
            assert_eq!(view.event_prob(i), fam.event_prob(i));
        }
        // Equal RNG state ⇒ bit-identical Karp–Luby estimates.
        let mut rng_a = SmallRng::seed_from_u64(99);
        let mut rng_b = SmallRng::seed_from_u64(99);
        let a = prob::karp_luby_union_with_samples(&fam, 5_000, &mut rng_a);
        let b = prob::karp_luby_union_with_samples(&view, 5_000, &mut rng_b);
        assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn event_table_projection_is_bitwise_identical_to_direct_build() {
        let db = table2();
        for (x_s, ms) in [("a b c", 2), ("d", 1), ("a", 2), ("a b", 2), ("c", 3)] {
            let x = items(&db, x_s);
            let direct = family_for(&db, &x, ms);
            let tids = db.tidset_of_itemset(&x).into_bitmap();
            let table = EventTable::build(&db, &tids, ms);
            assert_eq!(table.tids(), &tids);
            assert_eq!(table.min_sup(), ms);
            let projected = table.family_excluding(&x);
            assert_eq!(projected.considered_items(), direct.considered_items());
            assert_eq!(projected.len(), direct.len());
            assert_eq!(
                projected.total_mass().to_bits(),
                direct.total_mass().to_bits(),
                "X={x_s}"
            );
            for i in 0..direct.len() {
                assert_eq!(projected.item(i), direct.item(i));
                assert_eq!(
                    projected.event_prob(i).to_bits(),
                    direct.event_prob(i).to_bits(),
                    "X={x_s} event {i}"
                );
            }
            // Joints and bounds go through masks and mask probabilities —
            // exercise them too.
            if direct.len() >= 2 {
                assert_eq!(
                    projected.joint(&[0, 1]).to_bits(),
                    direct.joint(&[0, 1]).to_bits()
                );
            }
            let (lo_a, hi_a) = direct.fcp_bounds(0.9, 16, None);
            let (lo_b, hi_b) = projected.fcp_bounds(0.9, 16, None);
            assert_eq!(
                (lo_a.to_bits(), hi_a.to_bits()),
                (lo_b.to_bits(), hi_b.to_bits())
            );
        }
    }

    #[test]
    fn event_table_covers_x_items_with_full_masks() {
        // Items of X always have T(X∪e) = T(X): their table entry is the
        // full-mask event whose tail is the plain frequentness tail.
        let db = table2();
        let x = items(&db, "a b c");
        let tids = db.tidset_of_itemset(&x).into_bitmap();
        let table = EventTable::build(&db, &tids, 2);
        // All four items co-occur with abc on its full tid-set or a
        // subset; a, b, c entries must carry prob == Pr{sup(abc) >= 2}.
        let pr_f = pfim::frequent_probability(&db, &x, 2);
        let fam_all = table.family_excluding(&[]);
        for i in 0..fam_all.len() {
            if x.contains(&fam_all.item(i)) {
                assert!((fam_all.event_prob(i) - pr_f).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn karp_luby_on_family_matches_inclusion_exclusion() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let db = table2();
        for (x_s, ms) in [("d", 1), ("a", 2), ("a b", 2)] {
            let x = items(&db, x_s);
            let fam = family_for(&db, &x, ms);
            if fam.is_empty() {
                continue;
            }
            let exact = prob::exact_union_probability(fam.len(), |s| fam.joint(s));
            let mut rng = SmallRng::seed_from_u64(23);
            let est = prob::karp_luby_union(&fam, 0.05, 0.05, &mut rng);
            assert!(
                (est.estimate - exact).abs() <= 0.05 * exact + 0.01,
                "X={x_s} ms={ms}: {} vs {exact}",
                est.estimate
            );
        }
    }
}
