//! Convenience re-exports: everything a typical mining program needs.
//!
//! ```
//! use pfcim_core::prelude::*;
//! use utdb::UncertainDatabase;
//!
//! let db = UncertainDatabase::parse_symbolic(&[("a b", 0.9), ("a b", 0.8)]);
//! let outcome = Miner::new(&db).min_sup(2).pfct(0.5).run();
//! assert_eq!(outcome.results.len(), 1);
//! ```

pub use crate::config::MinerConfig;
pub use crate::miner::{Algorithm, Miner};
pub use crate::result::{MiningOutcome, Pfci};
pub use crate::trace::MinerSink;
pub use utdb::UncertainDatabase;
