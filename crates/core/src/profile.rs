//! Hierarchical span profiling for mining runs.
//!
//! [`SpanProfiler`] is a [`MinerSink`] that reconstructs a tree of timed
//! *spans* from the event stream: one `run` span per mining run, one
//! `node` span per enumeration-tree node (nested by itemset depth, so a
//! DFS path shows up as a stack), one leaf span per timed phase
//! ([`Phase`]) and — when the parallel miner hands pool observations over
//! via [`MinerSink::pool_span`] — `task`/`steal`/`idle` spans on
//! per-worker tracks.
//!
//! Spans live on *tracks* (one per thread of activity): track `0` is the
//! caller thread, each parallel shard allocates the next track id from a
//! shared counter, and pool workers map onto a dedicated track range.
//! Within a track spans strictly nest — a span's interval always lies
//! inside its parent's — which is exactly the shape the Chrome
//! trace-event viewer (Perfetto, `chrome://tracing`) expects from
//! [`SpanProfiler::chrome_trace_json`].
//!
//! Timestamps are only taken while profiling is enabled; the
//! [`SpanProfiler::disabled`] constructor reports
//! [`MinerSink::is_enabled`]` == false` and records nothing, so an
//! optionally-attached profiler costs one branch per callback. A
//! sampling rate ([`SpanProfiler::with_sampling`]) bounds overhead on
//! large runs by recording only every N-th node span (phases inside a
//! sampled-out node are skipped with it).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::config::MinerConfig;
use crate::par::{PoolSpan, PoolSpanKind};
use crate::result::MiningOutcome;
use crate::trace::{MinerSink, Phase, ShardableSink};

/// Track id of the caller thread.
const MAIN_TRACK: u32 = 0;

/// Pool workers are mapped to `WORKER_TRACK_BASE + worker_index` —
/// far above any shard track id the run could allocate.
const WORKER_TRACK_BASE: u32 = 1_000_000;

/// What a recorded span measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A whole mining run (`run_started` … `run_finished`).
    Run,
    /// One enumeration-tree node; its `arg` is the itemset depth.
    Node,
    /// One timed phase (see [`Phase`]).
    Phase(Phase),
    /// A work-stealing-pool observation on a worker track; its `arg` is
    /// the task index for [`PoolSpanKind::Task`].
    Pool(PoolSpanKind),
}

impl SpanKind {
    /// Stable snake_case name used in exported traces and rollups.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Run => "run",
            SpanKind::Node => "node",
            SpanKind::Phase(p) => p.name(),
            SpanKind::Pool(k) => k.name(),
        }
    }
}

/// Handle to an open span returned by [`SpanProfiler::enter`]; closing it
/// with [`SpanProfiler::exit`] stamps the duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

impl SpanId {
    /// The profiler is disabled (or the span was otherwise not
    /// recorded); [`SpanProfiler::exit`] ignores it.
    pub const NONE: SpanId = SpanId(usize::MAX);
    /// The span fell inside a sampled-out node; nothing was recorded.
    pub const SUPPRESSED: SpanId = SpanId(usize::MAX - 1);
}

/// One closed span: a `[start, start + dur]` interval on a track,
/// relative to the profiler's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// What was measured.
    pub kind: SpanKind,
    /// Kind-specific argument (node depth or pool task index).
    pub arg: u64,
    /// Which track (thread of activity) the span lies on.
    pub track: u32,
    /// Start offset from the profiler's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

impl Span {
    /// End offset from the epoch, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

/// A [`MinerSink`] that records hierarchical timing spans (see the
/// module docs) and exports them as a Chrome trace-event JSON file or a
/// per-kind rollup.
#[derive(Debug)]
pub struct SpanProfiler {
    enabled: bool,
    epoch: Instant,
    /// Record every `sample_every`-th node span (1 = all).
    sample_every: u32,
    track: u32,
    next_track: Arc<AtomicU32>,
    spans: Vec<Span>,
    /// Indices of open spans, innermost last (strict stack discipline).
    stack: Vec<usize>,
    /// Open node spans as `(stack position's span index, depth)`.
    open_nodes: Vec<(usize, u64)>,
    nodes_seen: u64,
    /// True while inside a sampled-out node: phases are skipped too.
    suppressing: bool,
}

impl Default for SpanProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanProfiler {
    /// A profiler recording every span, with its epoch at `now`.
    pub fn new() -> Self {
        Self {
            enabled: true,
            epoch: Instant::now(),
            sample_every: 1,
            track: MAIN_TRACK,
            next_track: Arc::new(AtomicU32::new(MAIN_TRACK + 1)),
            spans: Vec::new(),
            stack: Vec::new(),
            open_nodes: Vec::new(),
            nodes_seen: 0,
            suppressing: false,
        }
    }

    /// A profiler that records nothing and reports
    /// [`MinerSink::is_enabled`]` == false` — for proving profiling off
    /// is free.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::new()
        }
    }

    /// Record only every `n`-th node span (and the phases inside it);
    /// `0` is treated as `1` (record everything). Run spans and pool
    /// spans are never sampled out.
    pub fn with_sampling(mut self, n: u32) -> Self {
        self.sample_every = n.max(1);
        self
    }

    /// The recorded (closed) spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Nodes observed (before sampling).
    pub fn nodes_seen(&self) -> u64 {
        self.nodes_seen
    }

    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a span of `kind` now. Returns [`SpanId::NONE`] when disabled
    /// and [`SpanId::SUPPRESSED`] inside a sampled-out node.
    pub fn enter(&mut self, kind: SpanKind, arg: u64) -> SpanId {
        if !self.enabled {
            return SpanId::NONE;
        }
        if self.suppressing && matches!(kind, SpanKind::Phase(_)) {
            return SpanId::SUPPRESSED;
        }
        let idx = self.spans.len();
        self.spans.push(Span {
            kind,
            arg,
            track: self.track,
            start_ns: self.now_ns(),
            dur_ns: 0,
        });
        self.stack.push(idx);
        SpanId(idx)
    }

    /// Close the span `id` (and any still-open spans nested inside it),
    /// stamping durations at `now`. Sentinel ids are ignored.
    pub fn exit(&mut self, id: SpanId) {
        if id == SpanId::NONE || id == SpanId::SUPPRESSED {
            return;
        }
        let end = self.now_ns();
        while let Some(top) = self.stack.pop() {
            self.open_nodes.retain(|(idx, _)| *idx != top);
            self.spans[top].dur_ns = end.saturating_sub(self.spans[top].start_ns);
            if top == id.0 {
                break;
            }
        }
    }

    /// Close every open span. The main profiler closes at `now` (run
    /// end); absorbed shards close at their own last recorded end so the
    /// post-subtree wait at the join barrier is not billed to them.
    fn close_open(&mut self, at_ns: u64) {
        while let Some(top) = self.stack.pop() {
            self.spans[top].dur_ns = at_ns.saturating_sub(self.spans[top].start_ns);
        }
        self.open_nodes.clear();
        self.suppressing = false;
    }

    /// End offset of the last recorded span (0 when empty).
    fn last_end_ns(&self) -> u64 {
        self.spans.iter().map(Span::end_ns).max().unwrap_or(0)
    }

    /// Human-readable name of a track, for trace metadata.
    fn track_name(track: u32) -> String {
        if track == MAIN_TRACK {
            "main".to_owned()
        } else if track >= WORKER_TRACK_BASE {
            format!("worker-{}", track - WORKER_TRACK_BASE)
        } else {
            format!("shard-{track}")
        }
    }

    /// Total seconds and span count per span-kind name, for BENCH
    /// report rollups (`span_s`).
    pub fn rollup(&self) -> BTreeMap<String, (f64, u64)> {
        let mut out: BTreeMap<String, (f64, u64)> = BTreeMap::new();
        for s in &self.spans {
            let e = out.entry(s.kind.name().to_owned()).or_insert((0.0, 0));
            e.0 += s.dur_ns as f64 / 1e9;
            e.1 += 1;
        }
        out
    }

    /// Export every recorded span as Chrome trace-event JSON — an object
    /// with a `traceEvents` array of complete (`"ph":"X"`) events plus
    /// one `thread_name` metadata event per track, loadable in Perfetto
    /// or `chrome://tracing`.
    pub fn chrome_trace_json(&self) -> String {
        let us = |ns: u64| format!("{}.{:03}", ns / 1000, ns % 1000);
        let mut tracks: Vec<u32> = self.spans.iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for track in &tracks {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                Self::track_name(*track)
            );
        }
        for s in &self.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let arg_key = match s.kind {
                SpanKind::Node => "depth",
                SpanKind::Pool(PoolSpanKind::Task) => "task",
                _ => "arg",
            };
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"mpfci\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"{arg_key}\":{}}}}}",
                s.kind.name(),
                us(s.start_ns),
                us(s.dur_ns),
                s.track,
                s.arg,
            );
        }
        out.push_str("]}");
        out
    }
}

impl MinerSink for SpanProfiler {
    fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn run_started(&mut self, _algo: &str, _config: &MinerConfig) {
        let id = self.enter(SpanKind::Run, 0);
        let _ = id; // stays open until run_finished closes the stack
    }

    fn node_entered(&mut self, depth: usize) {
        if !self.enabled {
            return;
        }
        let depth = depth as u64;
        // Close open node spans at or below this depth: the DFS has
        // backtracked out of them (BFS depths never decrease, so levels
        // degrade to sibling spans).
        while let Some(&(idx, d)) = self.open_nodes.last() {
            if d < depth {
                break;
            }
            self.exit(SpanId(idx));
        }
        self.nodes_seen += 1;
        if !self.nodes_seen.is_multiple_of(u64::from(self.sample_every)) {
            self.suppressing = true;
            return;
        }
        self.suppressing = false;
        let id = self.enter(SpanKind::Node, depth);
        if id != SpanId::NONE {
            self.open_nodes.push((id.0, depth));
        }
    }

    fn phase_start(&mut self, phase: Phase) {
        // Phases come in strict immediate pairs (the `timed` helper runs
        // a closure), so the matching `phase_end` closes the stack top.
        self.enter(SpanKind::Phase(phase), 0);
    }

    fn phase_end(&mut self, phase: Phase, _elapsed: Duration) {
        if !self.enabled || self.suppressing {
            return;
        }
        if let Some(&top) = self.stack.last() {
            if self.spans[top].kind == SpanKind::Phase(phase) {
                self.exit(SpanId(top));
            }
        }
    }

    fn pool_span(&mut self, span: &PoolSpan) {
        if !self.enabled {
            return;
        }
        let start_ns = span.start.saturating_duration_since(self.epoch).as_nanos() as u64;
        self.spans.push(Span {
            kind: SpanKind::Pool(span.kind),
            arg: span.task as u64,
            track: WORKER_TRACK_BASE + span.worker,
            start_ns,
            dur_ns: span.dur.as_nanos() as u64,
        });
    }

    fn run_finished(&mut self, _outcome: &MiningOutcome) {
        if self.enabled {
            let now = self.now_ns();
            self.close_open(now);
        }
    }
}

/// Shards share the parent's epoch and track counter; each records onto
/// its own track, so absorbing in canonical root-id order yields a
/// deterministic track assignment and span order.
impl ShardableSink for SpanProfiler {
    type Shard = SpanProfiler;

    fn make_shard(&self) -> SpanProfiler {
        SpanProfiler {
            enabled: self.enabled,
            epoch: self.epoch,
            sample_every: self.sample_every,
            track: self.next_track.fetch_add(1, Ordering::Relaxed),
            next_track: Arc::clone(&self.next_track),
            spans: Vec::new(),
            stack: Vec::new(),
            open_nodes: Vec::new(),
            nodes_seen: 0,
            suppressing: false,
        }
    }

    fn absorb_shard(&mut self, mut shard: SpanProfiler) {
        let last = shard.last_end_ns();
        shard.close_open(last);
        self.spans.extend(shard.spans);
        self.nodes_seen += shard.nodes_seen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::miner::{Algorithm, Miner};
    use crate::trace::NullSink;
    use utdb::UncertainDatabase;

    fn table4() -> UncertainDatabase {
        UncertainDatabase::parse_symbolic(&[
            ("a b c d", 0.9),
            ("a b c", 0.6),
            ("a b c", 0.7),
            ("a b c d", 0.9),
            ("a b", 0.4),
            ("a", 0.4),
        ])
    }

    /// Spans on the same track must strictly nest: any two either are
    /// disjoint or one contains the other.
    fn assert_nested(spans: &[Span]) {
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                if a.track != b.track {
                    continue;
                }
                let disjoint = a.end_ns() <= b.start_ns || b.end_ns() <= a.start_ns;
                let a_in_b = b.start_ns <= a.start_ns && a.end_ns() <= b.end_ns();
                let b_in_a = a.start_ns <= b.start_ns && b.end_ns() <= a.end_ns();
                assert!(
                    disjoint || a_in_b || b_in_a,
                    "overlapping spans on track {}: {a:?} vs {b:?}",
                    a.track
                );
            }
        }
    }

    #[test]
    fn profiler_records_run_node_and_phase_spans() {
        let db = table4();
        let mut prof = SpanProfiler::new();
        let out = Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut prof).run();
        assert!(!out.results.is_empty());
        let runs = prof.spans().iter().filter(|s| s.kind == SpanKind::Run);
        assert_eq!(runs.count(), 1);
        let nodes = prof
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Node)
            .count() as u64;
        assert_eq!(nodes, out.stats.nodes_visited);
        assert_eq!(prof.nodes_seen(), out.stats.nodes_visited);
        assert!(prof
            .spans()
            .iter()
            .any(|s| matches!(s.kind, SpanKind::Phase(_))));
        // Everything is closed and nests.
        assert!(prof.stack.is_empty());
        assert_nested(prof.spans());
    }

    #[test]
    fn node_spans_nest_by_depth() {
        let db = table4();
        let mut prof = SpanProfiler::new();
        Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut prof).run();
        // A depth-2 node span must lie inside some depth-1 node span.
        let nodes: Vec<&Span> = prof
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Node)
            .collect();
        for deep in nodes.iter().filter(|s| s.arg == 2) {
            assert!(
                nodes.iter().any(|outer| outer.arg == 1
                    && outer.start_ns <= deep.start_ns
                    && deep.end_ns() <= outer.end_ns()),
                "depth-2 span not nested in a depth-1 span"
            );
        }
    }

    #[test]
    fn sampling_records_a_subset_of_nodes() {
        let db = table4();
        let mut full = SpanProfiler::new();
        let out_full = Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut full).run();
        let mut sampled = SpanProfiler::new().with_sampling(4);
        let out_sampled = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut sampled)
            .run();
        assert_eq!(out_full.itemsets(), out_sampled.itemsets());
        let count = |p: &SpanProfiler| {
            p.spans()
                .iter()
                .filter(|s| s.kind == SpanKind::Node)
                .count() as u64
        };
        assert_eq!(count(&full), out_full.stats.nodes_visited);
        assert_eq!(count(&sampled), out_sampled.stats.nodes_visited / 4);
        assert_nested(sampled.spans());
    }

    #[test]
    fn disabled_profiler_records_nothing_and_perturbs_nothing() {
        let db = table4();
        let mut prof = SpanProfiler::disabled();
        let with = Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut prof).run();
        let without = Miner::new(&db).min_sup(2).pfct(0.8).run();
        assert!(!prof.is_enabled());
        assert!(prof.spans().is_empty());
        assert_eq!(with.itemsets(), without.itemsets());
        assert_eq!(with.stats, without.stats);
        assert_eq!(with.kernel, without.kernel);
        assert_eq!(with.audit, without.audit);
        for (a, b) in with.results.iter().zip(&without.results) {
            assert!((a.fcp - b.fcp).abs() < 1e-15);
        }
    }

    #[test]
    fn parallel_run_places_shards_on_distinct_tracks() {
        let db = table4();
        let mut prof = SpanProfiler::new();
        let par = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .threads(4)
            .sink(&mut prof)
            .run();
        let seq = Miner::new(&db)
            .min_sup(2)
            .pfct(0.8)
            .sink(&mut NullSink)
            .run();
        assert_eq!(par.itemsets(), seq.itemsets());
        let mut tracks: Vec<u32> = prof.spans().iter().map(|s| s.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        // Main track plus at least one shard track.
        assert!(tracks.contains(&MAIN_TRACK));
        assert!(
            tracks.iter().any(|t| *t > MAIN_TRACK),
            "no shard tracks: {tracks:?}"
        );
        // Pool observations land on worker tracks.
        assert!(
            prof.spans()
                .iter()
                .any(|s| matches!(s.kind, SpanKind::Pool(_)) && s.track >= WORKER_TRACK_BASE),
            "no pool spans on worker tracks"
        );
        assert_nested(prof.spans());
    }

    #[test]
    fn bfs_and_naive_runs_profile_cleanly() {
        let db = table4();
        for algorithm in [Algorithm::Bfs, Algorithm::Naive] {
            let mut prof = SpanProfiler::new();
            let out = Miner::new(&db)
                .min_sup(2)
                .pfct(0.8)
                .algorithm(algorithm)
                .sink(&mut prof)
                .run();
            let nodes = prof
                .spans()
                .iter()
                .filter(|s| s.kind == SpanKind::Node)
                .count() as u64;
            assert_eq!(nodes, out.stats.nodes_visited, "{algorithm:?}");
            assert!(prof.stack.is_empty());
            assert_nested(prof.spans());
        }
    }

    #[test]
    fn rollup_totals_match_span_sums() {
        let db = table4();
        let mut prof = SpanProfiler::new();
        Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut prof).run();
        let rollup = prof.rollup();
        let node_count: u64 = prof
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::Node)
            .count() as u64;
        assert_eq!(rollup["node"].1, node_count);
        assert_eq!(rollup["run"].1, 1);
        let run_span = prof
            .spans()
            .iter()
            .find(|s| s.kind == SpanKind::Run)
            .unwrap();
        assert!((rollup["run"].0 - run_span.dur_ns as f64 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_has_events_and_thread_names() {
        let db = table4();
        let mut prof = SpanProfiler::new();
        Miner::new(&db).min_sup(2).pfct(0.8).sink(&mut prof).run();
        let json = prof.chrome_trace_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"main\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"node\""));
    }

    #[test]
    fn enter_exit_sentinels_are_inert() {
        let mut prof = SpanProfiler::disabled();
        let id = prof.enter(SpanKind::Run, 0);
        assert_eq!(id, SpanId::NONE);
        prof.exit(id);
        prof.exit(SpanId::SUPPRESSED);
        assert!(prof.spans().is_empty());
    }
}
