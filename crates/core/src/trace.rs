//! Pluggable observability for mining runs: event sinks, JSONL traces,
//! and phase timing.
//!
//! Every miner ([`crate::mine_dfs`], [`crate::mine_bfs`],
//! [`crate::mine_naive`]) has a `*_with` variant accepting a
//! [`MinerSink`] — an observer that receives a callback for each
//! significant step of the Bounding–Pruning–Checking framework:
//! enumeration-tree nodes, pruning decisions, frequent-probability DP
//! evaluations, FCP bound computations, exact/sampled FCP evaluations and
//! emitted results. The miners are generic over the sink type, so the
//! no-op [`NullSink`] monomorphizes to nothing: plain `mine_*` calls pay
//! no callback cost and produce byte-identical results.
//!
//! Provided sinks:
//!
//! * [`NullSink`] — discards everything (the default).
//! * [`CountingSink`] — re-derives [`MinerStats`] purely from events;
//!   used to prove the event stream is complete.
//! * [`RecordingSink`] — buffers every event as a [`TraceEvent`].
//! * [`JsonlSink`] — streams events as JSON Lines (schema below).
//! * [`ProgressSink`] — throttled stderr heartbeat (nodes/sec, pruning
//!   mix, elapsed versus the configured time budget).
//! * [`Tee`] — fans events out to two sinks.
//!
//! # JSONL schema
//!
//! One JSON object per line, discriminated by the `"ev"` key. All values
//! are flat scalars except `result.items` (an array of item ids):
//!
//! ```text
//! {"ev":"run_start","algo":"dfs","min_sup":2,"pfct":0.8,"epsilon":0.1,"delta":0.1}
//! {"ev":"node","depth":1}
//! {"ev":"prune","kind":"superset"}
//! {"ev":"freq_prob","pr_f":0.9985}
//! {"ev":"dp_decision","reason":"err_tol","magnitude":5.2e-8}
//! {"ev":"fcp_bounds","lower":0.85,"upper":0.92}
//! {"ev":"fcp_eval","method":"sampled","samples":59915}
//! {"ev":"result","items":[0,1,2],"fcp":0.8754}
//! {"ev":"phase_start","phase":"freq_dp"}
//! {"ev":"phase_end","phase":"freq_dp","nanos":123456}
//! {"ev":"run_end","elapsed_nanos":1234567,"results":2,"timed_out":false}
//! ```
//!
//! `prune.kind` ∈ {`chernoff_hoeffding`, `freq_prob`, `superset`,
//! `subset`, `bound_reject`}; `fcp_eval.method` ∈ {`exact`, `sampled`,
//! `bound_decided`}; `phase` ∈ {`freq_dp`, `ch_bound`, `event_build`,
//! `bound_eval`, `fcp_exact`, `fcp_sample`}; `dp_decision.reason` ∈
//! {`incremental`, `fresh_root`, `fresh_level`, `cost_skip`,
//! `downdate_cap`, `err_tol`, `row_validation`, `degenerate`}, with
//! `magnitude` present only for the two refusal reasons that carry one
//! (see [`DpDecision`]). Floats use Rust's shortest
//! round-trip rendering, so parsing a trace back recovers the exact
//! values ([`parse_jsonl`]).

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::{Duration, Instant};

use utdb::Item;

use crate::config::MinerConfig;
use crate::result::MiningOutcome;
use crate::stats::{DpAudit, MinerStats, PhaseTimers};

/// The instrumented phases of a mining run, in the order they typically
/// occur per candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Exact frequent-probability dynamic program (`Pr_F` tail).
    FreqDp,
    /// Chernoff–Hoeffding refutation test (Lemma 4.1).
    ChBound,
    /// Construction of the non-closure event family.
    EventBuild,
    /// FCP lower/upper bound evaluation (Lemma 4.4).
    BoundEval,
    /// Exact FCP by inclusion–exclusion over the event family.
    FcpExact,
    /// Sampled FCP via the Karp–Luby `ApproxFCP` FPRAS.
    FcpSample,
}

impl Phase {
    /// Number of phases (array dimension of [`PhaseTimers`]).
    pub const COUNT: usize = 6;

    /// Every phase, in canonical order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::FreqDp,
        Phase::ChBound,
        Phase::EventBuild,
        Phase::BoundEval,
        Phase::FcpExact,
        Phase::FcpSample,
    ];

    /// Stable snake_case name used in traces and CSV columns.
    pub fn name(self) -> &'static str {
        match self {
            Phase::FreqDp => "freq_dp",
            Phase::ChBound => "ch_bound",
            Phase::EventBuild => "event_build",
            Phase::BoundEval => "bound_eval",
            Phase::FcpExact => "fcp_exact",
            Phase::FcpSample => "fcp_sample",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }

    /// Dense index in `0..Phase::COUNT`.
    pub fn index(self) -> usize {
        match self {
            Phase::FreqDp => 0,
            Phase::ChBound => 1,
            Phase::EventBuild => 2,
            Phase::BoundEval => 3,
            Phase::FcpExact => 4,
            Phase::FcpSample => 5,
        }
    }
}

/// Which pruning fired (the counters of [`MinerStats`], as events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneKind {
    /// Chernoff–Hoeffding refutation (Lemma 4.1) — `ch_pruned`.
    ChernoffHoeffding,
    /// Exact `Pr_F ≤ pfct` (anti-monotone subtree cut) — `freq_pruned`.
    FreqProb,
    /// Superset pruning (Lemma 4.2) — `superset_pruned`.
    Superset,
    /// Subset pruning (Lemma 4.3) — `subset_pruned`.
    Subset,
    /// FCP upper bound at or below `pfct` (Lemma 4.4) — `bound_rejected`.
    BoundReject,
}

impl PruneKind {
    /// Every kind, in [`MinerStats`] field order.
    pub const ALL: [PruneKind; 5] = [
        PruneKind::ChernoffHoeffding,
        PruneKind::FreqProb,
        PruneKind::Superset,
        PruneKind::Subset,
        PruneKind::BoundReject,
    ];

    /// Stable snake_case name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            PruneKind::ChernoffHoeffding => "chernoff_hoeffding",
            PruneKind::FreqProb => "freq_prob",
            PruneKind::Superset => "superset",
            PruneKind::Subset => "subset",
            PruneKind::BoundReject => "bound_reject",
        }
    }

    /// Inverse of [`PruneKind::name`].
    pub fn from_name(name: &str) -> Option<PruneKind> {
        PruneKind::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// The outcome of one frequentness-DP row qualification: either the
/// incremental downdate fast path, or one of the structured reasons the
/// miner rebuilt the row from scratch instead (the decision-audit
/// channel behind [`crate::stats::DpAudit`]).
///
/// Exactly one `dp_decision` event fires per DP row the miner produces,
/// so per-reason counts reconcile with
/// [`crate::stats::KernelStats::dp_rows`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpDecision {
    /// The parent row was downdated successfully (`dp_incremental`).
    Incremental,
    /// A subtree root has no parent row — built from scratch.
    FreshRoot,
    /// The level-wise BFS miner never downdates — built from scratch.
    FreshLevel,
    /// The downdate would touch at least as many transactions as a
    /// rebuild, so rebuilding was cheaper.
    CostSkip,
    /// The parent row had accumulated the maximum number of downdates.
    DowndateCap,
    /// A removal was refused because the *measured* error bound of the
    /// downdated row exceeded the configured `dp_error_tol`; `measured`
    /// is that bound, so a histogram of measured errors shows how far
    /// past the tolerance refused removals land.
    ErrTol {
        /// Projected absolute error of the refused downdate's row.
        measured: f64,
    },
    /// A removal was refused because a divided-out DP row left `[0, 1]`;
    /// `violation` is how far outside the range it landed.
    RowValidation {
        /// Distance outside the valid probability range.
        violation: f64,
    },
    /// A removal was refused on degenerate input (empty row or `p = 1`).
    Degenerate,
}

impl DpDecision {
    /// Stable snake_case name used in traces, metrics and reports.
    pub fn name(self) -> &'static str {
        match self {
            DpDecision::Incremental => "incremental",
            DpDecision::FreshRoot => "fresh_root",
            DpDecision::FreshLevel => "fresh_level",
            DpDecision::CostSkip => "cost_skip",
            DpDecision::DowndateCap => "downdate_cap",
            DpDecision::ErrTol { .. } => "err_tol",
            DpDecision::RowValidation { .. } => "row_validation",
            DpDecision::Degenerate => "degenerate",
        }
    }

    /// The refusal magnitude, for the reasons that carry one.
    pub fn magnitude(self) -> Option<f64> {
        match self {
            DpDecision::ErrTol { measured } => Some(measured),
            DpDecision::RowValidation { violation } => Some(violation),
            _ => None,
        }
    }

    /// Rebuild a decision from its trace form (inverse of
    /// [`DpDecision::name`] plus the optional magnitude). Reasons that
    /// carry a magnitude default it to `0` when absent.
    pub fn from_parts(name: &str, magnitude: Option<f64>) -> Option<DpDecision> {
        Some(match name {
            "incremental" => DpDecision::Incremental,
            "fresh_root" => DpDecision::FreshRoot,
            "fresh_level" => DpDecision::FreshLevel,
            "cost_skip" => DpDecision::CostSkip,
            "downdate_cap" => DpDecision::DowndateCap,
            "err_tol" => DpDecision::ErrTol {
                measured: magnitude.unwrap_or(0.0),
            },
            "row_validation" => DpDecision::RowValidation {
                violation: magnitude.unwrap_or(0.0),
            },
            "degenerate" => DpDecision::Degenerate,
            _ => return None,
        })
    }
}

/// How an itemset's FCP was settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcpEvalKind {
    /// Exact inclusion–exclusion — `fcp_exact`.
    Exact,
    /// Karp–Luby sampling — `fcp_sampled` (with the samples drawn).
    Sampled,
    /// Upper and lower bounds coincided — `bound_decided`, no FCP pass.
    BoundDecided,
}

impl FcpEvalKind {
    /// Stable snake_case name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            FcpEvalKind::Exact => "exact",
            FcpEvalKind::Sampled => "sampled",
            FcpEvalKind::BoundDecided => "bound_decided",
        }
    }

    /// Inverse of [`FcpEvalKind::name`].
    pub fn from_name(name: &str) -> Option<FcpEvalKind> {
        [
            FcpEvalKind::Exact,
            FcpEvalKind::Sampled,
            FcpEvalKind::BoundDecided,
        ]
        .into_iter()
        .find(|k| k.name() == name)
    }
}

/// Observer of a mining run.
///
/// Every callback has a no-op default, so a sink implements only what it
/// cares about. The miners are generic over `S: MinerSink + ?Sized` —
/// concrete sinks are monomorphized (a [`NullSink`] disappears
/// entirely), and `&mut dyn MinerSink` works where dynamic dispatch is
/// preferred.
///
/// Exactly one event fires per [`MinerStats`] counter increment (see
/// [`CountingSink`] for the mapping), so aggregating a run's events
/// reproduces its stats.
#[allow(unused_variables)]
pub trait MinerSink {
    /// False for sinks that discard everything; lets callers skip
    /// building expensive payloads. The miners themselves never branch on
    /// it — their callbacks compile out for [`NullSink`].
    fn is_enabled(&self) -> bool {
        true
    }

    /// A run begins. `algo` is `"dfs"`, `"bfs"` or `"naive"`.
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {}

    /// An enumeration-tree node (candidate itemset of size `depth`) is
    /// being processed.
    fn node_entered(&mut self, depth: usize) {}

    /// A pruning rule eliminated a candidate or subtree.
    fn prune_fired(&mut self, kind: PruneKind) {}

    /// The exact frequent-probability DP ran and returned `pr_f`.
    fn freq_prob_evaluated(&mut self, pr_f: f64) {}

    /// One frequentness-DP row was produced and the build-vs-downdate
    /// choice settled with `decision` — the decision-audit channel.
    /// Fires exactly once per DP row, immediately after the row exists.
    fn dp_decision(&mut self, decision: DpDecision) {}

    /// A work-stealing-pool span (task execution, successful steal, or
    /// terminal idle sweep) observed during a parallel fan-out. Pool
    /// spans are buffered by the workers and replayed on the caller
    /// thread after the join barrier, in worker order.
    fn pool_span(&mut self, span: &crate::par::PoolSpan) {}

    /// Live work-stealing-pool gauges this sink wants the parallel
    /// fan-out to feed *while workers run* (queue depth, per-worker
    /// task/steal/idle counts). `None` — the default — means the sink
    /// only needs the post-join [`MinerSink::pool_span`] replay. The
    /// parallel driver asks once per fan-out; combinators forward the
    /// first `Some` they find.
    fn pool_gauges(&self) -> Option<std::sync::Arc<crate::par::PoolGauges>> {
        None
    }

    /// FCP bounds (Lemma 4.4) were computed for a candidate.
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {}

    /// A candidate's FCP was settled; `samples` is nonzero only for
    /// [`FcpEvalKind::Sampled`].
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {}

    /// A probabilistic frequent closed itemset was accepted.
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {}

    /// A timed phase begins.
    fn phase_start(&mut self, phase: Phase) {}

    /// A timed phase ended after `elapsed`.
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {}

    /// The run finished; `outcome` is the final, sorted result.
    fn run_finished(&mut self, outcome: &MiningOutcome) {}
}

/// A [`MinerSink`] that can hand out private per-worker *shards* and
/// reconcile them back — the bridge between the single-threaded sink API
/// and the parallel miner.
///
/// The parallel DFS fan-out creates one shard per unit of work on the
/// caller thread ([`ShardableSink::make_shard`]), moves each shard into
/// its worker, and at the join barrier absorbs them back **in canonical
/// (submission) order** via [`ShardableSink::absorb_shard`]. A shard is
/// a plain owned sink, so workers record without locks; because
/// absorption is ordered, aggregate sinks (counting, histograms, JSONL
/// replay) end up exactly as if one sink had observed a sequential run
/// in that canonical order.
///
/// Implementations must make `absorb_shard(make_shard() + events)`
/// equivalent to observing those events directly, so that sharded
/// recording reconciles with single-sink recording (enforced by
/// proptests in this module and `tests/parallel_equivalence.rs`).
pub trait ShardableSink: MinerSink {
    /// The private per-worker sink type.
    type Shard: MinerSink + Send;

    /// Create an empty shard to hand to one worker.
    fn make_shard(&self) -> Self::Shard;

    /// Merge a finished shard's observations back into this sink.
    fn absorb_shard(&mut self, shard: Self::Shard);
}

macro_rules! forward_sink {
    ($ty:ty) => {
        impl<S: MinerSink + ?Sized> MinerSink for $ty {
            fn is_enabled(&self) -> bool {
                (**self).is_enabled()
            }
            fn run_started(&mut self, algo: &str, config: &MinerConfig) {
                (**self).run_started(algo, config)
            }
            fn node_entered(&mut self, depth: usize) {
                (**self).node_entered(depth)
            }
            fn prune_fired(&mut self, kind: PruneKind) {
                (**self).prune_fired(kind)
            }
            fn freq_prob_evaluated(&mut self, pr_f: f64) {
                (**self).freq_prob_evaluated(pr_f)
            }
            fn dp_decision(&mut self, decision: DpDecision) {
                (**self).dp_decision(decision)
            }
            fn pool_span(&mut self, span: &crate::par::PoolSpan) {
                (**self).pool_span(span)
            }
            fn pool_gauges(&self) -> Option<std::sync::Arc<crate::par::PoolGauges>> {
                (**self).pool_gauges()
            }
            fn fcp_bounds(&mut self, lower: f64, upper: f64) {
                (**self).fcp_bounds(lower, upper)
            }
            fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
                (**self).fcp_evaluated(method, samples)
            }
            fn result_emitted(&mut self, items: &[Item], fcp: f64) {
                (**self).result_emitted(items, fcp)
            }
            fn phase_start(&mut self, phase: Phase) {
                (**self).phase_start(phase)
            }
            fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
                (**self).phase_end(phase, elapsed)
            }
            fn run_finished(&mut self, outcome: &MiningOutcome) {
                (**self).run_finished(outcome)
            }
        }
    };
}

forward_sink!(&mut S);
forward_sink!(Box<S>);

impl<S: ShardableSink + ?Sized> ShardableSink for &mut S {
    type Shard = S::Shard;
    fn make_shard(&self) -> S::Shard {
        (**self).make_shard()
    }
    fn absorb_shard(&mut self, shard: S::Shard) {
        (**self).absorb_shard(shard);
    }
}

impl<S: ShardableSink + ?Sized> ShardableSink for Box<S> {
    type Shard = S::Shard;
    fn make_shard(&self) -> S::Shard {
        (**self).make_shard()
    }
    fn absorb_shard(&mut self, shard: S::Shard) {
        (**self).absorb_shard(shard);
    }
}

impl<S: ShardableSink> ShardableSink for Option<S> {
    type Shard = Option<S::Shard>;
    fn make_shard(&self) -> Option<S::Shard> {
        self.as_ref().map(ShardableSink::make_shard)
    }
    fn absorb_shard(&mut self, shard: Option<S::Shard>) {
        if let (Some(s), Some(shard)) = (self.as_mut(), shard) {
            s.absorb_shard(shard);
        }
    }
}

/// `Option<S>` is a sink that forwards when `Some` and discards when
/// `None` — the natural shape for optionally-attached observers
/// (`--trace`, `--progress`, `--metrics` flags) without a combinatorial
/// dispatch over which ones are present.
impl<S: MinerSink> MinerSink for Option<S> {
    fn is_enabled(&self) -> bool {
        self.as_ref().is_some_and(MinerSink::is_enabled)
    }
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        if let Some(s) = self {
            s.run_started(algo, config);
        }
    }
    fn node_entered(&mut self, depth: usize) {
        if let Some(s) = self {
            s.node_entered(depth);
        }
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        if let Some(s) = self {
            s.prune_fired(kind);
        }
    }
    fn freq_prob_evaluated(&mut self, pr_f: f64) {
        if let Some(s) = self {
            s.freq_prob_evaluated(pr_f);
        }
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        if let Some(s) = self {
            s.dp_decision(decision);
        }
    }
    fn pool_span(&mut self, span: &crate::par::PoolSpan) {
        if let Some(s) = self {
            s.pool_span(span);
        }
    }
    fn pool_gauges(&self) -> Option<std::sync::Arc<crate::par::PoolGauges>> {
        self.as_ref().and_then(MinerSink::pool_gauges)
    }
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {
        if let Some(s) = self {
            s.fcp_bounds(lower, upper);
        }
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        if let Some(s) = self {
            s.fcp_evaluated(method, samples);
        }
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        if let Some(s) = self {
            s.result_emitted(items, fcp);
        }
    }
    fn phase_start(&mut self, phase: Phase) {
        if let Some(s) = self {
            s.phase_start(phase);
        }
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        if let Some(s) = self {
            s.phase_end(phase, elapsed);
        }
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        if let Some(s) = self {
            s.run_finished(outcome);
        }
    }
}

/// The do-nothing sink: every callback is an empty inline default, so
/// miners instantiated with it compile to exactly the uninstrumented
/// code.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MinerSink for NullSink {
    fn is_enabled(&self) -> bool {
        false
    }
}

impl ShardableSink for NullSink {
    type Shard = NullSink;
    fn make_shard(&self) -> NullSink {
        NullSink
    }
    fn absorb_shard(&mut self, _shard: NullSink) {}
}

/// Fans every event out to two sinks (nest for more).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: MinerSink, B: MinerSink> MinerSink for Tee<A, B> {
    fn is_enabled(&self) -> bool {
        self.0.is_enabled() || self.1.is_enabled()
    }
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        self.0.run_started(algo, config);
        self.1.run_started(algo, config);
    }
    fn node_entered(&mut self, depth: usize) {
        self.0.node_entered(depth);
        self.1.node_entered(depth);
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        self.0.prune_fired(kind);
        self.1.prune_fired(kind);
    }
    fn freq_prob_evaluated(&mut self, pr_f: f64) {
        self.0.freq_prob_evaluated(pr_f);
        self.1.freq_prob_evaluated(pr_f);
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        self.0.dp_decision(decision);
        self.1.dp_decision(decision);
    }
    fn pool_span(&mut self, span: &crate::par::PoolSpan) {
        self.0.pool_span(span);
        self.1.pool_span(span);
    }
    fn pool_gauges(&self) -> Option<std::sync::Arc<crate::par::PoolGauges>> {
        self.0.pool_gauges().or_else(|| self.1.pool_gauges())
    }
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {
        self.0.fcp_bounds(lower, upper);
        self.1.fcp_bounds(lower, upper);
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        self.0.fcp_evaluated(method, samples);
        self.1.fcp_evaluated(method, samples);
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        self.0.result_emitted(items, fcp);
        self.1.result_emitted(items, fcp);
    }
    fn phase_start(&mut self, phase: Phase) {
        self.0.phase_start(phase);
        self.1.phase_start(phase);
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        self.0.phase_end(phase, elapsed);
        self.1.phase_end(phase, elapsed);
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        self.0.run_finished(outcome);
        self.1.run_finished(outcome);
    }
}

impl<A: ShardableSink, B: ShardableSink> ShardableSink for Tee<A, B> {
    type Shard = Tee<A::Shard, B::Shard>;
    fn make_shard(&self) -> Tee<A::Shard, B::Shard> {
        Tee(self.0.make_shard(), self.1.make_shard())
    }
    fn absorb_shard(&mut self, shard: Tee<A::Shard, B::Shard>) {
        self.0.absorb_shard(shard.0);
        self.1.absorb_shard(shard.1);
    }
}

/// Run a closure as a timed phase: accumulate its duration into `timers`
/// and bracket it with [`MinerSink::phase_start`]/[`MinerSink::phase_end`].
pub fn timed<S: MinerSink + ?Sized, T>(
    phase: Phase,
    timers: &mut PhaseTimers,
    sink: &mut S,
    f: impl FnOnce() -> T,
) -> T {
    sink.phase_start(phase);
    let t0 = Instant::now();
    let out = f();
    let elapsed = t0.elapsed();
    timers.add(phase, elapsed);
    sink.phase_end(phase, elapsed);
    out
}

// ---------------------------------------------------------------------------
// Trace events and their JSONL form
// ---------------------------------------------------------------------------

/// One observed event, in owned form — what [`RecordingSink`] buffers and
/// [`JsonlSink`] serializes (see the module docs for the schema).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// `{"ev":"run_start",...}` — run delimiter with the key thresholds.
    RunStart {
        /// `"dfs"`, `"bfs"` or `"naive"`.
        algo: String,
        /// Minimum support.
        min_sup: u64,
        /// Frequent-closed probability threshold.
        pfct: f64,
        /// Approximation accuracy parameter.
        epsilon: f64,
        /// Approximation confidence parameter.
        delta: f64,
    },
    /// `{"ev":"node",...}` — an enumeration node entered.
    Node {
        /// Itemset size at this node.
        depth: u64,
    },
    /// `{"ev":"prune",...}` — a pruning fired.
    Prune {
        /// Which pruning.
        kind: PruneKind,
    },
    /// `{"ev":"freq_prob",...}` — exact frequent probability computed.
    FreqProb {
        /// The DP's result.
        pr_f: f64,
    },
    /// `{"ev":"dp_decision",...}` — one frequentness-DP row settled.
    DpDecision {
        /// How (and, for refusals, why) the row was produced.
        decision: DpDecision,
    },
    /// `{"ev":"fcp_bounds",...}` — Lemma 4.4 bounds computed.
    FcpBounds {
        /// Lower bound on the FCP.
        lower: f64,
        /// Upper bound on the FCP.
        upper: f64,
    },
    /// `{"ev":"fcp_eval",...}` — an FCP settled.
    FcpEval {
        /// How it was settled.
        method: FcpEvalKind,
        /// Monte-Carlo samples drawn (zero unless sampled).
        samples: u64,
    },
    /// `{"ev":"result",...}` — a PFCI accepted.
    Result {
        /// Item ids of the accepted itemset.
        items: Vec<u32>,
        /// Its frequent closed probability.
        fcp: f64,
    },
    /// `{"ev":"phase_start",...}` — a timed phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// `{"ev":"phase_end",...}` — a timed phase ended.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Its duration in nanoseconds.
        nanos: u64,
    },
    /// `{"ev":"run_end",...}` — run delimiter with summary figures.
    RunEnd {
        /// Wall-clock duration in nanoseconds.
        elapsed_nanos: u64,
        /// Number of PFCIs found.
        results: u64,
        /// Whether the time budget aborted the run.
        timed_out: bool,
    },
}

impl TraceEvent {
    /// Serialize as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::RunStart {
                algo,
                min_sup,
                pfct,
                epsilon,
                delta,
            } => format!(
                "{{\"ev\":\"run_start\",\"algo\":\"{algo}\",\"min_sup\":{min_sup},\
                 \"pfct\":{pfct},\"epsilon\":{epsilon},\"delta\":{delta}}}"
            ),
            TraceEvent::Node { depth } => format!("{{\"ev\":\"node\",\"depth\":{depth}}}"),
            TraceEvent::Prune { kind } => {
                format!("{{\"ev\":\"prune\",\"kind\":\"{}\"}}", kind.name())
            }
            TraceEvent::FreqProb { pr_f } => format!("{{\"ev\":\"freq_prob\",\"pr_f\":{pr_f}}}"),
            TraceEvent::DpDecision { decision } => match decision.magnitude() {
                Some(m) => format!(
                    "{{\"ev\":\"dp_decision\",\"reason\":\"{}\",\"magnitude\":{m}}}",
                    decision.name()
                ),
                None => format!(
                    "{{\"ev\":\"dp_decision\",\"reason\":\"{}\"}}",
                    decision.name()
                ),
            },
            TraceEvent::FcpBounds { lower, upper } => {
                format!("{{\"ev\":\"fcp_bounds\",\"lower\":{lower},\"upper\":{upper}}}")
            }
            TraceEvent::FcpEval { method, samples } => format!(
                "{{\"ev\":\"fcp_eval\",\"method\":\"{}\",\"samples\":{samples}}}",
                method.name()
            ),
            TraceEvent::Result { items, fcp } => {
                let ids: Vec<String> = items.iter().map(|i| i.to_string()).collect();
                format!(
                    "{{\"ev\":\"result\",\"items\":[{}],\"fcp\":{fcp}}}",
                    ids.join(",")
                )
            }
            TraceEvent::PhaseStart { phase } => {
                format!("{{\"ev\":\"phase_start\",\"phase\":\"{}\"}}", phase.name())
            }
            TraceEvent::PhaseEnd { phase, nanos } => format!(
                "{{\"ev\":\"phase_end\",\"phase\":\"{}\",\"nanos\":{nanos}}}",
                phase.name()
            ),
            TraceEvent::RunEnd {
                elapsed_nanos,
                results,
                timed_out,
            } => format!(
                "{{\"ev\":\"run_end\",\"elapsed_nanos\":{elapsed_nanos},\
                 \"results\":{results},\"timed_out\":{timed_out}}}"
            ),
        }
    }

    /// Parse one JSONL line produced by [`TraceEvent::to_json`].
    pub fn parse(line: &str) -> Result<TraceEvent, TraceParseError> {
        let err = |what: &str| TraceParseError {
            line: line.to_string(),
            what: what.to_string(),
        };
        let ev = str_field(line, "ev").ok_or_else(|| err("missing \"ev\""))?;
        match ev {
            "run_start" => Ok(TraceEvent::RunStart {
                algo: str_field(line, "algo")
                    .ok_or_else(|| err("algo"))?
                    .to_string(),
                min_sup: num_field(line, "min_sup").ok_or_else(|| err("min_sup"))?,
                pfct: num_field(line, "pfct").ok_or_else(|| err("pfct"))?,
                epsilon: num_field(line, "epsilon").ok_or_else(|| err("epsilon"))?,
                delta: num_field(line, "delta").ok_or_else(|| err("delta"))?,
            }),
            "node" => Ok(TraceEvent::Node {
                depth: num_field(line, "depth").ok_or_else(|| err("depth"))?,
            }),
            "prune" => Ok(TraceEvent::Prune {
                kind: str_field(line, "kind")
                    .and_then(PruneKind::from_name)
                    .ok_or_else(|| err("kind"))?,
            }),
            "freq_prob" => Ok(TraceEvent::FreqProb {
                pr_f: num_field(line, "pr_f").ok_or_else(|| err("pr_f"))?,
            }),
            "dp_decision" => Ok(TraceEvent::DpDecision {
                decision: str_field(line, "reason")
                    .and_then(|r| DpDecision::from_parts(r, num_field(line, "magnitude")))
                    .ok_or_else(|| err("reason"))?,
            }),
            "fcp_bounds" => Ok(TraceEvent::FcpBounds {
                lower: num_field(line, "lower").ok_or_else(|| err("lower"))?,
                upper: num_field(line, "upper").ok_or_else(|| err("upper"))?,
            }),
            "fcp_eval" => Ok(TraceEvent::FcpEval {
                method: str_field(line, "method")
                    .and_then(FcpEvalKind::from_name)
                    .ok_or_else(|| err("method"))?,
                samples: num_field(line, "samples").ok_or_else(|| err("samples"))?,
            }),
            "result" => Ok(TraceEvent::Result {
                items: items_field(line).ok_or_else(|| err("items"))?,
                fcp: num_field(line, "fcp").ok_or_else(|| err("fcp"))?,
            }),
            "phase_start" => Ok(TraceEvent::PhaseStart {
                phase: str_field(line, "phase")
                    .and_then(Phase::from_name)
                    .ok_or_else(|| err("phase"))?,
            }),
            "phase_end" => Ok(TraceEvent::PhaseEnd {
                phase: str_field(line, "phase")
                    .and_then(Phase::from_name)
                    .ok_or_else(|| err("phase"))?,
                nanos: num_field(line, "nanos").ok_or_else(|| err("nanos"))?,
            }),
            "run_end" => Ok(TraceEvent::RunEnd {
                elapsed_nanos: num_field(line, "elapsed_nanos")
                    .ok_or_else(|| err("elapsed_nanos"))?,
                results: num_field(line, "results").ok_or_else(|| err("results"))?,
                timed_out: match raw_field(line, "timed_out") {
                    Some("true") => true,
                    Some("false") => false,
                    _ => return Err(err("timed_out")),
                },
            }),
            other => Err(err(&format!("unknown ev {other:?}"))),
        }
    }
}

/// A line [`parse_jsonl`] could not decode, with what was missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// The offending line.
    pub line: String,
    /// Which field or token failed.
    pub what: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace line (field {}): {}", self.what, self.line)
    }
}

impl std::error::Error for TraceParseError {}

/// Parse a whole JSONL trace (blank lines are skipped).
pub fn parse_jsonl(text: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(TraceEvent::parse)
        .collect()
}

/// Raw value slice of `"key":<value>` in a flat JSON object — enough for
/// the trace schema (no nested objects; the only array is `items`, and
/// the only strings are schema-controlled names without escapes).
fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = if let Some(r) = rest.strip_prefix('[') {
        r.find(']')? + 2
    } else if let Some(r) = rest.strip_prefix('"') {
        r.find('"')? + 2
    } else {
        rest.find([',', '}'])?
    };
    Some(&rest[..end])
}

fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let raw = raw_field(line, key)?;
    raw.strip_prefix('"')?.strip_suffix('"')
}

fn num_field<T: std::str::FromStr>(line: &str, key: &str) -> Option<T> {
    raw_field(line, key)?.parse().ok()
}

fn items_field(line: &str) -> Option<Vec<u32>> {
    let raw = raw_field(line, "items")?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    if inner.is_empty() {
        return Some(Vec::new());
    }
    inner.split(',').map(|s| s.trim().parse().ok()).collect()
}

// ---------------------------------------------------------------------------
// Concrete sinks
// ---------------------------------------------------------------------------

/// Buffers every event as an owned [`TraceEvent`], in order.
#[derive(Debug, Clone, Default)]
pub struct RecordingSink {
    /// The recorded events.
    pub events: Vec<TraceEvent>,
}

impl RecordingSink {
    /// Append another recording's events after this one's (the sharded
    /// reconciliation: shards absorbed in canonical order reproduce the
    /// sequential event stream).
    pub fn merge(&mut self, other: RecordingSink) {
        self.events.extend(other.events);
    }
}

impl ShardableSink for RecordingSink {
    type Shard = RecordingSink;
    fn make_shard(&self) -> RecordingSink {
        RecordingSink::default()
    }
    fn absorb_shard(&mut self, shard: RecordingSink) {
        self.merge(shard);
    }
}

impl MinerSink for RecordingSink {
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        self.events.push(TraceEvent::RunStart {
            algo: algo.to_string(),
            min_sup: config.min_sup as u64,
            pfct: config.pfct,
            epsilon: config.epsilon,
            delta: config.delta,
        });
    }
    fn node_entered(&mut self, depth: usize) {
        self.events.push(TraceEvent::Node {
            depth: depth as u64,
        });
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        self.events.push(TraceEvent::Prune { kind });
    }
    fn freq_prob_evaluated(&mut self, pr_f: f64) {
        self.events.push(TraceEvent::FreqProb { pr_f });
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        self.events.push(TraceEvent::DpDecision { decision });
    }
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {
        self.events.push(TraceEvent::FcpBounds { lower, upper });
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        self.events.push(TraceEvent::FcpEval { method, samples });
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        self.events.push(TraceEvent::Result {
            items: items.iter().map(|i| i.0).collect(),
            fcp,
        });
    }
    fn phase_start(&mut self, phase: Phase) {
        self.events.push(TraceEvent::PhaseStart { phase });
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        self.events.push(TraceEvent::PhaseEnd {
            phase,
            nanos: elapsed.as_nanos() as u64,
        });
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        self.events.push(TraceEvent::RunEnd {
            elapsed_nanos: outcome.elapsed.as_nanos() as u64,
            results: outcome.results.len() as u64,
            timed_out: outcome.timed_out,
        });
    }
}

/// Re-derives [`MinerStats`] (and [`PhaseTimers`]) purely from the event
/// stream — each event maps to exactly one counter:
///
/// | event                        | counter           |
/// |------------------------------|-------------------|
/// | `node_entered`               | `nodes_visited`   |
/// | `prune_fired(ChernoffHoeffding)` | `ch_pruned`   |
/// | `prune_fired(FreqProb)`      | `freq_pruned`     |
/// | `prune_fired(Superset)`      | `superset_pruned` |
/// | `prune_fired(Subset)`        | `subset_pruned`   |
/// | `prune_fired(BoundReject)`   | `bound_rejected`  |
/// | `freq_prob_evaluated`        | `freq_prob_evals` |
/// | `fcp_evaluated(Exact)`       | `fcp_exact`       |
/// | `fcp_evaluated(Sampled, n)`  | `fcp_sampled`, `samples_drawn += n` |
/// | `fcp_evaluated(BoundDecided)`| `bound_decided`   |
/// | `dp_decision(d)`             | `audit.record(d)` |
///
/// A run observed through a `CountingSink` therefore ends with
/// `counting.stats == outcome.stats` (and `counting.audit ==
/// outcome.audit`) — the reconciliation the observability tests assert.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingSink {
    /// Counters re-derived from events.
    pub stats: MinerStats,
    /// Phase totals re-derived from `phase_end` events.
    pub timers: PhaseTimers,
    /// DP decision-audit counters re-derived from `dp_decision` events.
    pub audit: DpAudit,
    /// Results seen via `result_emitted`.
    pub results_emitted: u64,
}

impl CountingSink {
    /// Merge another counting sink's totals into this one. Plain
    /// componentwise addition, so the merge is associative and
    /// commutative — sharded reconciliation equals single-sink recording
    /// regardless of how the events were split (proptested below).
    pub fn merge(&mut self, other: &CountingSink) {
        self.stats.absorb(&other.stats);
        self.timers.absorb(&other.timers);
        self.audit.absorb(&other.audit);
        self.results_emitted += other.results_emitted;
    }

    /// Apply one owned event (e.g. parsed back from a JSONL trace) to the
    /// counters, exactly as the live callbacks would.
    pub fn absorb_event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Node { .. } => self.node_entered(0),
            TraceEvent::Prune { kind } => self.prune_fired(*kind),
            TraceEvent::FreqProb { pr_f } => self.freq_prob_evaluated(*pr_f),
            TraceEvent::DpDecision { decision } => self.dp_decision(*decision),
            TraceEvent::FcpBounds { lower, upper } => self.fcp_bounds(*lower, *upper),
            TraceEvent::FcpEval { method, samples } => self.fcp_evaluated(*method, *samples),
            TraceEvent::Result { .. } => self.results_emitted += 1,
            TraceEvent::PhaseEnd { phase, nanos } => {
                self.timers.add(*phase, Duration::from_nanos(*nanos));
            }
            TraceEvent::RunStart { .. }
            | TraceEvent::PhaseStart { .. }
            | TraceEvent::RunEnd { .. } => {}
        }
    }
}

impl MinerSink for CountingSink {
    fn node_entered(&mut self, _depth: usize) {
        self.stats.nodes_visited += 1;
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        match kind {
            PruneKind::ChernoffHoeffding => self.stats.ch_pruned += 1,
            PruneKind::FreqProb => self.stats.freq_pruned += 1,
            PruneKind::Superset => self.stats.superset_pruned += 1,
            PruneKind::Subset => self.stats.subset_pruned += 1,
            PruneKind::BoundReject => self.stats.bound_rejected += 1,
        }
    }
    fn freq_prob_evaluated(&mut self, _pr_f: f64) {
        self.stats.freq_prob_evals += 1;
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        self.audit.record(decision);
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        match method {
            FcpEvalKind::Exact => self.stats.fcp_exact += 1,
            FcpEvalKind::Sampled => {
                self.stats.fcp_sampled += 1;
                self.stats.samples_drawn += samples;
            }
            FcpEvalKind::BoundDecided => self.stats.bound_decided += 1,
        }
    }
    fn result_emitted(&mut self, _items: &[Item], _fcp: f64) {
        self.results_emitted += 1;
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        self.timers.add(phase, elapsed);
    }
}

impl ShardableSink for CountingSink {
    type Shard = CountingSink;
    fn make_shard(&self) -> CountingSink {
        CountingSink::default()
    }
    fn absorb_shard(&mut self, shard: CountingSink) {
        self.merge(&shard);
    }
}

/// Streams every event to a writer as JSON Lines (schema in the module
/// docs). I/O errors are latched: the first error stops further writes
/// and is surfaced by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    written: u64,
}

impl JsonlSink<BufWriter<File>> {
    /// Create (truncate) `path` and stream the trace into it, buffered.
    pub fn create(path: impl AsRef<Path>) -> io::Result<Self> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write> JsonlSink<W> {
    /// Stream the trace into `out`.
    pub fn new(out: W) -> Self {
        Self {
            out,
            error: None,
            written: 0,
        }
    }

    /// Lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.written
    }

    /// True once a write has failed. Further events are discarded, so a
    /// trace file with a latched error is silently truncated — callers
    /// that keep mining should check this between runs and report it
    /// rather than trust the file.
    pub fn has_error(&self) -> bool {
        self.error.is_some()
    }

    /// Take the latched I/O error, if any, leaving the sink error-free
    /// (subsequent events will be written again). [`JsonlSink::finish`]
    /// returns the error instead if it is still latched.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Append one event as a JSONL line.
    pub fn record(&mut self, event: &TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", event.to_json()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    /// Flush and return the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl<W: Write> MinerSink for JsonlSink<W> {
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        self.record(&TraceEvent::RunStart {
            algo: algo.to_string(),
            min_sup: config.min_sup as u64,
            pfct: config.pfct,
            epsilon: config.epsilon,
            delta: config.delta,
        });
    }
    fn node_entered(&mut self, depth: usize) {
        self.record(&TraceEvent::Node {
            depth: depth as u64,
        });
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        self.record(&TraceEvent::Prune { kind });
    }
    fn freq_prob_evaluated(&mut self, pr_f: f64) {
        self.record(&TraceEvent::FreqProb { pr_f });
    }
    fn dp_decision(&mut self, decision: DpDecision) {
        self.record(&TraceEvent::DpDecision { decision });
    }
    fn fcp_bounds(&mut self, lower: f64, upper: f64) {
        self.record(&TraceEvent::FcpBounds { lower, upper });
    }
    fn fcp_evaluated(&mut self, method: FcpEvalKind, samples: u64) {
        self.record(&TraceEvent::FcpEval { method, samples });
    }
    fn result_emitted(&mut self, items: &[Item], fcp: f64) {
        self.record(&TraceEvent::Result {
            items: items.iter().map(|i| i.0).collect(),
            fcp,
        });
    }
    fn phase_start(&mut self, phase: Phase) {
        self.record(&TraceEvent::PhaseStart { phase });
    }
    fn phase_end(&mut self, phase: Phase, elapsed: Duration) {
        self.record(&TraceEvent::PhaseEnd {
            phase,
            nanos: elapsed.as_nanos() as u64,
        });
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        self.record(&TraceEvent::RunEnd {
            elapsed_nanos: outcome.elapsed.as_nanos() as u64,
            results: outcome.results.len() as u64,
            timed_out: outcome.timed_out,
        });
    }
}

/// Workers buffer their events as a [`RecordingSink`]; absorbing a shard
/// replays the buffer through [`JsonlSink::record`] on the owner thread,
/// which naturally preserves the latched-error semantics: once a write
/// fails, later replays (from this or any later shard) are discarded and
/// the error stays latched for [`JsonlSink::has_error`] /
/// [`JsonlSink::take_error`] / [`JsonlSink::finish`].
impl<W: Write> ShardableSink for JsonlSink<W> {
    type Shard = RecordingSink;
    fn make_shard(&self) -> RecordingSink {
        RecordingSink::default()
    }
    fn absorb_shard(&mut self, shard: RecordingSink) {
        for event in &shard.events {
            self.record(event);
        }
    }
}

/// Throttled stderr heartbeat: every `interval` (default 500 ms, checked
/// on node entry) it prints one line with elapsed time versus the
/// configured budget, node throughput, the pruning mix and the running
/// result count; a final summary line prints when the run finishes.
#[derive(Debug)]
pub struct ProgressSink {
    interval: Duration,
    algo: String,
    budget: Option<Duration>,
    started: Instant,
    last_report: Instant,
    nodes: u64,
    results: u64,
    pruned: [u64; PruneKind::ALL.len()],
    samples: u64,
}

impl Default for ProgressSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ProgressSink {
    /// A heartbeat reporting at most every 500 ms.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            interval: Duration::from_millis(500),
            algo: String::new(),
            budget: None,
            started: now,
            last_report: now,
            nodes: 0,
            results: 0,
            pruned: [0; PruneKind::ALL.len()],
            samples: 0,
        }
    }

    /// Override the reporting interval.
    pub fn with_interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    fn heartbeat(&self, elapsed: Duration) -> String {
        let budget = match self.budget {
            Some(b) => format!("/{:.0?}", b),
            None => String::new(),
        };
        let rate = self.nodes as f64 / elapsed.as_secs_f64().max(1e-9);
        let [ch, freq, superset, subset, bound] = self.pruned;
        format!(
            "[{}] {:.1?}{budget} | {} nodes ({rate:.0}/s) | pruned ch={ch} freq={freq} \
             super={superset} sub={subset} bound={bound} | {} samples | {} results",
            self.algo, elapsed, self.nodes, self.samples, self.results,
        )
    }
}

impl MinerSink for ProgressSink {
    fn run_started(&mut self, algo: &str, config: &MinerConfig) {
        self.algo = algo.to_string();
        self.budget = config.time_budget;
        self.started = Instant::now();
        self.last_report = self.started;
        self.nodes = 0;
        self.results = 0;
        self.pruned = [0; PruneKind::ALL.len()];
        self.samples = 0;
    }
    fn node_entered(&mut self, _depth: usize) {
        self.nodes += 1;
        let now = Instant::now();
        if now.duration_since(self.last_report) >= self.interval {
            self.last_report = now;
            eprintln!("{}", self.heartbeat(now.duration_since(self.started)));
        }
    }
    fn prune_fired(&mut self, kind: PruneKind) {
        let idx = PruneKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind is in ALL");
        self.pruned[idx] += 1;
    }
    fn fcp_evaluated(&mut self, _method: FcpEvalKind, samples: u64) {
        self.samples += samples;
    }
    fn result_emitted(&mut self, _items: &[Item], _fcp: f64) {
        self.results += 1;
    }
    fn run_finished(&mut self, outcome: &MiningOutcome) {
        eprintln!("{} (done)", self.heartbeat(outcome.elapsed));
    }
}

/// Workers count privately; absorbing folds the counters in (indices of
/// `pruned` follow [`PruneKind::ALL`]) and gives the throttle a chance
/// to emit a heartbeat at the reconciliation points.
impl ShardableSink for ProgressSink {
    type Shard = CountingSink;
    fn make_shard(&self) -> CountingSink {
        CountingSink::default()
    }
    fn absorb_shard(&mut self, shard: CountingSink) {
        self.nodes += shard.stats.nodes_visited;
        self.results += shard.results_emitted;
        self.pruned[0] += shard.stats.ch_pruned;
        self.pruned[1] += shard.stats.freq_pruned;
        self.pruned[2] += shard.stats.superset_pruned;
        self.pruned[3] += shard.stats.subset_pruned;
        self.pruned[4] += shard.stats.bound_rejected;
        self.samples += shard.stats.samples_drawn;
        let now = Instant::now();
        if now.duration_since(self.last_report) >= self.interval {
            self.last_report = now;
            eprintln!("{}", self.heartbeat(now.duration_since(self.started)));
        }
    }
}

/// Thin adapter over a [`ShardableSink`] used by the parallel miner: it
/// holds the user's sink for the duration of the fan-out, hands out one
/// private shard per task, and absorbs finished shards **in canonical
/// order** at the join barrier.
#[derive(Debug)]
pub struct ShardedSink<'a, S: ShardableSink + ?Sized> {
    parent: &'a mut S,
}

impl<'a, S: ShardableSink + ?Sized> ShardedSink<'a, S> {
    /// Wrap the user's sink for a fan-out.
    pub fn new(parent: &'a mut S) -> Self {
        Self { parent }
    }

    /// Create an empty private shard for one task.
    pub fn shard(&self) -> S::Shard {
        self.parent.make_shard()
    }

    /// Reconcile one finished shard. Call in canonical task order.
    pub fn absorb(&mut self, shard: S::Shard) {
        self.parent.absorb_shard(shard);
    }

    /// Access the underlying sink (for run-level events that fire once,
    /// outside any shard).
    pub fn parent(&mut self) -> &mut S {
        self.parent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::RunStart {
                algo: "dfs".into(),
                min_sup: 2,
                pfct: 0.8,
                epsilon: 0.1,
                delta: 0.1,
            },
            TraceEvent::Node { depth: 1 },
            TraceEvent::PhaseStart {
                phase: Phase::FreqDp,
            },
            TraceEvent::PhaseEnd {
                phase: Phase::FreqDp,
                nanos: 12345,
            },
            TraceEvent::FreqProb { pr_f: 0.9985 },
            TraceEvent::DpDecision {
                decision: DpDecision::Incremental,
            },
            TraceEvent::DpDecision {
                decision: DpDecision::ErrTol { measured: 5.25e-8 },
            },
            TraceEvent::DpDecision {
                decision: DpDecision::RowValidation { violation: 0.125 },
            },
            TraceEvent::Prune {
                kind: PruneKind::Superset,
            },
            TraceEvent::FcpBounds {
                lower: 0.85,
                upper: 0.925,
            },
            TraceEvent::FcpEval {
                method: FcpEvalKind::Sampled,
                samples: 59915,
            },
            TraceEvent::Result {
                items: vec![0, 1, 2],
                fcp: 0.8754,
            },
            TraceEvent::Result {
                items: vec![],
                fcp: 0.5,
            },
            TraceEvent::RunEnd {
                elapsed_nanos: 987654321,
                results: 2,
                timed_out: false,
            },
        ]
    }

    #[test]
    fn jsonl_round_trip_is_lossless() {
        let events = sample_events();
        let text: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let parsed = parse_jsonl(&text).expect("well-formed trace");
        assert_eq!(parsed, events);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let mut sink = JsonlSink::new(Vec::new());
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.lines_written(), sample_events().len() as u64);
        let buf = sink.finish().expect("no io errors on Vec");
        let text = String::from_utf8(buf).expect("utf8");
        assert_eq!(parse_jsonl(&text).expect("parse"), sample_events());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert!(TraceEvent::parse("{\"ev\":\"node\"}").is_err());
        assert!(TraceEvent::parse("{\"ev\":\"wat\",\"x\":1}").is_err());
        assert!(TraceEvent::parse("not json").is_err());
        assert!(TraceEvent::parse("{\"ev\":\"prune\",\"kind\":\"bogus\"}").is_err());
    }

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
        }
        for k in PruneKind::ALL {
            assert_eq!(PruneKind::from_name(k.name()), Some(k));
        }
        for m in [
            FcpEvalKind::Exact,
            FcpEvalKind::Sampled,
            FcpEvalKind::BoundDecided,
        ] {
            assert_eq!(FcpEvalKind::from_name(m.name()), Some(m));
        }
        for d in [
            DpDecision::Incremental,
            DpDecision::FreshRoot,
            DpDecision::FreshLevel,
            DpDecision::CostSkip,
            DpDecision::DowndateCap,
            DpDecision::ErrTol { measured: 2.5e-8 },
            DpDecision::RowValidation { violation: 0.75 },
            DpDecision::Degenerate,
        ] {
            assert_eq!(DpDecision::from_parts(d.name(), d.magnitude()), Some(d));
        }
        assert_eq!(DpDecision::from_parts("bogus", None), None);
    }

    #[test]
    fn counting_sink_replays_events_identically() {
        let events = sample_events();
        let mut live = CountingSink::default();
        // Drive the live callbacks directly...
        live.node_entered(1);
        live.freq_prob_evaluated(0.9985);
        live.dp_decision(DpDecision::Incremental);
        live.dp_decision(DpDecision::ErrTol { measured: 5.25e-8 });
        live.dp_decision(DpDecision::RowValidation { violation: 0.125 });
        live.prune_fired(PruneKind::Superset);
        live.fcp_bounds(0.85, 0.925);
        live.fcp_evaluated(FcpEvalKind::Sampled, 59915);
        live.phase_end(Phase::FreqDp, Duration::from_nanos(12345));
        live.results_emitted += 2;
        // ...and replay the recorded form of the same run.
        let mut replayed = CountingSink::default();
        for e in &events {
            replayed.absorb_event(e);
        }
        assert_eq!(live.stats, replayed.stats);
        assert_eq!(live.timers, replayed.timers);
        assert_eq!(live.audit, replayed.audit);
        assert_eq!(live.results_emitted, replayed.results_emitted);
        assert_eq!(replayed.audit.incremental, 1);
        assert_eq!(replayed.audit.refusals(), 2);
        assert_eq!(replayed.stats.samples_drawn, 59915);
        assert_eq!(
            replayed.timers.total(Phase::FreqDp),
            Duration::from_nanos(12345)
        );
    }

    /// A writer that fails every write after the first `ok_writes`.
    #[derive(Debug)]
    struct FailAfter {
        ok_writes: usize,
        sunk: Vec<u8>,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.ok_writes == 0 {
                return Err(io::Error::other("disk full"));
            }
            self.ok_writes -= 1;
            self.sunk.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_latches_write_errors() {
        // Three raw write calls succeed, then the "disk" fills. One
        // writeln! may issue several write calls, so assert the shape —
        // a truncated prefix plus a latched error — not exact counts.
        let mut sink = JsonlSink::new(FailAfter {
            ok_writes: 3,
            sunk: Vec::new(),
        });
        let events = sample_events();
        assert!(!sink.has_error());
        for e in &events {
            sink.record(e);
        }
        assert!(sink.has_error());
        assert!(sink.lines_written() < events.len() as u64);
        let err = sink.finish().expect_err("latched error must surface");
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn take_error_unlatches() {
        let mut sink = JsonlSink::new(FailAfter {
            ok_writes: 0,
            sunk: Vec::new(),
        });
        let events = sample_events();
        sink.record(&events[0]);
        sink.record(&events[1]);
        assert_eq!(sink.lines_written(), 0);
        assert!(sink.has_error());
        let err = sink.take_error().expect("error was latched");
        assert_eq!(err.kind(), io::ErrorKind::Other);
        assert!(!sink.has_error());
        assert!(sink.take_error().is_none());
    }

    #[test]
    fn option_sink_forwards_some_and_discards_none() {
        let mut some: Option<CountingSink> = Some(CountingSink::default());
        some.node_entered(1);
        some.prune_fired(PruneKind::FreqProb);
        assert!(some.is_enabled());
        assert_eq!(some.as_ref().unwrap().stats.nodes_visited, 1);
        assert_eq!(some.as_ref().unwrap().stats.freq_pruned, 1);

        let mut none: Option<CountingSink> = None;
        none.node_entered(1);
        assert!(!none.is_enabled());
        assert!(none.is_none());
    }

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = Tee(CountingSink::default(), RecordingSink::default());
        tee.node_entered(1);
        tee.prune_fired(PruneKind::Subset);
        assert_eq!(tee.0.stats.nodes_visited, 1);
        assert_eq!(tee.0.stats.subset_pruned, 1);
        assert_eq!(tee.1.events.len(), 2);
        assert!(tee.is_enabled());
        assert!(!NullSink.is_enabled());
    }

    /// Map a code to a miner event, exercised against live sinks.
    fn fire(code: u8, sink: &mut impl MinerSink) {
        match code % 9 {
            0 => sink.node_entered(usize::from(code) % 5 + 1),
            1 => sink.prune_fired(PruneKind::ALL[usize::from(code) % PruneKind::ALL.len()]),
            2 => sink.freq_prob_evaluated(f64::from(code) / 255.0),
            3 => sink.fcp_bounds(0.1, 0.9),
            4 => sink.fcp_evaluated(FcpEvalKind::Exact, 0),
            5 => sink.fcp_evaluated(FcpEvalKind::Sampled, u64::from(code) * 10),
            6 => sink.result_emitted(&[Item(u32::from(code))], 0.5),
            7 => sink.dp_decision(match code % 3 {
                0 => DpDecision::Incremental,
                1 => DpDecision::ErrTol {
                    measured: f64::from(code) / 16.0,
                },
                _ => DpDecision::DowndateCap,
            }),
            _ => sink.phase_end(
                Phase::ALL[usize::from(code) % Phase::COUNT],
                Duration::from_nanos(u64::from(code)),
            ),
        }
    }

    #[test]
    fn sharded_jsonl_replays_in_order_and_keeps_latched_errors() {
        // Happy path: two shards absorbed in order reproduce the exact
        // byte stream of direct recording.
        let mut direct = JsonlSink::new(Vec::new());
        let mut sharded = JsonlSink::new(Vec::new());
        let mut shard_a = sharded.make_shard();
        let mut shard_b = sharded.make_shard();
        for code in 0u8..10 {
            fire(code, &mut direct);
            fire(code, &mut shard_a);
        }
        for code in 10u8..20 {
            fire(code, &mut direct);
            fire(code, &mut shard_b);
        }
        sharded.absorb_shard(shard_a);
        sharded.absorb_shard(shard_b);
        assert_eq!(direct.lines_written(), sharded.lines_written());
        let a = direct.finish().expect("vec writes");
        let b = sharded.finish().expect("vec writes");
        assert_eq!(a, b);

        // Failing writer: the error latches mid-replay and later shards
        // are discarded, not written out of order.
        let mut failing = JsonlSink::new(FailAfter {
            ok_writes: 2,
            sunk: Vec::new(),
        });
        let mut shard = failing.make_shard();
        for code in 0u8..10 {
            fire(code, &mut shard);
        }
        failing.absorb_shard(shard);
        assert!(failing.has_error());
        let written_after_first = failing.lines_written();
        let mut late = failing.make_shard();
        fire(0, &mut late);
        failing.absorb_shard(late);
        assert_eq!(failing.lines_written(), written_after_first);
        let err = failing.finish().expect_err("latched error must surface");
        assert_eq!(err.to_string(), "disk full");
    }

    #[test]
    fn progress_shard_reconciles_counters() {
        let mut progress = ProgressSink::new().with_interval(Duration::from_secs(3600));
        let mut shard = progress.make_shard();
        shard.node_entered(1);
        shard.node_entered(2);
        shard.prune_fired(PruneKind::Subset);
        shard.fcp_evaluated(FcpEvalKind::Sampled, 123);
        shard.result_emitted(&[Item(0)], 0.9);
        progress.absorb_shard(shard);
        assert_eq!(progress.nodes, 2);
        assert_eq!(progress.results, 1);
        assert_eq!(progress.pruned, [0, 0, 0, 1, 0]);
        assert_eq!(progress.samples, 123);
    }

    #[test]
    fn sharded_sink_adapter_round_trips() {
        let mut counting = CountingSink::default();
        {
            let mut sharded = ShardedSink::new(&mut counting);
            let mut a = sharded.shard();
            let mut b = sharded.shard();
            a.node_entered(1);
            b.node_entered(2);
            b.prune_fired(PruneKind::FreqProb);
            sharded.absorb(a);
            sharded.absorb(b);
            sharded.parent().node_entered(3);
        }
        assert_eq!(counting.stats.nodes_visited, 3);
        assert_eq!(counting.stats.freq_pruned, 1);
    }

    #[test]
    fn option_and_tee_shards_compose() {
        let mut sink = Tee(Some(CountingSink::default()), RecordingSink::default());
        let mut shard = sink.make_shard();
        shard.node_entered(1);
        shard.prune_fired(PruneKind::Superset);
        sink.absorb_shard(shard);
        assert_eq!(sink.0.as_ref().unwrap().stats.nodes_visited, 1);
        assert_eq!(sink.0.as_ref().unwrap().stats.superset_pruned, 1);
        assert_eq!(sink.1.events.len(), 2);

        let mut none: Option<CountingSink> = None;
        let shard = none.make_shard();
        assert!(shard.is_none());
        none.absorb_shard(shard);
        assert!(none.is_none());
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        fn counting_from(codes: &[u8]) -> CountingSink {
            let mut s = CountingSink::default();
            for &c in codes {
                fire(c, &mut s);
            }
            s
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// `CountingSink::merge` is commutative and associative, so
            /// any shard reconciliation order yields the single-sink
            /// totals.
            #[test]
            fn counting_merge_is_commutative_and_associative(
                a in proptest::collection::vec(0u8..=255, 0..40),
                b in proptest::collection::vec(0u8..=255, 0..40),
                c in proptest::collection::vec(0u8..=255, 0..40),
            ) {
                let (sa, sb, sc) = (counting_from(&a), counting_from(&b), counting_from(&c));
                // Commutativity.
                let mut ab = sa;
                ab.merge(&sb);
                let mut ba = sb;
                ba.merge(&sa);
                prop_assert_eq!(ab.stats, ba.stats);
                prop_assert_eq!(ab.timers, ba.timers);
                prop_assert_eq!(ab.results_emitted, ba.results_emitted);
                // Associativity.
                let mut ab_c = ab;
                ab_c.merge(&sc);
                let mut bc = sb;
                bc.merge(&sc);
                let mut a_bc = sa;
                a_bc.merge(&bc);
                prop_assert_eq!(ab_c.stats, a_bc.stats);
                prop_assert_eq!(ab_c.timers, a_bc.timers);
                prop_assert_eq!(ab_c.results_emitted, a_bc.results_emitted);
            }

            /// Splitting an event stream into shards at an arbitrary
            /// point and reconciling equals observing it with one sink —
            /// for counters (any order) and recordings (split order).
            #[test]
            fn sharded_reconciliation_equals_single_sink(
                codes in proptest::collection::vec(0u8..=255, 0..80),
                split_at in 0usize..81,
            ) {
                let split = split_at.min(codes.len());
                let single = counting_from(&codes);
                let mut sharded = CountingSink::default();
                sharded.absorb_shard(counting_from(&codes[..split]));
                sharded.absorb_shard(counting_from(&codes[split..]));
                prop_assert_eq!(single.stats, sharded.stats);
                prop_assert_eq!(single.timers, sharded.timers);
                prop_assert_eq!(single.results_emitted, sharded.results_emitted);

                let mut rec_single = RecordingSink::default();
                for &c in &codes {
                    fire(c, &mut rec_single);
                }
                let mut rec_sharded = RecordingSink::default();
                let (mut sh_a, mut sh_b) = (rec_sharded.make_shard(), rec_sharded.make_shard());
                for &c in &codes[..split] {
                    fire(c, &mut sh_a);
                }
                for &c in &codes[split..] {
                    fire(c, &mut sh_b);
                }
                rec_sharded.absorb_shard(sh_a);
                rec_sharded.absorb_shard(sh_b);
                prop_assert_eq!(rec_single.events, rec_sharded.events);
            }
        }
    }

    #[test]
    fn timed_accumulates_and_notifies() {
        let mut timers = PhaseTimers::default();
        let mut rec = RecordingSink::default();
        let out = timed(Phase::EventBuild, &mut timers, &mut rec, || 41 + 1);
        assert_eq!(out, 42);
        assert_eq!(timers.count(Phase::EventBuild), 1);
        assert_eq!(rec.events.len(), 2);
        assert!(matches!(
            rec.events[0],
            TraceEvent::PhaseStart {
                phase: Phase::EventBuild
            }
        ));
        assert!(matches!(
            rec.events[1],
            TraceEvent::PhaseEnd {
                phase: Phase::EventBuild,
                ..
            }
        ));
    }
}
