//! Per-run instrumentation: how hard did each pruning work?
//!
//! The paper's Section V measures the *effectiveness of pruning
//! strategies* indirectly through runtime; these counters expose it
//! directly and back the ablation benches.

use std::fmt;
use std::time::Duration;

/// Counters accumulated over one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Enumeration-tree nodes visited (itemsets considered).
    pub nodes_visited: u64,
    /// Subtrees cut by superset pruning (Lemma 4.2).
    pub superset_pruned: u64,
    /// Sibling groups cut by subset pruning (Lemma 4.3).
    pub subset_pruned: u64,
    /// Candidates refuted by the Chernoff–Hoeffding bound (Lemma 4.1)
    /// without running the exact DP.
    pub ch_pruned: u64,
    /// Candidates whose exact frequent probability fell at or below
    /// `pfct` (subtree pruned by anti-monotonicity).
    pub freq_pruned: u64,
    /// Itemsets rejected because the FCP upper bound (Lemma 4.4) fell at
    /// or below `pfct`.
    pub bound_rejected: u64,
    /// Itemsets decided because upper and lower FCP bounds coincided.
    pub bound_decided: u64,
    /// Itemsets whose FCP was computed exactly (inclusion–exclusion).
    pub fcp_exact: u64,
    /// Itemsets whose FCP was estimated by `ApproxFCP`.
    pub fcp_sampled: u64,
    /// Total Monte-Carlo samples drawn across all `ApproxFCP` calls.
    pub samples_drawn: u64,
    /// Exact frequent-probability DP evaluations.
    pub freq_prob_evals: u64,
}

impl MinerStats {
    /// Merge another run's counters into this one (used by sweeps).
    pub fn absorb(&mut self, other: &MinerStats) {
        self.nodes_visited += other.nodes_visited;
        self.superset_pruned += other.superset_pruned;
        self.subset_pruned += other.subset_pruned;
        self.ch_pruned += other.ch_pruned;
        self.freq_pruned += other.freq_pruned;
        self.bound_rejected += other.bound_rejected;
        self.bound_decided += other.bound_decided;
        self.fcp_exact += other.fcp_exact;
        self.fcp_sampled += other.fcp_sampled;
        self.samples_drawn += other.samples_drawn;
        self.freq_prob_evals += other.freq_prob_evals;
    }

    /// Total itemsets whose FCP was evaluated (exactly or by sampling).
    pub fn fcp_evaluations(&self) -> u64 {
        self.fcp_exact + self.fcp_sampled
    }
}

impl fmt::Display for MinerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} super={} sub={} ch={} freq={} bound_rej={} bound_dec={} \
             fcp_exact={} fcp_sampled={} samples={}",
            self.nodes_visited,
            self.superset_pruned,
            self.subset_pruned,
            self.ch_pruned,
            self.freq_pruned,
            self.bound_rejected,
            self.bound_decided,
            self.fcp_exact,
            self.fcp_sampled,
            self.samples_drawn,
        )
    }
}

/// A stats bundle together with wall-clock time, as reported by sweeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimedStats {
    /// The counters.
    pub stats: MinerStats,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_fields() {
        let mut a = MinerStats {
            nodes_visited: 2,
            fcp_sampled: 1,
            samples_drawn: 100,
            ..Default::default()
        };
        let b = MinerStats {
            nodes_visited: 3,
            fcp_exact: 4,
            samples_drawn: 50,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.nodes_visited, 5);
        assert_eq!(a.fcp_evaluations(), 5);
        assert_eq!(a.samples_drawn, 150);
    }

    #[test]
    fn display_is_compact() {
        let s = MinerStats::default().to_string();
        assert!(s.starts_with("nodes=0"));
        assert!(s.contains("samples=0"));
    }
}
